#include "service/server.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "net/frame.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace pprl {

namespace {

/// Daemon-side service metrics (see docs/OBSERVABILITY.md for the full
/// catalogue). Message counters are labelled with the same tags the
/// channel uses, so the two views cross-check.
struct ServiceMetrics {
  obs::Counter& sessions = obs::GlobalMetrics().GetCounter(
      "pprl_service_sessions_total", "Owner connections accepted by the daemon");
  obs::Counter& sessions_failed = obs::GlobalMetrics().GetCounter(
      "pprl_service_sessions_failed_total",
      "Sessions ended with an error frame or lost peer");
  obs::Gauge& active_sessions = obs::GlobalMetrics().GetGauge(
      "pprl_service_active_sessions", "Connections currently being handled");
  obs::Counter& linkage_runs = obs::GlobalMetrics().GetCounter(
      "pprl_service_linkage_runs_total", "Linkage runs triggered by the daemon");
  obs::Counter& degraded_linkages = obs::GlobalMetrics().GetCounter(
      "pprl_service_degraded_linkages_total",
      "Linkage runs that proceeded on quorum without every expected owner");
  obs::Counter& scrapes = obs::GlobalMetrics().GetCounter(
      "pprl_metrics_scrapes_total", "Snapshots served by the /metrics endpoint");
  obs::Histogram& session_seconds = obs::GlobalMetrics().GetHistogram(
      "pprl_service_session_seconds",
      "Wall time of one owner connection, accept to close",
      obs::DefaultLatencyBuckets());

  // Resumable-session bookkeeping.
  obs::Counter& session_created = obs::GlobalMetrics().GetCounter(
      "pprl_session_created_total", "Sessions opened by a hello");
  obs::Counter& session_resumed = obs::GlobalMetrics().GetCounter(
      "pprl_session_resumed_total",
      "Successful session re-attachments after connection loss");
  obs::Counter& session_expired = obs::GlobalMetrics().GetCounter(
      "pprl_session_expired_total", "Idle partial sessions swept by the TTL");
  obs::Counter& session_completed = obs::GlobalMetrics().GetCounter(
      "pprl_session_completed_total",
      "Sessions whose shipment registered with the linkage unit");
  obs::Counter& session_chunks = obs::GlobalMetrics().GetCounter(
      "pprl_session_chunks_total", "Shipment chunks applied");
  obs::Counter& session_duplicate_chunks = obs::GlobalMetrics().GetCounter(
      "pprl_session_duplicate_chunks_total",
      "Re-delivered shipment chunks skipped idempotently");
  obs::Gauge& session_open = obs::GlobalMetrics().GetGauge(
      "pprl_session_open", "Sessions currently tracked (attached or resumable)");
  obs::Gauge& session_buffered_bytes = obs::GlobalMetrics().GetGauge(
      "pprl_session_buffered_bytes",
      "Bytes reserved by in-flight shipment buffers");
};

ServiceMetrics& Metrics() {
  static ServiceMetrics* m = new ServiceMetrics();
  return *m;
}

obs::Counter& ShedCounter(const std::string& reason) {
  return obs::GlobalMetrics().GetCounter(
      "pprl_shed_total", "Work refused to protect the daemon, by reason",
      {{"reason", reason}});
}

/// Counts one protocol message by its channel tag ("hello",
/// "encoded-filters", ...), split by direction.
void CountMessage(uint8_t type, const char* direction) {
  obs::GlobalMetrics()
      .GetCounter("pprl_service_messages_total",
                  "Protocol messages handled by the daemon, by type",
                  {{"type", MessageTypeTag(type)}, {"direction", direction}})
      .Increment();
}

uint64_t ExpectedShipmentBytes(uint32_t filter_bits, uint32_t record_count) {
  return static_cast<uint64_t>(record_count) *
         (8 + (static_cast<uint64_t>(filter_bits) + 7) / 8);
}

}  // namespace

LinkageUnitServer::LinkageUnitServer(LinkageUnitServerConfig config)
    : config_(std::move(config)), unit_(config_.name) {}

LinkageUnitServer::~LinkageUnitServer() { Stop(); }

size_t LinkageUnitServer::max_sessions() const {
  // Default leaves room for every owner plus a resumed straggler each.
  return config_.max_sessions != 0 ? config_.max_sessions
                                   : 2 * config_.expected_owners + 2;
}

Status LinkageUnitServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  if (config_.online_mode && (config_.worker_mode || config_.distributed_linker)) {
    return Status::InvalidArgument(
        "online mode is a serving role; it combines with neither the worker "
        "role nor a distributed linker");
  }
  if (!config_.online_mode && config_.expected_owners < 2) {
    return Status::InvalidArgument("a linkage unit needs >= 2 expected owners");
  }
  if (config_.min_owners == 1) {
    return Status::InvalidArgument("quorum of 1 owner cannot produce a linkage");
  }
  if (!config_.wal_dir.empty() && !config_.online_mode) {
    return Status::InvalidArgument(
        "--wal-dir is an online-serving knob; batch runs persist shipments "
        "via the spool directory instead");
  }
  // Recovery runs BEFORE the listener binds: no connection is accepted
  // until the engine holds the exact pre-crash state, and corrupt durable
  // state refuses startup instead of serving wrong answers.
  recovery_report_ = RecoveryReport();
  if (config_.online_mode && !config_.wal_dir.empty()) {
    DurabilityConfig dconfig;
    dconfig.wal_dir = config_.wal_dir;
    dconfig.checkpoint_dir = config_.checkpoint_dir;
    dconfig.wal_sync_ms = config_.wal_sync_ms;
    dconfig.checkpoint_every_n = config_.checkpoint_every_n;
    dconfig.crash_after_ops = config_.chaos.crash_after_ops;
    dconfig.serving_options.dice_threshold = config_.link_options.dice_threshold;
    dconfig.serving_options.lsh_tables = config_.link_options.lsh_tables;
    dconfig.serving_options.lsh_bits_per_key = config_.link_options.lsh_bits_per_key;
    dconfig.serving_options.lsh_seed = config_.link_options.lsh_seed;
    durability_ = std::make_unique<OnlineDurability>(std::move(dconfig));
    std::unique_ptr<OnlineLinkageEngine> recovered;
    const Status recovery = durability_->Recover(&recovered, &recovery_report_);
    if (!recovery.ok()) {
      durability_.reset();
      started_.store(false);
      return recovery;
    }
    if (recovered) {
      std::lock_guard<std::mutex> lock(mutex_);
      online_ = std::move(recovered);
      expected_filter_bits_ = static_cast<uint32_t>(online_->filter_bits());
      // Registration order is durable state; re-derive the owner order the
      // result summaries and parity gates sequence on.
      owner_order_.clear();
      for (size_t db = 0; db < online_->database_count(); ++db) {
        owner_order_.push_back(online_->database_name(static_cast<uint32_t>(db)));
      }
    }
    PPRL_LOG(kInfo) << "recovery: checkpoint "
                    << (recovery_report_.checkpoint_loaded
                            ? recovery_report_.checkpoint_path
                            : std::string("(none)"))
                    << ", " << recovery_report_.checkpoint_records
                    << " checkpointed + " << recovery_report_.replayed_records
                    << " replayed records, " << recovery_report_.torn_bytes_dropped
                    << " torn WAL bytes dropped, " << recovery_report_.seconds
                    << " s";
  }
  PPRL_RETURN_IF_ERROR(listener_.Listen(config_.port, config_.loopback_only));
  if (config_.metrics_port >= 0) {
    MetricsHttpServerConfig metrics_config;
    metrics_config.port = static_cast<uint16_t>(config_.metrics_port);
    metrics_config.loopback_only = config_.loopback_only;
    metrics_server_ = std::make_unique<MetricsHttpServer>(metrics_config, [] {
      Metrics().scrapes.Increment();
      return obs::RenderPrometheusText(obs::GlobalMetrics().Snapshot());
    });
    const Status metrics_started = metrics_server_->Start();
    if (!metrics_started.ok()) {
      listener_.Close();
      metrics_server_.reset();
      started_.store(false);
      return metrics_started;
    }
  }
  // One thread per admitted connection: shedding happens before Submit,
  // so a full pool can never starve a resumed session of a handler.
  pool_ = std::make_unique<ThreadPool>(max_sessions() + config_.extra_threads);
  if (config_.link_threads > 1) {
    WorkStealingScheduler::Options sched_options;
    sched_options.num_threads = config_.link_threads;
    sched_options.max_pending = 64;
    link_scheduler_ = std::make_unique<WorkStealingScheduler>(sched_options);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PPRL_LOG(kInfo) << "linkage unit '" << config_.name << "' listening on port "
                  << listener_.port() << " for " << config_.expected_owners
                  << " owners"
                  << (config_.worker_mode
                          ? " (worker role)"
                          : config_.online_mode ? " (online serving role)" : "");
  if (config_.chaos.enabled()) {
    PPRL_LOG(kInfo) << "chaos mode on: fault injection seed " << config_.chaos.seed;
  }
  return Status::OK();
}

void LinkageUnitServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Close();
  linkage_done_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Draining the pool joins every in-flight session handler; only then is
  // no linkage left to submit shards, so the scheduler can drain too.
  pool_.reset();
  link_scheduler_.reset();
  // Every session handler has drained, so the engine is quiescent: write
  // the final checkpoint and truncate the WAL. A failure here loses
  // nothing — the WAL still holds everything — so log and keep stopping.
  if (durability_ && online_) {
    const Status final_checkpoint = durability_->Checkpoint(*online_);
    if (final_checkpoint.ok()) {
      PPRL_LOG(kInfo) << "final checkpoint written; WAL truncated";
    } else {
      PPRL_LOG(kWarning) << "final checkpoint failed (WAL remains "
                            "authoritative): "
                         << final_checkpoint.ToString();
    }
  }
  // Last, so operators can scrape right up to the daemon's end.
  metrics_server_.reset();
}

void LinkageUnitServer::AcceptLoop() {
  while (!stopping_.load()) {
    SweepSessions();
    auto conn = listener_.Accept(config_.accept_poll_ms);
    if (!conn.ok()) {
      // kNotFound is the poll timing out; kFailedPrecondition is the
      // listener being torn down by Stop().
      if (conn.status().code() == StatusCode::kNotFound) continue;
      if (conn.status().code() == StatusCode::kFailedPrecondition) break;
      if (stopping_.load()) break;
      PPRL_LOG(kWarning) << "accept failed: " << conn.status().ToString();
      continue;
    }
    const uint64_t conn_index = accepted_connections_.fetch_add(1) + 1;
    if (active_connections_.load() >= max_sessions()) {
      ShedOnAccept(**conn, "sessions");
      continue;
    }
    active_connections_.fetch_add(1);
    // shared_ptr because ThreadPool tasks are copyable std::functions.
    std::shared_ptr<TcpConnection> shared(std::move(*conn));
    pool_->Submit([this, shared, conn_index] { HandleSession(shared, conn_index); });
  }
}

void LinkageUnitServer::ShedOnAccept(TcpConnection& conn, const std::string& reason) {
  ShedCounter(reason).Increment();
  BusyMessage busy;
  busy.retry_after_ms = static_cast<uint32_t>(config_.busy_retry_after_ms);
  busy.reason = reason;
  // Best effort straight from the accept thread — no handler is spent on
  // a connection we are refusing.
  FrameWriter writer(conn, config_.max_frame_payload);
  writer.WriteFrame(static_cast<uint8_t>(MessageType::kBusy), EncodeBusy(busy));
  CountMessage(static_cast<uint8_t>(MessageType::kBusy), "out");
  wire_bytes_sent_ += conn.wire_bytes_sent();
  conn.Close();
}

void LinkageUnitServer::SendBusy(MeteredFrameConnection& mfc, const std::string& reason) {
  ShedCounter(reason).Increment();
  BusyMessage busy;
  busy.retry_after_ms = static_cast<uint32_t>(config_.busy_retry_after_ms);
  busy.reason = reason;
  CountMessage(static_cast<uint8_t>(MessageType::kBusy), "out");
  mfc.Send(static_cast<uint8_t>(MessageType::kBusy), EncodeBusy(busy),
           MessageTypeTag(static_cast<uint8_t>(MessageType::kBusy)));
}

void LinkageUnitServer::FailSession(MeteredFrameConnection& mfc, const Status& status) {
  PPRL_LOG(kWarning) << "session with '"
                     << (mfc.peer().empty() ? "<unknown>" : mfc.peer())
                     << "' failed: " << status.ToString();
  Metrics().sessions_failed.Increment();
  CountMessage(static_cast<uint8_t>(MessageType::kError), "out");
  // Best effort: the peer may already be gone.
  mfc.Send(static_cast<uint8_t>(MessageType::kError), EncodeError(status),
           MessageTypeTag(static_cast<uint8_t>(MessageType::kError)));
}

void LinkageUnitServer::EraseSessionLocked(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  if (!it->second.registered) {
    const uint64_t reserved =
        ExpectedShipmentBytes(it->second.filter_bits, it->second.record_count);
    buffered_bytes_ -= std::min<uint64_t>(buffered_bytes_, reserved);
  }
  sessions_.erase(it);
  Metrics().session_open.Set(static_cast<int64_t>(sessions_.size()));
  Metrics().session_buffered_bytes.Set(static_cast<int64_t>(buffered_bytes_));
}

void LinkageUnitServer::SweepSessions() {
  const auto now = std::chrono::steady_clock::now();
  bool fire_quorum = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      ServerSession& s = it->second;
      // Registered sessions are kept until the server stops: their owner
      // may still resume to collect results. Only partial shipments age
      // out.
      if (!s.attached && !s.registered &&
          now - s.last_activity >
              std::chrono::milliseconds(config_.session_ttl_ms)) {
        PPRL_LOG(kInfo) << "sweeping idle session " << s.id << " of '" << s.party
                        << "' (" << s.assembler.acked_bytes() << "/"
                        << s.assembler.expected_bytes() << " bytes shipped)";
        Metrics().session_expired.Increment();
        const uint64_t reserved = ExpectedShipmentBytes(s.filter_bits, s.record_count);
        buffered_bytes_ -= std::min<uint64_t>(buffered_bytes_, reserved);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    Metrics().session_open.Set(static_cast<int64_t>(sessions_.size()));
    Metrics().session_buffered_bytes.Set(static_cast<int64_t>(buffered_bytes_));
    // Quorum option: enough owners registered, the rest silent too long.
    // Workers never self-trigger a linkage — their coordinator owns that
    // decision (and its own straggler quorum).
    if (!config_.worker_mode && !config_.online_mode && !linkage_ran_ &&
        config_.min_owners >= 2 &&
        config_.min_owners < config_.expected_owners &&
        owner_order_.size() >= config_.min_owners &&
        owner_order_.size() < config_.expected_owners &&
        last_registration_ != std::chrono::steady_clock::time_point{} &&
        now - last_registration_ >
            std::chrono::milliseconds(config_.quorum_wait_ms)) {
      fire_quorum = true;
    }
  }
  if (fire_quorum) RunLinkage(/*allow_partial=*/true);
}

void LinkageUnitServer::SpoolShipment(const std::string& party,
                                      const EncodedDatabase& encoded) {
  io::ShardFileFormat format = config_.spool_format;
  if (format == io::ShardFileFormat::kAuto) format = io::ShardFileFormat::kPclk;
  // Party names come off the wire: keep only filesystem-safe characters.
  std::string stem;
  for (char c : party) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    stem += safe ? c : '_';
  }
  if (stem.empty()) stem = "owner";
  const std::string path = config_.spool_dir + "/" + stem + "." +
                           io::ShardFileFormatName(format);
  const Status written =
      io::WriteShardFile(path, ShardFromEncodedDatabase(encoded), format);
  obs::GlobalMetrics()
      .GetCounter("pprl_spool_shipments_total",
                  "Registered shipments persisted to the spool directory",
                  {{"format", io::ShardFileFormatName(format)},
                   {"outcome", written.ok() ? "ok" : "error"}})
      .Increment();
  if (!written.ok()) {
    PPRL_LOG(kWarning) << "failed to spool shipment of owner '" << party
                       << "' to " << path << ": " << written.ToString();
  } else {
    PPRL_LOG(kInfo) << "spooled shipment of owner '" << party << "' to " << path;
  }
}

void LinkageUnitServer::RunLinkage(bool allow_partial) {
  if (config_.worker_mode) return;  // a coordinator assigns partitions instead
  if (config_.online_mode) return;  // the engine links incrementally instead
  std::lock_guard<std::mutex> lock(mutex_);
  if (linkage_ran_) return;
  if (!allow_partial && owner_order_.size() < config_.expected_owners) return;
  if (allow_partial && owner_order_.size() < std::max<size_t>(config_.min_owners, 2)) {
    return;
  }
  Metrics().linkage_runs.Increment();
  linked_owners_ = owner_order_.size();
  MultiPartyLinkageOptions link_options = config_.link_options;
  if (link_scheduler_) link_options.scheduler = link_scheduler_.get();
  if (config_.distributed_linker) {
    auto outcome = config_.distributed_linker(unit_, link_options);
    linkage_status_ = outcome.status();
    if (outcome.ok()) {
      linkage_result_ = std::move(outcome->result);
      workers_linked_ = outcome->workers_linked;
      workers_expected_ = outcome->workers_expected;
    }
  } else {
    auto result = unit_.Link(link_options);
    linkage_status_ = result.status();
    if (result.ok()) linkage_result_ = std::move(*result);
  }
  linkage_degraded_ = linked_owners_ < config_.expected_owners ||
                      workers_linked_ < workers_expected_;
  if (linkage_degraded_) {
    Metrics().degraded_linkages.Increment();
    PPRL_LOG(kWarning) << "degraded linkage: " << linked_owners_ << "/"
                       << config_.expected_owners << " owners, " << workers_linked_
                       << "/" << workers_expected_ << " worker partitions";
  }
  linkage_ran_ = true;
  if (linkage_status_.ok()) {
    PPRL_LOG(kInfo) << "linkage over " << owner_order_.size() << " databases: "
                    << linkage_result_.comparisons << " comparisons ("
                    << linkage_result_.pruned_comparisons
                    << " answered by the cardinality bound), "
                    << linkage_result_.edges.size() << " match edges";
  } else {
    PPRL_LOG(kInfo) << "linkage over " << owner_order_.size()
                    << " databases: " << linkage_status_.ToString();
  }
  linkage_done_.notify_all();
}

void LinkageUnitServer::HandleSession(std::shared_ptr<TcpConnection> conn,
                                      uint64_t conn_index) {
  conn->SetIoTimeout(config_.io_timeout_ms);
  // Chaos mode wraps the socket so every byte this handler moves can be
  // dropped, delayed, truncated or corrupted — deterministically per
  // connection, so failing runs replay.
  std::unique_ptr<FaultInjectingConnection> chaos;
  Connection* wire = conn.get();
  if (config_.chaos.enabled()) {
    chaos = std::make_unique<FaultInjectingConnection>(
        *conn, config_.chaos.WithSeed(config_.chaos.seed +
                                      0x9e3779b97f4a7c15ULL * conn_index));
    wire = chaos.get();
  }
  MeteredFrameConnection mfc(*wire, &channel_, config_.name,
                             config_.max_frame_payload);
  Metrics().sessions.Increment();
  Metrics().active_sessions.Add(1);
  const auto session_start = std::chrono::steady_clock::now();
  uint64_t attached_sid = 0;

  const auto finish = [&] {
    if (attached_sid != 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = sessions_.find(attached_sid);
      if (it != sessions_.end()) {
        it->second.attached = false;
        it->second.last_activity = std::chrono::steady_clock::now();
      }
    }
    wire_bytes_received_ += conn->wire_bytes_received();
    wire_bytes_sent_ += conn->wire_bytes_sent();
    conn->Close();
    Metrics().active_sessions.Sub(1);
    active_connections_.fetch_sub(1);
    Metrics().session_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - session_start)
            .count());
  };

  // 1. Handshake: a new session (hello) or a re-attachment (resume). The
  // first frame is metered only after it names the sender, so it lands on
  // the right channel route.
  auto first = mfc.ReceiveUnmetered();
  if (!first.ok()) {
    PPRL_LOG(kWarning) << "dropping connection before handshake: "
                       << first.status().ToString();
    finish();
    return;
  }

  uint64_t sid = 0;
  bool shipment_complete = false;

  if (first->type == static_cast<uint8_t>(MessageType::kHello)) {
    auto hello = DecodeHello(first->payload);
    if (!hello.ok()) {
      FailSession(mfc, hello.status());
      finish();
      return;
    }
    mfc.set_peer(hello->party);
    mfc.MeterReceived(*first, MessageTypeTag);
    CountMessage(first->type, "in");
    if (hello->protocol_version != kWireProtocolVersion) {
      FailSession(mfc, Status::ProtocolViolation(
                           "protocol version mismatch: server speaks " +
                           std::to_string(kWireProtocolVersion) + ", owner sent " +
                           std::to_string(hello->protocol_version)));
      finish();
      return;
    }
    if (hello->filter_bits == 0) {
      FailSession(mfc, Status::ProtocolViolation("hello declared zero filter bits"));
      finish();
      return;
    }
    if (hello->record_count == 0 && !config_.online_mode) {
      // Query-only sessions are an online-mode feature; a batch linkage
      // unit has nothing to offer an owner without a shipment.
      FailSession(mfc, Status::ProtocolViolation("hello declared zero records"));
      finish();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (linkage_ran_) {
        const Status late = Status::FailedPrecondition(
            "linkage already ran; owner '" + hello->party + "' is too late to join");
        FailSession(mfc, late);
        finish();
        return;
      }
      // First owner fixes the filter length for the whole run.
      if (expected_filter_bits_ == 0) expected_filter_bits_ = hello->filter_bits;
      if (hello->filter_bits != expected_filter_bits_) {
        const Status mismatch = Status::InvalidArgument(
            "owner '" + hello->party + "' declared " +
            std::to_string(hello->filter_bits) + "-bit filters; this linkage uses " +
            std::to_string(expected_filter_bits_));
        FailSession(mfc, mismatch);
        finish();
        return;
      }
      // The first hello fixes the filter length, so the online engine can
      // be built here; it serves every later session.
      if (config_.online_mode && !online_) {
        OnlineLinkageOptions engine_options;
        engine_options.dice_threshold = config_.link_options.dice_threshold;
        engine_options.lsh_tables = config_.link_options.lsh_tables;
        engine_options.lsh_bits_per_key = config_.link_options.lsh_bits_per_key;
        engine_options.lsh_seed = config_.link_options.lsh_seed;
        online_ = std::make_unique<OnlineLinkageEngine>(hello->filter_bits,
                                                        engine_options);
      }
      const uint64_t expected_bytes =
          ExpectedShipmentBytes(hello->filter_bits, hello->record_count);
      if (buffered_bytes_ + expected_bytes > config_.max_buffered_bytes) {
        SendBusy(mfc, "buffer");
        finish();
        return;
      }
      sid = next_session_id_++;
      ServerSession session;
      session.id = sid;
      session.party = hello->party;
      session.filter_bits = hello->filter_bits;
      session.record_count = hello->record_count;
      session.assembler = ShipmentAssembler(hello->filter_bits, hello->record_count);
      session.attached = true;
      session.last_activity = std::chrono::steady_clock::now();
      session.deadline = session.last_activity +
                         std::chrono::milliseconds(config_.session_deadline_ms);
      buffered_bytes_ += expected_bytes;
      sessions_.emplace(sid, std::move(session));
      Metrics().session_created.Increment();
      Metrics().session_open.Set(static_cast<int64_t>(sessions_.size()));
      Metrics().session_buffered_bytes.Set(static_cast<int64_t>(buffered_bytes_));
    }
    attached_sid = sid;
    // A zero-record hello in online mode opens a query-only session:
    // there is no shipment phase to run.
    shipment_complete = config_.online_mode && hello->record_count == 0;
    HelloAckMessage ack;
    ack.protocol_version = kWireProtocolVersion;
    ack.server = config_.name;
    ack.expected_owners = static_cast<uint32_t>(config_.expected_owners);
    ack.session_id = sid;
    ack.max_chunk_bytes = config_.max_chunk_bytes;
    CountMessage(static_cast<uint8_t>(MessageType::kHelloAck), "out");
    if (!mfc.Send(static_cast<uint8_t>(MessageType::kHelloAck), EncodeHelloAck(ack),
                  MessageTypeTag(static_cast<uint8_t>(MessageType::kHelloAck)))
             .ok()) {
      finish();
      return;
    }
  } else if (first->type == static_cast<uint8_t>(MessageType::kResume)) {
    auto resume = DecodeResume(first->payload);
    if (!resume.ok()) {
      FailSession(mfc, resume.status());
      finish();
      return;
    }
    mfc.set_peer(resume->party);
    mfc.MeterReceived(*first, MessageTypeTag);
    CountMessage(first->type, "in");
    if (resume->protocol_version != kWireProtocolVersion) {
      FailSession(mfc, Status::ProtocolViolation(
                           "protocol version mismatch on resume"));
      finish();
      return;
    }
    ResumeAckMessage rack;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = sessions_.find(resume->session_id);
      if (it == sessions_.end()) {
        // Swept or never existed: the owner must start over with a hello.
        const Status unknown = Status::NotFound(
            "unknown session " + std::to_string(resume->session_id) +
            " (expired or never opened); start a new hello");
        FailSession(mfc, unknown);
        finish();
        return;
      }
      if (it->second.party != resume->party) {
        FailSession(mfc, Status::InvalidArgument(
                             "session " + std::to_string(resume->session_id) +
                             " belongs to another party"));
        finish();
        return;
      }
      if (it->second.attached) {
        // The previous connection has not noticed its peer died yet. The
        // owner retries shortly instead of us closing sockets across
        // threads.
        SendBusy(mfc, "attached");
        finish();
        return;
      }
      it->second.attached = true;
      it->second.last_activity = std::chrono::steady_clock::now();
      sid = resume->session_id;
      shipment_complete = it->second.registered ||
                          (config_.online_mode && it->second.record_count == 0);
      rack.session_id = sid;
      rack.acked_bytes = it->second.assembler.acked_bytes();
      rack.shipment_complete = shipment_complete;
      Metrics().session_resumed.Increment();
    }
    attached_sid = sid;
    CountMessage(static_cast<uint8_t>(MessageType::kResumeAck), "out");
    if (!mfc.Send(static_cast<uint8_t>(MessageType::kResumeAck), EncodeResumeAck(rack),
                  MessageTypeTag(static_cast<uint8_t>(MessageType::kResumeAck)))
             .ok()) {
      finish();
      return;
    }
  } else if (first->type == static_cast<uint8_t>(MessageType::kAssignPartition)) {
    // A coordinator's control connection, not an owner session: answer
    // the partition assignment and close.
    HandleAssignPartition(mfc, *first);
    finish();
    return;
  } else {
    FailSession(mfc, Status::ProtocolViolation(
                         "expected hello, resume or assign-partition, got frame type " +
                         std::to_string(first->type)));
    finish();
    return;
  }

  // 2. Shipment (chunked, resumable, idempotent).
  if (!shipment_complete && !ReceiveShipment(mfc, sid)) {
    finish();
    return;
  }

  // 3. Online role: the session now serves kAppendRecords / kQuery frames
  // on this connection until the owner leaves. There is no batch linkage
  // run and no results frame.
  if (config_.online_mode) {
    ServeOnline(mfc, sid);
    finish();
    return;
  }

  // 4. Worker role ends here: the shipment is registered and acked, and
  // results (if any) belong to the coordinator's owners, not to the
  // coordinator's re-shipment session.
  if (config_.worker_mode) {
    finish();
    return;
  }

  // 5. Link once the last owner shipped, then answer everyone.
  RunLinkage(/*allow_partial=*/false);
  const bool delivered = DeliverResults(mfc, sid);
  // Account the session's wire bytes before announcing delivery, so that
  // once WaitUntilDone() returns the cost counters are final.
  finish();
  if (delivered) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(sid);
    if (it != sessions_.end() && !it->second.results_delivered) {
      it->second.results_delivered = true;
      ++results_delivered_;
      linkage_done_.notify_all();
    }
  }
}

bool LinkageUnitServer::ReceiveShipment(MeteredFrameConnection& mfc,
                                        uint64_t session_id) {
  for (;;) {
    auto frame = mfc.ReceiveUnmetered();
    if (!frame.ok()) {
      PPRL_LOG(kWarning) << "owner '" << mfc.peer() << "' lost mid-shipment: "
                         << frame.status().ToString() << " (session "
                         << session_id << " stays resumable)";
      return false;
    }
    CountMessage(frame->type, "in");
    if (frame->type != static_cast<uint8_t>(MessageType::kShipmentChunk)) {
      FailSession(mfc, Status::ProtocolViolation(
                           "expected shipment chunk, got frame type " +
                           std::to_string(frame->type)));
      return false;
    }
    auto chunk = DecodeShipmentChunk(frame->payload);
    if (!chunk.ok()) {
      FailSession(mfc, chunk.status());
      return false;
    }
    if (chunk->session_id != session_id) {
      FailSession(mfc, Status::ProtocolViolation("chunk names a different session"));
      return false;
    }
    if (chunk->data.size() > config_.max_chunk_bytes) {
      FailSession(mfc, Status::ProtocolViolation(
                           "chunk of " + std::to_string(chunk->data.size()) +
                           " bytes exceeds the advertised maximum of " +
                           std::to_string(config_.max_chunk_bytes)));
      return false;
    }

    ShipmentAckMessage ack;
    Status failure = Status::OK();
    bool absorb_pending = false;
    EncodedDatabase absorb;
    std::string absorb_party;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = sessions_.find(session_id);
      if (it == sessions_.end()) {
        failure = Status::NotFound("session swept while shipping; start over");
      } else if (std::chrono::steady_clock::now() > it->second.deadline) {
        ShedCounter("deadline").Increment();
        failure = Status::FailedPrecondition(
            "session deadline exceeded before the shipment completed");
        EraseSessionLocked(session_id);
      } else {
        ServerSession& session = it->second;
        auto applied = session.assembler.Apply(*chunk);
        if (!applied.ok()) {
          // Keep the session: the acked cursor is untouched, so the owner
          // can resume and retransmit from it.
          failure = applied.status();
        } else {
          session.last_activity = std::chrono::steady_clock::now();
          if (*applied) {
            // Only fresh bytes count as shipped payload; duplicates and
            // the fixed chunk header are wire overhead, not shipment.
            mfc.MeterReceivedBytes(chunk->data.size(), "encoded-filters");
            Metrics().session_chunks.Increment();
          } else {
            Metrics().session_duplicate_chunks.Increment();
          }
          if (session.assembler.complete() && !session.registered) {
            if (linkage_ran_) {
              failure = Status::FailedPrecondition(
                  "linkage already ran without owner '" + session.party + "'");
              EraseSessionLocked(session_id);
            } else {
              auto encoded = session.assembler.Finish();
              if (encoded.ok() && !config_.spool_dir.empty()) {
                SpoolShipment(session.party, *encoded);
              }
              Status stored = encoded.status();
              if (encoded.ok() && config_.online_mode) {
                // The engine absorb is per-record indexed work (LSH probe
                // + kernel compare each) that runs for seconds on a large
                // shipment; defer it until mutex_ is released so hellos,
                // resumes, acks and the sweeper keep flowing. The session
                // registers below, once the absorb succeeded.
                absorb = std::move(*encoded);
                absorb_party = session.party;
                absorb_pending = true;
              } else if (encoded.ok()) {
                stored = unit_.Receive(session.party, std::move(*encoded));
              }
              if (!stored.ok()) {
                failure = stored;
                EraseSessionLocked(session_id);
              } else if (!absorb_pending) {
                owner_order_.push_back(session.party);
                session.database_index =
                    static_cast<uint32_t>(owner_order_.size() - 1);
                session.registered = true;
                const uint64_t reserved = ExpectedShipmentBytes(
                    session.filter_bits, session.record_count);
                buffered_bytes_ -= std::min<uint64_t>(buffered_bytes_, reserved);
                session.assembler.Discard();
                last_registration_ = std::chrono::steady_clock::now();
                Metrics().session_completed.Increment();
                Metrics().session_buffered_bytes.Set(
                    static_cast<int64_t>(buffered_bytes_));
                // Registration order IS the database index order the
                // canonical cluster ids depend on; log it so operators
                // (and the check.sh parity gates) can sequence on it.
                PPRL_LOG(kInfo) << "registered shipment of owner '"
                                << session.party << "' ("
                                << owner_order_.size() << "/"
                                << config_.expected_owners << ")";
              }
            }
          }
          if (failure.ok() && !absorb_pending) {
            ack.session_id = session_id;
            ack.acked_bytes = session.assembler.acked_bytes();
            ack.complete = session.registered;
            ack.owners_shipped = static_cast<uint32_t>(owner_order_.size());
            ack.expected_owners = static_cast<uint32_t>(config_.expected_owners);
          }
        }
      }
    }
    if (failure.ok() && absorb_pending) {
      // Engine work runs lock-free with respect to mutex_; only the
      // registration bookkeeping below re-acquires it.
      uint32_t database_index = 0;
      const Status stored =
          AbsorbShipmentOnline(absorb_party, absorb, &database_index);
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = sessions_.find(session_id);
      if (it == sessions_.end()) {
        // Swept mid-absorb (TTL or deadline). The absorbed records stay —
        // a retry re-ships them as a prefix and skips them idempotently.
        failure = Status::NotFound("session swept while absorbing; start over");
      } else if (!stored.ok()) {
        failure = stored;
        EraseSessionLocked(session_id);
      } else {
        ServerSession& session = it->second;
        session.database_index = database_index;
        // A repeat shipment of one party registers only once.
        if (std::find(owner_order_.begin(), owner_order_.end(), session.party) ==
            owner_order_.end()) {
          owner_order_.push_back(session.party);
        }
        session.registered = true;
        const uint64_t reserved =
            ExpectedShipmentBytes(session.filter_bits, session.record_count);
        buffered_bytes_ -= std::min<uint64_t>(buffered_bytes_, reserved);
        session.assembler.Discard();
        last_registration_ = std::chrono::steady_clock::now();
        Metrics().session_completed.Increment();
        Metrics().session_buffered_bytes.Set(static_cast<int64_t>(buffered_bytes_));
        PPRL_LOG(kInfo) << "registered shipment of owner '" << session.party
                        << "' (" << owner_order_.size() << "/"
                        << config_.expected_owners << ")";
        ack.session_id = session_id;
        ack.acked_bytes = session.assembler.acked_bytes();
        ack.complete = true;
        ack.owners_shipped = static_cast<uint32_t>(owner_order_.size());
        ack.expected_owners = static_cast<uint32_t>(config_.expected_owners);
      }
    }
    if (!failure.ok()) {
      FailSession(mfc, failure);
      return false;
    }
    CountMessage(static_cast<uint8_t>(MessageType::kShipmentAck), "out");
    if (!mfc.Send(static_cast<uint8_t>(MessageType::kShipmentAck),
                  EncodeShipmentAck(ack),
                  MessageTypeTag(static_cast<uint8_t>(MessageType::kShipmentAck)))
             .ok()) {
      return false;
    }
    if (ack.complete) return true;
  }
}

Status LinkageUnitServer::AbsorbShipmentOnline(const std::string& party,
                                               const EncodedDatabase& encoded,
                                               uint32_t* database_index) {
  // One bulk absorb at a time: the cursor rule below reads the party's
  // record count and then appends, which must not interleave with another
  // shipment of the same party. Queries and v4 appends are not held up —
  // they go straight to the internally thread-safe engine.
  std::lock_guard<std::mutex> absorb_lock(absorb_mutex_);
  // A re-shipment from an already-indexed party arrives on a fresh hello
  // session, so chunk idempotency cannot see the earlier delivery. Treat
  // it as a retransmit of the party's prefix — the shipment-granular twin
  // of the kAppendRecords record cursor: skip what the index already
  // holds and append only the tail, so re-running an append is
  // idempotent. In durable mode the cursor is read without registering:
  // registration is journaled state, owned by DurableAppend.
  size_t skip = 0;
  uint32_t db = OnlineLinkageEngine::kNoDatabase;
  if (auto existing = online_->FindDatabase(party)) {
    db = *existing;
    skip = std::min(online_->record_count(db), encoded.size());
  }
  if (durability_) {
    auto cursor = durability_->DurableAppend(*online_, party, encoded, skip,
                                             encoded.size(), &db);
    if (!cursor.ok()) return cursor.status();
  } else {
    if (db == OnlineLinkageEngine::kNoDatabase) {
      db = online_->RegisterDatabase(party);
    }
    for (size_t i = skip; i < encoded.size(); ++i) {
      auto appended = online_->Append(db, encoded.ids[i], encoded.filters[i]);
      if (!appended.ok()) return appended.status();
    }
  }
  *database_index = db;
  if (skip > 0) {
    Metrics().session_duplicate_chunks.Increment();
    PPRL_LOG(kInfo) << "online: skipped " << skip
                    << " already-indexed records re-shipped by owner '" << party
                    << "'";
  }
  PPRL_LOG(kInfo) << "online: absorbed " << (encoded.size() - skip)
                  << " records of owner '" << party << "' (database " << db
                  << ", " << online_->record_count(db) << " indexed)";
  return Status::OK();
}

void LinkageUnitServer::ServeOnline(MeteredFrameConnection& mfc,
                                    uint64_t session_id) {
  // The engine exists by construction: this session's hello (or the
  // session it resumed) created it, and the pointer never changes until
  // the daemon stops.
  OnlineLinkageEngine& engine = *online_;
  for (;;) {
    auto frame = mfc.ReceiveUnmetered();
    if (!frame.ok()) {
      // kNotFound is the owner hanging up cleanly between frames — the
      // normal end of an online session. Anything else leaves the session
      // resumable.
      if (frame.status().code() != StatusCode::kNotFound) {
        PPRL_LOG(kInfo) << "online session " << session_id << " with '"
                        << mfc.peer() << "' detached: "
                        << frame.status().ToString() << " (stays resumable)";
      }
      return;
    }
    mfc.MeterReceived(*frame, MessageTypeTag);
    CountMessage(frame->type, "in");

    // Touch the session so the idle sweep sees live traffic.
    std::string party;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = sessions_.find(session_id);
      if (it == sessions_.end()) {
        party.clear();
      } else {
        it->second.last_activity = std::chrono::steady_clock::now();
        party = it->second.party;
      }
    }
    if (party.empty()) {
      FailSession(mfc, Status::NotFound("session swept; start a new hello"));
      return;
    }

    if (frame->type == static_cast<uint8_t>(MessageType::kAppendRecords)) {
      auto append = DecodeAppendRecords(frame->payload);
      if (!append.ok()) {
        FailSession(mfc, append.status());
        return;
      }
      if (append->session_id != session_id) {
        FailSession(mfc,
                    Status::ProtocolViolation("append names a different session"));
        return;
      }
      if (append->filter_bits != engine.filter_bits()) {
        FailSession(mfc, Status::InvalidArgument(
                             "append declared " + std::to_string(append->filter_bits) +
                             "-bit filters; this index uses " +
                             std::to_string(engine.filter_bits())));
        return;
      }
      auto decoded = DecodeShipment(append->data, append->filter_bits);
      if (!decoded.ok()) {
        FailSession(mfc, decoded.status());
        return;
      }
      // In durable mode registration is journaled state, so the cursor is
      // read without registering; DurableAppend journals the hello on a
      // party's first append (a zero-record probe registers too, matching
      // the in-memory path's RegisterDatabase-on-append).
      uint32_t db = OnlineLinkageEngine::kNoDatabase;
      uint64_t have = 0;
      if (auto existing = engine.FindDatabase(party)) {
        db = *existing;
        have = engine.record_count(db);
      } else if (!durability_) {
        db = engine.RegisterDatabase(party);
      }
      if (append->base_index > have) {
        FailSession(mfc, Status::ProtocolViolation(
                             "append gap: base index " +
                             std::to_string(append->base_index) +
                             " is beyond the record cursor " + std::to_string(have)));
        return;
      }
      // Records at or below the cursor are retransmits (the ack for an
      // earlier delivery was lost): skip them, append only the tail. This
      // is the record-granular twin of the shipment chunk idempotency.
      const uint64_t skip = have - append->base_index;
      bool applied_fresh = false;
      if (durability_) {
        auto cursor = durability_->DurableAppend(
            engine, party, *decoded, std::min<size_t>(skip, decoded->size()),
            decoded->size(), &db);
        if (!cursor.ok()) {
          FailSession(mfc, cursor.status());
          return;
        }
        applied_fresh = skip < decoded->size();
      } else {
        for (size_t i = skip; i < decoded->size(); ++i) {
          auto appended = engine.Append(db, decoded->ids[i], decoded->filters[i]);
          if (!appended.ok()) {
            FailSession(mfc, appended.status());
            return;
          }
          applied_fresh = true;
        }
      }
      if (!applied_fresh && decoded->size() != 0) {
        Metrics().session_duplicate_chunks.Increment();
      }
      ShipmentAckMessage ack;
      ack.session_id = session_id;
      // In online mode the ack cursor counts RECORDS, not bytes: the
      // owner's next base_index.
      ack.acked_bytes = engine.record_count(db);
      ack.complete = true;
      ack.owners_shipped = static_cast<uint32_t>(engine.database_count());
      ack.expected_owners = static_cast<uint32_t>(config_.expected_owners);
      CountMessage(static_cast<uint8_t>(MessageType::kShipmentAck), "out");
      if (!mfc.Send(static_cast<uint8_t>(MessageType::kShipmentAck),
                    EncodeShipmentAck(ack),
                    MessageTypeTag(static_cast<uint8_t>(MessageType::kShipmentAck)))
               .ok()) {
        return;
      }
    } else if (frame->type == static_cast<uint8_t>(MessageType::kQuery)) {
      auto query = DecodeQuery(frame->payload);
      if (!query.ok()) {
        FailSession(mfc, query.status());
        return;
      }
      if (query->session_id != session_id) {
        FailSession(mfc,
                    Status::ProtocolViolation("query names a different session"));
        return;
      }
      if (query->filter_bits != engine.filter_bits()) {
        FailSession(mfc, Status::InvalidArgument(
                             "query declared " + std::to_string(query->filter_bits) +
                             "-bit filters; this index uses " +
                             std::to_string(engine.filter_bits())));
        return;
      }
      auto decoded = DecodeShipment(query->data, query->filter_bits);
      if (!decoded.ok()) {
        FailSession(mfc, decoded.status());
        return;
      }
      // Matches against the querier's own database are suppressed,
      // mirroring the batch path's cross-database-only comparisons.
      const uint32_t exclude = engine.FindDatabase(party).value_or(
          OnlineLinkageEngine::kNoDatabase);
      QueryResultMessage reply;
      reply.query_id = query->query_id;
      reply.records.reserve(decoded->size());
      for (size_t i = 0; i < decoded->size(); ++i) {
        auto result = engine.Query(decoded->filters[i], exclude,
                                   query->want_clusters, query->top_k);
        if (!result.ok()) {
          FailSession(mfc, result.status());
          return;
        }
        QueryRecordResult record;
        record.id = decoded->ids[i];
        record.cluster_id = result->cluster_id;
        record.cluster_size = result->cluster_size;
        record.candidates = result->candidates;
        record.matches.reserve(result->matches.size());
        for (const OnlineMatch& m : result->matches) {
          record.matches.push_back(QueryMatch{m.database, m.record, m.id, m.score});
        }
        reply.records.push_back(std::move(record));
      }
      reply.index_size = engine.size();
      CountMessage(static_cast<uint8_t>(MessageType::kQueryResult), "out");
      if (!mfc.Send(static_cast<uint8_t>(MessageType::kQueryResult),
                    EncodeQueryResult(reply),
                    MessageTypeTag(static_cast<uint8_t>(MessageType::kQueryResult)))
               .ok()) {
        return;
      }
    } else {
      FailSession(mfc, Status::ProtocolViolation(
                           "expected append-records or link-query, got frame type " +
                           std::to_string(frame->type)));
      return;
    }
  }
}

void LinkageUnitServer::HandleAssignPartition(MeteredFrameConnection& mfc,
                                              const Frame& first) {
  auto& assignments = obs::GlobalMetrics();
  const auto count_outcome = [&assignments](const char* outcome) {
    assignments
        .GetCounter("pprl_worker_assignments_total",
                    "Partition assignments handled by a worker daemon, by outcome",
                    {{"outcome", outcome}})
        .Increment();
  };
  auto assign = DecodeAssignPartition(first.payload);
  if (!assign.ok()) {
    count_outcome("error");
    FailSession(mfc, assign.status());
    return;
  }
  mfc.set_peer(assign->coordinator);
  mfc.MeterReceived(first, MessageTypeTag);
  CountMessage(first.type, "in");
  if (!config_.worker_mode) {
    count_outcome("error");
    FailSession(mfc, Status::FailedPrecondition(
                         "daemon '" + config_.name +
                         "' is not a worker; start it with --worker"));
    return;
  }
  if (assign->protocol_version != kWireProtocolVersion) {
    count_outcome("error");
    FailSession(mfc, Status::ProtocolViolation(
                         "protocol version mismatch on assign-partition"));
    return;
  }

  // The partition compute reads the unit's shipments, so it runs under
  // the session mutex: a coordinator retry can never race a still-arriving
  // re-shipment. Missing shipments shed with kBusy (retryable) — the
  // coordinator may legitimately be re-driving this worker after a fault
  // killed an earlier shipment session.
  PartitionResultMessage reply;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (owner_order_.size() < assign->expected_owners) {
      count_outcome("awaiting-shipments");
      SendBusy(mfc, "awaiting-shipments");
      return;
    }
    MultiPartyLinkageOptions options = config_.link_options;
    options.dice_threshold = assign->dice_threshold;
    options.lsh_tables = assign->lsh_tables;
    options.lsh_bits_per_key = assign->lsh_bits_per_key;
    options.lsh_seed = assign->lsh_seed;
    PartitionSpec spec;
    spec.worker_index = assign->worker_index;
    spec.num_workers = assign->num_workers;
    spec.scheme = static_cast<PartitionScheme>(assign->scheme);
    auto partition = unit_.LinkPartition(options, spec);
    if (!partition.ok()) {
      count_outcome("error");
      FailSession(mfc, partition.status());
      return;
    }
    reply.worker_index = assign->worker_index;
    reply.comparisons = partition->comparisons;
    reply.candidate_pairs = partition->candidate_pairs;
    reply.pruned_comparisons = partition->pruned_comparisons;
    reply.edges = std::move(partition->edges);
  }
  count_outcome("ok");
  PPRL_LOG(kInfo) << "worker '" << config_.name << "' computed partition "
                  << reply.worker_index << "/" << assign->num_workers << ": "
                  << reply.comparisons << " comparisons, " << reply.edges.size()
                  << " edges";
  CountMessage(static_cast<uint8_t>(MessageType::kPartitionResult), "out");
  mfc.Send(static_cast<uint8_t>(MessageType::kPartitionResult),
           EncodePartitionResult(reply),
           MessageTypeTag(static_cast<uint8_t>(MessageType::kPartitionResult)));
}

bool LinkageUnitServer::DeliverResults(MeteredFrameConnection& mfc,
                                       uint64_t session_id) {
  OwnerLinkageSummary summary;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    linkage_done_.wait(lock, [this] { return linkage_ran_ || stopping_.load(); });
    if (!linkage_ran_) {
      lock.unlock();
      FailSession(mfc, Status::FailedPrecondition("server stopped before linkage ran"));
      return false;
    }
    if (!linkage_status_.ok()) {
      const Status failed = linkage_status_;
      lock.unlock();
      FailSession(mfc, failed);
      return false;
    }
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || !it->second.registered) {
      lock.unlock();
      FailSession(mfc, Status::FailedPrecondition(
                           "linkage ran without this owner's shipment"));
      return false;
    }
    summary = SummarizeForOwner(linkage_result_, it->second.database_index);
    summary.owners_linked = static_cast<uint32_t>(linked_owners_);
    summary.owners_expected = static_cast<uint32_t>(config_.expected_owners);
    summary.workers_linked = workers_linked_;
    summary.workers_expected = workers_expected_;
  }
  CountMessage(static_cast<uint8_t>(MessageType::kResults), "out");
  return mfc
      .Send(static_cast<uint8_t>(MessageType::kResults), EncodeResults(summary),
            MessageTypeTag(static_cast<uint8_t>(MessageType::kResults)))
      .ok();
}

Status LinkageUnitServer::WaitUntilDone(int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto done = [this] {
    return linkage_ran_ &&
           (!linkage_status_.ok() || results_delivered_ >= linked_owners_);
  };
  if (timeout_ms > 0) {
    if (!linkage_done_.wait_for(lock, std::chrono::milliseconds(timeout_ms), done)) {
      return Status::IoError("timed out waiting for the linkage run to finish");
    }
  } else {
    linkage_done_.wait(lock, done);
  }
  return linkage_status_;
}

Result<MultiPartyLinkageResult> LinkageUnitServer::result() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!linkage_ran_) {
    return Status::FailedPrecondition("linkage has not run yet");
  }
  if (!linkage_status_.ok()) return linkage_status_;
  return linkage_result_;
}

std::vector<std::string> LinkageUnitServer::owner_order() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return owner_order_;
}

bool LinkageUnitServer::linkage_degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return linkage_degraded_;
}

uint32_t LinkageUnitServer::workers_linked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_linked_;
}

uint32_t LinkageUnitServer::workers_expected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_expected_;
}

}  // namespace pprl
