#include "service/server.h"

#include <chrono>

#include "common/logging.h"
#include "net/frame.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace pprl {

namespace {

/// Daemon-side service metrics (see docs/OBSERVABILITY.md for the full
/// catalogue). Message counters are labelled with the same tags the
/// channel uses, so the two views cross-check.
struct ServiceMetrics {
  obs::Counter& sessions = obs::GlobalMetrics().GetCounter(
      "pprl_service_sessions_total", "Owner sessions accepted by the daemon");
  obs::Counter& sessions_failed = obs::GlobalMetrics().GetCounter(
      "pprl_service_sessions_failed_total",
      "Sessions ended with an error frame or lost peer");
  obs::Gauge& active_sessions = obs::GlobalMetrics().GetGauge(
      "pprl_service_active_sessions", "Sessions currently being handled");
  obs::Counter& linkage_runs = obs::GlobalMetrics().GetCounter(
      "pprl_service_linkage_runs_total", "Linkage runs triggered by the daemon");
  obs::Counter& scrapes = obs::GlobalMetrics().GetCounter(
      "pprl_metrics_scrapes_total", "Snapshots served by the /metrics endpoint");
  obs::Histogram& session_seconds = obs::GlobalMetrics().GetHistogram(
      "pprl_service_session_seconds",
      "Wall time of one owner session, accept to close",
      obs::DefaultLatencyBuckets());
};

ServiceMetrics& Metrics() {
  static ServiceMetrics* m = new ServiceMetrics();
  return *m;
}

/// Counts one protocol message by its channel tag ("hello",
/// "encoded-filters", ...), split by direction.
void CountMessage(uint8_t type, const char* direction) {
  obs::GlobalMetrics()
      .GetCounter("pprl_service_messages_total",
                  "Protocol messages handled by the daemon, by type",
                  {{"type", MessageTypeTag(type)}, {"direction", direction}})
      .Increment();
}

}  // namespace

LinkageUnitServer::LinkageUnitServer(LinkageUnitServerConfig config)
    : config_(std::move(config)), unit_(config_.name) {}

LinkageUnitServer::~LinkageUnitServer() { Stop(); }

Status LinkageUnitServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  if (config_.expected_owners < 2) {
    return Status::InvalidArgument("a linkage unit needs >= 2 expected owners");
  }
  PPRL_RETURN_IF_ERROR(listener_.Listen(config_.port, config_.loopback_only));
  if (config_.metrics_port >= 0) {
    MetricsHttpServerConfig metrics_config;
    metrics_config.port = static_cast<uint16_t>(config_.metrics_port);
    metrics_config.loopback_only = config_.loopback_only;
    metrics_server_ = std::make_unique<MetricsHttpServer>(metrics_config, [] {
      Metrics().scrapes.Increment();
      return obs::RenderPrometheusText(obs::GlobalMetrics().Snapshot());
    });
    const Status metrics_started = metrics_server_->Start();
    if (!metrics_started.ok()) {
      listener_.Close();
      metrics_server_.reset();
      started_.store(false);
      return metrics_started;
    }
  }
  pool_ = std::make_unique<ThreadPool>(config_.expected_owners + config_.extra_threads);
  if (config_.link_threads > 1) {
    WorkStealingScheduler::Options sched_options;
    sched_options.num_threads = config_.link_threads;
    sched_options.max_pending = 64;
    link_scheduler_ = std::make_unique<WorkStealingScheduler>(sched_options);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PPRL_LOG(kInfo) << "linkage unit '" << config_.name << "' listening on port "
                  << listener_.port() << " for " << config_.expected_owners
                  << " owners";
  return Status::OK();
}

void LinkageUnitServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Close();
  linkage_done_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Draining the pool joins every in-flight session handler; only then is
  // no linkage left to submit shards, so the scheduler can drain too.
  pool_.reset();
  link_scheduler_.reset();
  // Last, so operators can scrape right up to the daemon's end.
  metrics_server_.reset();
}

void LinkageUnitServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept(config_.accept_poll_ms);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kNotFound) continue;  // poll timeout
      if (stopping_.load()) break;
      PPRL_LOG(kWarning) << "accept failed: " << conn.status().ToString();
      continue;
    }
    // shared_ptr because ThreadPool tasks are copyable std::functions.
    std::shared_ptr<TcpConnection> shared(std::move(*conn));
    pool_->Submit([this, shared] { HandleSession(shared); });
  }
}

void LinkageUnitServer::FailSession(MeteredFrameConnection& mfc, const Status& status) {
  PPRL_LOG(kWarning) << "session with '"
                     << (mfc.peer().empty() ? "<unknown>" : mfc.peer())
                     << "' failed: " << status.ToString();
  Metrics().sessions_failed.Increment();
  CountMessage(static_cast<uint8_t>(MessageType::kError), "out");
  // Best effort: the peer may already be gone.
  mfc.Send(static_cast<uint8_t>(MessageType::kError), EncodeError(status),
           MessageTypeTag(static_cast<uint8_t>(MessageType::kError)));
}

void LinkageUnitServer::RunLinkageIfReady() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (linkage_ran_ || owner_order_.size() < config_.expected_owners) return;
  Metrics().linkage_runs.Increment();
  MultiPartyLinkageOptions link_options = config_.link_options;
  if (link_scheduler_) link_options.scheduler = link_scheduler_.get();
  auto result = unit_.Link(link_options);
  linkage_status_ = result.status();
  if (result.ok()) linkage_result_ = std::move(*result);
  linkage_ran_ = true;
  if (linkage_status_.ok()) {
    PPRL_LOG(kInfo) << "linkage over " << owner_order_.size() << " databases: "
                    << linkage_result_.comparisons << " comparisons ("
                    << linkage_result_.pruned_comparisons
                    << " answered by the cardinality bound), "
                    << linkage_result_.edges.size() << " match edges";
  } else {
    PPRL_LOG(kInfo) << "linkage over " << owner_order_.size()
                    << " databases: " << linkage_status_.ToString();
  }
  linkage_done_.notify_all();
}

void LinkageUnitServer::HandleSession(std::shared_ptr<TcpConnection> conn) {
  conn->SetIoTimeout(config_.io_timeout_ms);
  MeteredFrameConnection mfc(*conn, &channel_, config_.name,
                             config_.max_frame_payload);
  Metrics().sessions.Increment();
  Metrics().active_sessions.Add(1);
  const auto session_start = std::chrono::steady_clock::now();

  const auto finish = [&] {
    wire_bytes_received_ += conn->wire_bytes_received();
    wire_bytes_sent_ += conn->wire_bytes_sent();
    conn->Close();
    Metrics().active_sessions.Sub(1);
    Metrics().session_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - session_start)
            .count());
  };

  // 1. Handshake. The first frame is metered only after it names the
  // sender, so the hello lands on the right route.
  auto hello_frame = mfc.ReceiveUnmetered();
  if (!hello_frame.ok()) {
    PPRL_LOG(kWarning) << "dropping connection before hello: "
                       << hello_frame.status().ToString();
    finish();
    return;
  }
  if (hello_frame->type != static_cast<uint8_t>(MessageType::kHello)) {
    FailSession(mfc, Status::ProtocolViolation("expected hello, got frame type " +
                                               std::to_string(hello_frame->type)));
    finish();
    return;
  }
  auto hello = DecodeHello(hello_frame->payload);
  if (!hello.ok()) {
    FailSession(mfc, hello.status());
    finish();
    return;
  }
  mfc.set_peer(hello->party);
  mfc.MeterReceived(*hello_frame, MessageTypeTag);
  CountMessage(hello_frame->type, "in");
  if (hello->protocol_version != kWireProtocolVersion) {
    FailSession(mfc, Status::ProtocolViolation(
                         "protocol version mismatch: server speaks " +
                         std::to_string(kWireProtocolVersion) + ", owner sent " +
                         std::to_string(hello->protocol_version)));
    finish();
    return;
  }
  if (hello->filter_bits == 0) {
    FailSession(mfc, Status::ProtocolViolation("hello declared zero filter bits"));
    finish();
    return;
  }
  {
    // First owner fixes the filter length for the whole run.
    std::lock_guard<std::mutex> lock(mutex_);
    if (expected_filter_bits_ == 0) expected_filter_bits_ = hello->filter_bits;
    if (hello->filter_bits != expected_filter_bits_) {
      const Status mismatch = Status::InvalidArgument(
          "owner '" + hello->party + "' declared " + std::to_string(hello->filter_bits) +
          "-bit filters; this linkage uses " + std::to_string(expected_filter_bits_));
      FailSession(mfc, mismatch);
      finish();
      return;
    }
  }
  HelloAckMessage ack;
  ack.protocol_version = kWireProtocolVersion;
  ack.server = config_.name;
  ack.expected_owners = static_cast<uint32_t>(config_.expected_owners);
  CountMessage(static_cast<uint8_t>(MessageType::kHelloAck), "out");
  if (!mfc.Send(static_cast<uint8_t>(MessageType::kHelloAck), EncodeHelloAck(ack),
                MessageTypeTag(static_cast<uint8_t>(MessageType::kHelloAck)))
           .ok()) {
    finish();
    return;
  }

  // 2. Shipment.
  auto shipment_frame = mfc.Receive(MessageTypeTag);
  if (!shipment_frame.ok()) {
    PPRL_LOG(kWarning) << "owner '" << hello->party
                       << "' vanished before shipping: "
                       << shipment_frame.status().ToString();
    finish();
    return;
  }
  if (shipment_frame->type != static_cast<uint8_t>(MessageType::kShipment)) {
    FailSession(mfc, Status::ProtocolViolation("expected shipment, got frame type " +
                                               std::to_string(shipment_frame->type)));
    finish();
    return;
  }
  CountMessage(shipment_frame->type, "in");
  auto shipment = DecodeShipment(shipment_frame->payload, hello->filter_bits);
  if (!shipment.ok()) {
    FailSession(mfc, shipment.status());
    finish();
    return;
  }
  if (shipment->size() != hello->record_count) {
    FailSession(mfc, Status::ProtocolViolation(
                         "hello declared " + std::to_string(hello->record_count) +
                         " records but shipment carries " +
                         std::to_string(shipment->size())));
    finish();
    return;
  }

  uint32_t database_index = 0;
  ShipmentAckMessage ship_ack;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (owner_order_.size() >= config_.expected_owners) {
      FailSession(mfc, Status::FailedPrecondition("all expected owners already shipped"));
      finish();
      return;
    }
    const Status stored = unit_.Receive(hello->party, std::move(*shipment));
    if (!stored.ok()) {
      FailSession(mfc, stored);
      finish();
      return;
    }
    owner_order_.push_back(hello->party);
    database_index = static_cast<uint32_t>(owner_order_.size() - 1);
    ship_ack.owners_shipped = static_cast<uint32_t>(owner_order_.size());
    ship_ack.expected_owners = static_cast<uint32_t>(config_.expected_owners);
  }
  CountMessage(static_cast<uint8_t>(MessageType::kShipmentAck), "out");
  if (!mfc.Send(static_cast<uint8_t>(MessageType::kShipmentAck),
                EncodeShipmentAck(ship_ack),
                MessageTypeTag(static_cast<uint8_t>(MessageType::kShipmentAck)))
           .ok()) {
    finish();
    return;
  }

  // 3. Link once the last owner shipped, then answer everyone.
  RunLinkageIfReady();
  OwnerLinkageSummary summary;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    linkage_done_.wait(lock, [this] { return linkage_ran_ || stopping_.load(); });
    if (!linkage_ran_) {
      lock.unlock();
      FailSession(mfc, Status::FailedPrecondition("server stopped before linkage ran"));
      finish();
      return;
    }
    if (!linkage_status_.ok()) {
      const Status failed = linkage_status_;
      lock.unlock();
      FailSession(mfc, failed);
      finish();
      return;
    }
    summary = SummarizeForOwner(linkage_result_, database_index);
  }
  CountMessage(static_cast<uint8_t>(MessageType::kResults), "out");
  const bool delivered =
      mfc.Send(static_cast<uint8_t>(MessageType::kResults), EncodeResults(summary),
               MessageTypeTag(static_cast<uint8_t>(MessageType::kResults)))
          .ok();
  // Account the session's wire bytes before announcing delivery, so that
  // once WaitUntilDone() returns the cost counters are final.
  finish();
  if (delivered) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++results_delivered_;
    linkage_done_.notify_all();
  }
}

Status LinkageUnitServer::WaitUntilDone(int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto done = [this] {
    return linkage_ran_ && (!linkage_status_.ok() ||
                            results_delivered_ >= config_.expected_owners);
  };
  if (timeout_ms > 0) {
    if (!linkage_done_.wait_for(lock, std::chrono::milliseconds(timeout_ms), done)) {
      return Status::IoError("timed out waiting for the linkage run to finish");
    }
  } else {
    linkage_done_.wait(lock, done);
  }
  return linkage_status_;
}

Result<MultiPartyLinkageResult> LinkageUnitServer::result() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!linkage_ran_) {
    return Status::FailedPrecondition("linkage has not run yet");
  }
  if (!linkage_status_.ok()) return linkage_status_;
  return linkage_result_;
}

std::vector<std::string> LinkageUnitServer::owner_order() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return owner_order_;
}

}  // namespace pprl
