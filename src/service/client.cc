#include "service/client.h"

#include "common/logging.h"
#include "net/frame.h"

namespace pprl {

namespace {

/// Turns a received frame into the expected type's payload, translating
/// kError frames into their transported status.
Result<std::vector<uint8_t>> ExpectFrame(Result<Frame> frame, MessageType expected) {
  if (!frame.ok()) return frame.status();
  if (frame->type == static_cast<uint8_t>(MessageType::kError)) {
    auto err = DecodeError(frame->payload);
    if (!err.ok()) return err.status();
    // Reconstruct the server's status by code.
    const std::string msg = "server: " + err->message;
    switch (err->code) {
      case StatusCode::kInvalidArgument: return Status::InvalidArgument(msg);
      case StatusCode::kOutOfRange: return Status::OutOfRange(msg);
      case StatusCode::kNotFound: return Status::NotFound(msg);
      case StatusCode::kAlreadyExists: return Status::AlreadyExists(msg);
      case StatusCode::kFailedPrecondition: return Status::FailedPrecondition(msg);
      case StatusCode::kProtocolViolation: return Status::ProtocolViolation(msg);
      case StatusCode::kIoError: return Status::IoError(msg);
      default: return Status::Internal(msg);
    }
  }
  if (frame->type != static_cast<uint8_t>(expected)) {
    return Status::ProtocolViolation(
        "expected frame type " + std::to_string(static_cast<uint8_t>(expected)) +
        ", got " + std::to_string(frame->type));
  }
  return std::move(frame->payload);
}

}  // namespace

RemoteOwnerClient::RemoteOwnerClient(RemoteOwnerClientConfig config, Channel* meter)
    : config_(std::move(config)), meter_(meter) {}

Result<OwnerLinkageSummary> RemoteOwnerClient::ShipAndAwait(
    const std::string& owner, const EncodedDatabase& encoded) {
  if (encoded.ids.size() != encoded.filters.size()) {
    return Status::InvalidArgument("shipment ids/filters size mismatch");
  }
  if (encoded.filters.empty() || encoded.filters[0].empty()) {
    return Status::InvalidArgument("nothing to ship: empty encoding");
  }

  auto conn = TcpConnection::Connect(config_.host, config_.port, config_.connect);
  if (!conn.ok()) return conn.status();
  TcpConnection& socket = **conn;
  MeteredFrameConnection mfc(socket, meter_, owner, config_.max_frame_payload);
  mfc.set_peer(config_.server_label);

  const auto record_wire_bytes = [&] {
    wire_bytes_sent_ = socket.wire_bytes_sent();
    wire_bytes_received_ = socket.wire_bytes_received();
  };

  // 1. Handshake.
  HelloMessage hello;
  hello.protocol_version = kWireProtocolVersion;
  hello.party = owner;
  hello.filter_bits = static_cast<uint32_t>(encoded.filters[0].size());
  hello.record_count = static_cast<uint32_t>(encoded.size());
  Status sent = mfc.Send(static_cast<uint8_t>(MessageType::kHello), EncodeHello(hello),
                         MessageTypeTag(static_cast<uint8_t>(MessageType::kHello)));
  if (!sent.ok()) {
    record_wire_bytes();
    return sent;
  }
  auto ack_payload = ExpectFrame(mfc.Receive(MessageTypeTag), MessageType::kHelloAck);
  if (!ack_payload.ok()) {
    record_wire_bytes();
    return ack_payload.status();
  }
  auto ack = DecodeHelloAck(*ack_payload);
  if (!ack.ok()) {
    record_wire_bytes();
    return ack.status();
  }
  if (ack->protocol_version != kWireProtocolVersion) {
    record_wire_bytes();
    return Status::ProtocolViolation("server speaks protocol version " +
                                     std::to_string(ack->protocol_version) +
                                     ", client speaks " +
                                     std::to_string(kWireProtocolVersion));
  }
  server_name_ = ack->server;
  mfc.set_peer(ack->server);

  // 2. Shipment.
  auto shipment_payload = EncodeShipment(encoded);
  if (!shipment_payload.ok()) {
    record_wire_bytes();
    return shipment_payload.status();
  }
  sent = mfc.Send(static_cast<uint8_t>(MessageType::kShipment), *shipment_payload,
                  MessageTypeTag(static_cast<uint8_t>(MessageType::kShipment)));
  if (!sent.ok()) {
    record_wire_bytes();
    return sent;
  }
  auto ship_ack_payload =
      ExpectFrame(mfc.Receive(MessageTypeTag), MessageType::kShipmentAck);
  if (!ship_ack_payload.ok()) {
    record_wire_bytes();
    return ship_ack_payload.status();
  }
  auto ship_ack = DecodeShipmentAck(*ship_ack_payload);
  if (!ship_ack.ok()) {
    record_wire_bytes();
    return ship_ack.status();
  }
  PPRL_LOG(kDebug) << "owner '" << owner << "' shipped (" << ship_ack->owners_shipped
                   << "/" << ship_ack->expected_owners << " owners in)";

  // 3. Results — the linkage waits for the slowest owner, so be patient.
  socket.SetIoTimeout(config_.result_wait_timeout_ms);
  auto results_payload = ExpectFrame(mfc.Receive(MessageTypeTag), MessageType::kResults);
  record_wire_bytes();
  if (!results_payload.ok()) return results_payload.status();
  return DecodeResults(*results_payload);
}

Status RemoteOwnerClient::Deliver(const std::string& owner,
                                  const EncodedDatabase& encoded) {
  auto summary = ShipAndAwait(owner, encoded);
  if (!summary.ok()) return summary.status();
  summary_ = std::move(*summary);
  return Status::OK();
}

}  // namespace pprl
