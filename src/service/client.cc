#include "service/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "net/frame.h"
#include "net/retry.h"
#include "obs/metrics.h"

namespace pprl {

namespace {

void CountRetry(const char* reason) {
  obs::GlobalMetrics()
      .GetCounter("pprl_retries_total",
                  "Client session retries, by trigger", {{"reason", reason}})
      .Increment();
}

/// Errors retrying cannot fix: the server rejected the request itself,
/// not this attempt at delivering it.
bool Terminal(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

/// Turns a received frame into the expected type's payload, translating
/// kError frames into their transported status and kBusy frames into a
/// retryable kIoError carrying the server's retry-after hint.
Result<std::vector<uint8_t>> ExpectFrame(Result<Frame> frame, MessageType expected,
                                         int* busy_retry_after_ms) {
  if (!frame.ok()) {
    // The frame reader's kNotFound is a *clean EOF between frames* — the
    // peer hung up mid-session, which is an ordinary connection loss. It
    // must not be confused with a server-sent kError(kNotFound) ("unknown
    // session"), the only kNotFound that should make the client abandon
    // its resume cursor and start over.
    if (frame.status().code() == StatusCode::kNotFound) {
      return Status::IoError("connection closed mid-session (" +
                             frame.status().message() + ")");
    }
    return frame.status();
  }
  if (frame->type == static_cast<uint8_t>(MessageType::kBusy)) {
    auto busy = DecodeBusy(frame->payload);
    if (!busy.ok()) return busy.status();
    if (busy_retry_after_ms != nullptr) {
      *busy_retry_after_ms = static_cast<int>(busy->retry_after_ms);
    }
    return Status::IoError("server busy: " + busy->reason);
  }
  if (frame->type == static_cast<uint8_t>(MessageType::kError)) {
    auto err = DecodeError(frame->payload);
    if (!err.ok()) return err.status();
    // Reconstruct the server's status by code.
    const std::string msg = "server: " + err->message;
    switch (err->code) {
      case StatusCode::kInvalidArgument: return Status::InvalidArgument(msg);
      case StatusCode::kOutOfRange: return Status::OutOfRange(msg);
      case StatusCode::kNotFound: return Status::NotFound(msg);
      case StatusCode::kAlreadyExists: return Status::AlreadyExists(msg);
      case StatusCode::kFailedPrecondition: return Status::FailedPrecondition(msg);
      case StatusCode::kProtocolViolation: return Status::ProtocolViolation(msg);
      case StatusCode::kIoError: return Status::IoError(msg);
      default: return Status::Internal(msg);
    }
  }
  if (frame->type != static_cast<uint8_t>(expected)) {
    return Status::ProtocolViolation(
        "expected frame type " + std::to_string(static_cast<uint8_t>(expected)) +
        ", got " + std::to_string(frame->type));
  }
  return std::move(frame->payload);
}

/// The owner-side cursor of one delivery, carried across attempts.
struct SessionCursor {
  uint64_t session_id = 0;
  uint64_t acked = 0;
  bool shipment_complete = false;
  /// Shipment bytes already metered into the channel; retransmissions
  /// below this cursor are not metered again.
  uint64_t metered_up_to = 0;
  size_t max_chunk = 0;
};

}  // namespace

RemoteOwnerClient::RemoteOwnerClient(RemoteOwnerClientConfig config, Channel* meter)
    : config_(std::move(config)), meter_(meter) {}

Result<OwnerLinkageSummary> RemoteOwnerClient::ShipAndAwait(
    const std::string& owner, const EncodedDatabase& encoded) {
  if (encoded.ids.size() != encoded.filters.size()) {
    return Status::InvalidArgument("shipment ids/filters size mismatch");
  }
  if (encoded.filters.empty() || encoded.filters[0].empty()) {
    return Status::InvalidArgument("nothing to ship: empty encoding");
  }
  auto shipment_payload = EncodeShipment(encoded);
  if (!shipment_payload.ok()) return shipment_payload.status();
  return DeliverPayload(owner, *shipment_payload,
                        static_cast<uint32_t>(encoded.filters[0].size()),
                        static_cast<uint32_t>(encoded.size()));
}

Result<OwnerLinkageSummary> RemoteOwnerClient::ShipShardAndAwait(
    const std::string& owner, const EncodedShard& shard) {
  if (shard.ids.size() != shard.bits.num_rows()) {
    return Status::InvalidArgument("shipment ids/filters size mismatch");
  }
  if (shard.size() == 0 || shard.bits.num_bits() == 0) {
    return Status::InvalidArgument("nothing to ship: empty encoding");
  }
  auto shipment_payload = EncodeShipment(shard);
  if (!shipment_payload.ok()) return shipment_payload.status();
  return DeliverPayload(owner, *shipment_payload,
                        static_cast<uint32_t>(shard.bits.num_bits()),
                        static_cast<uint32_t>(shard.size()));
}

Result<OwnerLinkageSummary> RemoteOwnerClient::DeliverPayload(
    const std::string& owner, const std::vector<uint8_t>& shipment,
    uint32_t filter_bits, uint32_t record_count) {
  wire_bytes_sent_ = 0;
  wire_bytes_received_ = 0;
  retries_ = 0;

  SessionCursor cursor;
  cursor.max_chunk = std::max<size_t>(config_.chunk_bytes, 1);
  RetryBackoff backoff(config_.retry);

  // Set (>= 0) when an attempt ended on a kBusy frame: the server's
  // retry-after hint, which replaces the exponential backoff.
  int busy_hint_ms = -1;

  // One attempt = one connection lifetime: handshake (hello or resume),
  // chunk loop from the acked cursor, then the results wait. Returns the
  // summary or the error that ended the connection.
  const auto attempt_session =
      [&](int attempt) -> Result<OwnerLinkageSummary> {
    auto conn = TcpConnection::Connect(config_.host, config_.port, config_.connect);
    if (!conn.ok()) return conn.status();
    TcpConnection& socket = **conn;
    std::unique_ptr<FaultInjectingConnection> chaos;
    Connection* wire = &socket;
    if (config_.fault.enabled()) {
      chaos = std::make_unique<FaultInjectingConnection>(
          socket, config_.fault.WithSeed(config_.fault.seed +
                                         0x9e3779b97f4a7c15ULL *
                                             static_cast<uint64_t>(attempt + 1)));
      wire = chaos.get();
    }
    MeteredFrameConnection mfc(*wire, meter_, owner, config_.max_frame_payload);
    mfc.set_peer(server_name_.empty() ? config_.server_label : server_name_);

    struct WireTally {
      TcpConnection& socket;
      size_t& sent;
      size_t& received;
      ~WireTally() {
        sent += socket.wire_bytes_sent();
        received += socket.wire_bytes_received();
      }
    } tally{socket, wire_bytes_sent_, wire_bytes_received_};

    // 1. Handshake: a fresh hello, or a resume of the server-side session.
    if (cursor.session_id == 0) {
      HelloMessage hello;
      hello.protocol_version = kWireProtocolVersion;
      hello.party = owner;
      hello.filter_bits = filter_bits;
      hello.record_count = record_count;
      PPRL_RETURN_IF_ERROR(mfc.Send(static_cast<uint8_t>(MessageType::kHello),
                                    EncodeHello(hello),
                                    MessageTypeTag(static_cast<uint8_t>(MessageType::kHello))));
      auto ack_payload = ExpectFrame(mfc.Receive(MessageTypeTag),
                                     MessageType::kHelloAck, &busy_hint_ms);
      if (!ack_payload.ok()) return ack_payload.status();
      auto ack = DecodeHelloAck(*ack_payload);
      if (!ack.ok()) return ack.status();
      if (ack->protocol_version != kWireProtocolVersion) {
        return Status::ProtocolViolation("server speaks protocol version " +
                                         std::to_string(ack->protocol_version) +
                                         ", client speaks " +
                                         std::to_string(kWireProtocolVersion));
      }
      server_name_ = ack->server;
      mfc.set_peer(ack->server);
      cursor.session_id = ack->session_id;
      cursor.max_chunk = std::min<size_t>(std::max<size_t>(config_.chunk_bytes, 1),
                                          ack->max_chunk_bytes);
    } else {
      ResumeMessage resume;
      resume.protocol_version = kWireProtocolVersion;
      resume.party = owner;
      resume.session_id = cursor.session_id;
      PPRL_RETURN_IF_ERROR(
          mfc.Send(static_cast<uint8_t>(MessageType::kResume), EncodeResume(resume),
                   MessageTypeTag(static_cast<uint8_t>(MessageType::kResume))));
      auto rack_payload = ExpectFrame(mfc.Receive(MessageTypeTag),
                                      MessageType::kResumeAck, &busy_hint_ms);
      if (!rack_payload.ok()) return rack_payload.status();
      auto rack = DecodeResumeAck(*rack_payload);
      if (!rack.ok()) return rack.status();
      if (rack->session_id != cursor.session_id ||
          rack->acked_bytes > shipment.size()) {
        return Status::ProtocolViolation("resume-ack does not match the session");
      }
      cursor.acked = rack->acked_bytes;
      cursor.shipment_complete = rack->shipment_complete;
      PPRL_LOG(kDebug) << "owner '" << owner << "' resumed session "
                       << cursor.session_id << " at byte " << cursor.acked;
    }

    // 2. Chunked shipment from the acked cursor (stop-and-wait: each
    // chunk is acked before the next, so the resume point is always the
    // server's last ack).
    while (!cursor.shipment_complete) {
      const size_t n =
          std::min<size_t>(cursor.max_chunk, shipment.size() - cursor.acked);
      ShipmentChunkMessage chunk;
      chunk.session_id = cursor.session_id;
      chunk.offset = cursor.acked;
      chunk.last = cursor.acked + n == shipment.size();
      chunk.data.assign(shipment.begin() + static_cast<ptrdiff_t>(cursor.acked),
                        shipment.begin() + static_cast<ptrdiff_t>(cursor.acked + n));
      // Meter only bytes never metered before, mirroring the server's
      // applied-bytes accounting across retransmissions.
      const uint64_t end = cursor.acked + n;
      const size_t fresh =
          end > cursor.metered_up_to
              ? static_cast<size_t>(end - std::max(cursor.acked, cursor.metered_up_to))
              : 0;
      PPRL_RETURN_IF_ERROR(
          mfc.Send(static_cast<uint8_t>(MessageType::kShipmentChunk),
                   EncodeShipmentChunk(chunk),
                   MessageTypeTag(static_cast<uint8_t>(MessageType::kShipmentChunk)),
                   fresh));
      cursor.metered_up_to = std::max<uint64_t>(cursor.metered_up_to, end);
      auto ack_payload = ExpectFrame(mfc.Receive(MessageTypeTag),
                                     MessageType::kShipmentAck, &busy_hint_ms);
      if (!ack_payload.ok()) return ack_payload.status();
      auto ack = DecodeShipmentAck(*ack_payload);
      if (!ack.ok()) return ack.status();
      if (ack->session_id != cursor.session_id || ack->acked_bytes < cursor.acked ||
          ack->acked_bytes > shipment.size()) {
        return Status::ProtocolViolation("shipment-ack does not match the session");
      }
      cursor.acked = ack->acked_bytes;
      cursor.shipment_complete = ack->complete;
      if (!ack->complete && cursor.acked >= shipment.size()) {
        return Status::ProtocolViolation(
            "server acked the whole shipment without completing it");
      }
      if (ack->complete) {
        PPRL_LOG(kDebug) << "owner '" << owner << "' shipped ("
                         << ack->owners_shipped << "/" << ack->expected_owners
                         << " owners in)";
      }
    }

    // 3. Results — the linkage waits for the slowest owner, so be patient.
    // Re-shipment mode (coordinator -> worker) ends here: workers never
    // send a results frame for an owner session.
    if (!config_.wait_for_results) return OwnerLinkageSummary{};
    wire->SetIoTimeout(config_.result_wait_timeout_ms);
    auto results_payload = ExpectFrame(mfc.Receive(MessageTypeTag),
                                       MessageType::kResults, &busy_hint_ms);
    if (!results_payload.ok()) return results_payload.status();
    return DecodeResults(*results_payload);
  };

  Status last_error = Status::IoError("no delivery attempt made");
  for (int attempt = 0; attempt < std::max(config_.retry.max_attempts, 1);
       ++attempt) {
    busy_hint_ms = -1;
    {
      auto outcome = attempt_session(attempt);
      if (outcome.ok()) return outcome;
      last_error = outcome.status();
    }
    if (Terminal(last_error)) return last_error;
    if (last_error.code() == StatusCode::kNotFound) {
      // The server no longer knows the session (swept, or restarted):
      // start over with a fresh hello and re-meter from scratch.
      PPRL_LOG(kWarning) << "owner '" << owner << "' session "
                         << cursor.session_id << " lost on the server ("
                         << last_error.message() << "); starting over";
      cursor = SessionCursor{};
      cursor.max_chunk = std::max<size_t>(config_.chunk_bytes, 1);
    }
    const bool busy = busy_hint_ms >= 0;
    // Exponential backoff with multiplicative jitter (net/retry.h); kBusy
    // replaces the backoff with the server's own hint.
    const int delay_ms = backoff.NextDelayMs(attempt, busy_hint_ms);
    CountRetry(busy ? "busy" : "io");
    ++retries_;
    if (backoff.DeadlineExceededAfter(delay_ms)) {
      return Status::IoError("delivery deadline exceeded after " +
                             std::to_string(attempt + 1) +
                             " attempts; last error: " + last_error.message());
    }
    PPRL_LOG(kDebug) << "owner '" << owner << "' retrying in " << delay_ms
                     << " ms: " << last_error.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return Status::IoError("delivery failed after " +
                         std::to_string(config_.retry.max_attempts) +
                         " attempts; last error: " + last_error.message());
}

Status RemoteOwnerClient::Deliver(const std::string& owner,
                                  const EncodedDatabase& encoded) {
  auto summary = ShipAndAwait(owner, encoded);
  if (!summary.ok()) return summary.status();
  summary_ = std::move(*summary);
  return Status::OK();
}

OnlineLinkClient::OnlineLinkClient(OnlineLinkClientConfig config, Channel* meter)
    : config_(std::move(config)), meter_(meter) {}

OnlineLinkClient::~OnlineLinkClient() { Close(); }

void OnlineLinkClient::Close() {
  mfc_.reset();
  if (conn_) conn_->Close();
  conn_.reset();
}

Status OnlineLinkClient::Connect(const std::string& party, uint32_t filter_bits) {
  if (party.empty()) return Status::InvalidArgument("party name missing");
  if (filter_bits == 0) return Status::InvalidArgument("filter bit length missing");
  Close();
  party_ = party;
  filter_bits_ = filter_bits;
  session_id_ = 0;
  appended_ = 0;
  return EnsureConnected();
}

Status OnlineLinkClient::EnsureConnected() {
  if (mfc_) return Status::OK();
  if (party_.empty()) return Status::FailedPrecondition("Connect() first");
  auto conn = TcpConnection::Connect(config_.host, config_.port, config_.connect);
  if (!conn.ok()) return conn.status();
  conn_ = std::move(*conn);
  conn_->SetIoTimeout(config_.io_timeout_ms);
  mfc_ = std::make_unique<MeteredFrameConnection>(*conn_, meter_, party_,
                                                  config_.max_frame_payload);
  mfc_->set_peer(server_name_.empty() ? config_.server_label : server_name_);

  int busy_hint = -1;
  if (session_id_ == 0) {
    // Fresh session: the online query-only handshake (zero records —
    // appends are still allowed, cursored by the engine).
    HelloMessage hello;
    hello.protocol_version = kWireProtocolVersion;
    hello.party = party_;
    hello.filter_bits = filter_bits_;
    hello.record_count = 0;
    Status sent =
        mfc_->Send(static_cast<uint8_t>(MessageType::kHello), EncodeHello(hello),
                   MessageTypeTag(static_cast<uint8_t>(MessageType::kHello)));
    if (!sent.ok()) {
      Close();
      return sent;
    }
    auto ack_payload = ExpectFrame(mfc_->Receive(MessageTypeTag),
                                   MessageType::kHelloAck, &busy_hint);
    if (!ack_payload.ok()) {
      Close();
      return ack_payload.status();
    }
    auto ack = DecodeHelloAck(*ack_payload);
    if (!ack.ok()) {
      Close();
      return ack.status();
    }
    if (ack->protocol_version != kWireProtocolVersion) {
      Close();
      return Status::ProtocolViolation(
          "server speaks protocol version " + std::to_string(ack->protocol_version) +
          ", client speaks " + std::to_string(kWireProtocolVersion));
    }
    server_name_ = ack->server;
    mfc_->set_peer(ack->server);
    session_id_ = ack->session_id;
    return Status::OK();
  }

  // Re-attach the server-side session after a connection loss.
  ResumeMessage resume;
  resume.protocol_version = kWireProtocolVersion;
  resume.party = party_;
  resume.session_id = session_id_;
  Status sent =
      mfc_->Send(static_cast<uint8_t>(MessageType::kResume), EncodeResume(resume),
                 MessageTypeTag(static_cast<uint8_t>(MessageType::kResume)));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  auto rack_payload = ExpectFrame(mfc_->Receive(MessageTypeTag),
                                  MessageType::kResumeAck, &busy_hint);
  if (!rack_payload.ok()) {
    Close();
    if (rack_payload.status().code() == StatusCode::kNotFound) {
      // Swept on the server: start a fresh session. The record cursor
      // lives in the engine, not the session, so appends stay idempotent.
      session_id_ = 0;
      return EnsureConnected();
    }
    return rack_payload.status();
  }
  auto rack = DecodeResumeAck(*rack_payload);
  if (!rack.ok()) {
    Close();
    return rack.status();
  }
  if (rack->session_id != session_id_) {
    Close();
    return Status::ProtocolViolation("resume-ack does not match the session");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> OnlineLinkClient::Roundtrip(
    MessageType send_type,
    const std::function<std::vector<uint8_t>()>& make_payload,
    MessageType expected) {
  RetryBackoff backoff(config_.retry);
  Status last_error = Status::IoError("no attempt made");
  for (int attempt = 0; attempt < std::max(config_.retry.max_attempts, 1);
       ++attempt) {
    int busy_hint = -1;
    Status ready = EnsureConnected();
    if (ready.ok()) {
      Status sent =
          mfc_->Send(static_cast<uint8_t>(send_type), make_payload(),
                     MessageTypeTag(static_cast<uint8_t>(send_type)));
      if (sent.ok()) {
        auto reply =
            ExpectFrame(mfc_->Receive(MessageTypeTag), expected, &busy_hint);
        if (reply.ok()) return reply;
        last_error = reply.status();
      } else {
        last_error = sent;
      }
      // Failed mid-exchange: drop the connection, redial next attempt.
      Close();
    } else {
      last_error = ready;
    }
    if (Terminal(last_error)) return last_error;
    if (last_error.code() == StatusCode::kNotFound) {
      session_id_ = 0;  // swept on the server: fresh hello next attempt
    }
    const bool busy = busy_hint >= 0;
    const int delay_ms = backoff.NextDelayMs(attempt, busy_hint);
    CountRetry(busy ? "busy" : "io");
    ++retries_;
    if (backoff.DeadlineExceededAfter(delay_ms)) break;
    PPRL_LOG(kDebug) << "owner '" << party_ << "' retrying online round trip in "
                     << delay_ms << " ms: " << last_error.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return Status::IoError("online round trip failed: " + last_error.message());
}

Result<uint64_t> OnlineLinkClient::AppendRows(const EncodedShard& shard,
                                              size_t row_begin, size_t row_end) {
  if (filter_bits_ == 0) return Status::FailedPrecondition("Connect() first");
  if (shard.bits.num_bits() != filter_bits_) {
    return Status::InvalidArgument("shard filter bits do not match the session");
  }
  auto data = EncodeShipmentRows(shard, row_begin, row_end);
  if (!data.ok()) return data.status();
  const uint32_t count = static_cast<uint32_t>(row_end - row_begin);
  const uint64_t base = appended_;
  auto reply = Roundtrip(
      MessageType::kAppendRecords,
      [&] {
        AppendRecordsMessage msg;
        msg.session_id = session_id_;
        msg.base_index = base;
        msg.filter_bits = filter_bits_;
        msg.count = count;
        msg.data = *data;
        return EncodeAppendRecords(msg);
      },
      MessageType::kShipmentAck);
  if (!reply.ok()) return reply.status();
  auto ack = DecodeShipmentAck(*reply);
  if (!ack.ok()) return ack.status();
  if (ack->session_id != session_id_ || ack->acked_bytes < base + count) {
    return Status::ProtocolViolation("append ack does not cover the batch");
  }
  appended_ = ack->acked_bytes;
  return appended_;
}

Result<uint64_t> OnlineLinkClient::ServerCursor() {
  if (filter_bits_ == 0) return Status::FailedPrecondition("Connect() first");
  auto reply = Roundtrip(
      MessageType::kAppendRecords,
      [&] {
        AppendRecordsMessage msg;
        msg.session_id = session_id_;
        // base_index 0 always passes the server's gap check, and an empty
        // batch appends nothing — the ack is purely the cursor readback.
        msg.base_index = 0;
        msg.filter_bits = filter_bits_;
        msg.count = 0;
        return EncodeAppendRecords(msg);
      },
      MessageType::kShipmentAck);
  if (!reply.ok()) return reply.status();
  auto ack = DecodeShipmentAck(*reply);
  if (!ack.ok()) return ack.status();
  if (ack->session_id != session_id_) {
    return Status::ProtocolViolation("cursor ack names a different session");
  }
  appended_ = ack->acked_bytes;
  return appended_;
}

Result<QueryResultMessage> OnlineLinkClient::QueryRows(
    const EncodedShard& shard, size_t row_begin, size_t row_end,
    bool want_clusters, uint32_t top_k) {
  if (filter_bits_ == 0) return Status::FailedPrecondition("Connect() first");
  if (shard.bits.num_bits() != filter_bits_) {
    return Status::InvalidArgument("shard filter bits do not match the session");
  }
  auto data = EncodeShipmentRows(shard, row_begin, row_end);
  if (!data.ok()) return data.status();
  const uint32_t count = static_cast<uint32_t>(row_end - row_begin);
  const uint64_t query_id = next_query_id_++;
  auto reply = Roundtrip(
      MessageType::kQuery,
      [&] {
        QueryMessage msg;
        msg.session_id = session_id_;
        msg.query_id = query_id;
        msg.want_clusters = want_clusters;
        msg.top_k = top_k;
        msg.filter_bits = filter_bits_;
        msg.count = count;
        msg.data = *data;
        return EncodeQuery(msg);
      },
      MessageType::kQueryResult);
  if (!reply.ok()) return reply.status();
  auto result = DecodeQueryResult(*reply);
  if (!result.ok()) return result.status();
  if (result->query_id != query_id) {
    return Status::ProtocolViolation("query-result answers a different query");
  }
  if (result->records.size() != count) {
    return Status::ProtocolViolation("query-result record count mismatch");
  }
  return result;
}

}  // namespace pprl
