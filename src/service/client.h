#ifndef PPRL_SERVICE_CLIENT_H_
#define PPRL_SERVICE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "net/transport.h"
#include "pipeline/party.h"
#include "service/protocol.h"

namespace pprl {

/// How a database owner reaches a linkage-unit daemon.
struct RemoteOwnerClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Label used for metering routes before the handshake confirms the
  /// server's own name.
  std::string server_label = "linkage-unit";
  ConnectOptions connect;
  /// After shipping, the linkage waits for the slowest owner; results can
  /// take much longer than a normal read.
  int result_wait_timeout_ms = 120000;
  size_t max_frame_payload = kDefaultMaxFramePayload;
};

/// A database owner's view of a remote linkage unit.
///
/// Implements `EncodingSink`, so `DatabaseOwner::ShipEncodings(sink)` works
/// identically against an in-process unit or a daemon across the network.
/// One Deliver() call performs a full session: connect (with retry +
/// exponential backoff), handshake, shipment, and blocking receipt of the
/// per-owner results.
///
/// Pass a `Channel` to meter traffic with the same route/tag accounting as
/// the in-process path; frame-header overhead is excluded there and
/// available via wire_bytes_sent()/received().
class RemoteOwnerClient : public EncodingSink {
 public:
  explicit RemoteOwnerClient(RemoteOwnerClientConfig config, Channel* meter = nullptr);

  /// Full protocol session for `owner`'s shipment; returns the owner's
  /// linkage summary. Server-reported failures come back with the
  /// server's status code and message.
  Result<OwnerLinkageSummary> ShipAndAwait(const std::string& owner,
                                           const EncodedDatabase& encoded);

  /// EncodingSink: runs ShipAndAwait and stores the summary for
  /// summary().
  Status Deliver(const std::string& owner, const EncodedDatabase& encoded) override;

  /// The summary of the last successful Deliver()/ShipAndAwait().
  const std::optional<OwnerLinkageSummary>& summary() const { return summary_; }

  /// The server's self-reported name (after a successful handshake).
  const std::string& server_name() const { return server_name_; }

  /// Raw socket bytes of the last session, frame headers included.
  size_t wire_bytes_sent() const { return wire_bytes_sent_; }
  size_t wire_bytes_received() const { return wire_bytes_received_; }

 private:
  RemoteOwnerClientConfig config_;
  Channel* meter_;
  std::optional<OwnerLinkageSummary> summary_;
  std::string server_name_;
  size_t wire_bytes_sent_ = 0;
  size_t wire_bytes_received_ = 0;
};

}  // namespace pprl

#endif  // PPRL_SERVICE_CLIENT_H_
