#ifndef PPRL_SERVICE_CLIENT_H_
#define PPRL_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/fault_injection.h"
#include "net/retry.h"
#include "net/transport.h"
#include "pipeline/party.h"
#include "service/protocol.h"

namespace pprl {

/// Session-level retry policy: how hard a Deliver() tries before giving
/// up. Connection loss, timeouts, corrupted frames and kBusy shedding are
/// all retried (resuming the server-side session where it left off);
/// errors that retrying cannot fix — kInvalidArgument, kAlreadyExists,
/// kFailedPrecondition, kInternal — end the delivery at once. The policy
/// itself (attempts, backoff, jitter, deadline) lives in net/retry.h so
/// the coordinator's worker links share it.
using SessionRetryPolicy = RetryPolicy;

/// How a database owner reaches a linkage-unit daemon.
struct RemoteOwnerClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Label used for metering routes before the handshake confirms the
  /// server's own name.
  std::string server_label = "linkage-unit";
  ConnectOptions connect;
  /// After shipping, the linkage waits for the slowest owner; results can
  /// take much longer than a normal read.
  int result_wait_timeout_ms = 120000;
  /// When false, Deliver() returns as soon as the server acks the
  /// shipment complete, with an empty summary — the coordinator's
  /// re-shipment mode, where worker daemons never send a results frame.
  bool wait_for_results = true;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Preferred shipment chunk size; the effective size is capped by the
  /// server's advertised max_chunk_bytes.
  size_t chunk_bytes = 4u << 20;
  SessionRetryPolicy retry;
  /// Chaos mode: when enabled(), every dialled connection is wrapped in a
  /// FaultInjectingConnection with a per-attempt derived seed.
  FaultSpec fault;
};

/// A database owner's view of a remote linkage unit.
///
/// Implements `EncodingSink`, so `DatabaseOwner::ShipEncodings(sink)` works
/// identically against an in-process unit or a daemon across the network.
/// One Deliver() call performs a full fault-tolerant session: connect,
/// handshake, chunked shipment with acked offsets, and blocking receipt
/// of the per-owner results — reconnecting and resuming the server-side
/// session (per `retry`) whenever the connection fails along the way.
///
/// Pass a `Channel` to meter traffic with the same route/tag accounting as
/// the in-process path; frame-header and chunk-header overhead is excluded
/// there and available via wire_bytes_sent()/received(). Shipment bytes
/// are metered against a high-water cursor, so retransmitted spans are
/// counted once — mirroring the server's applied-bytes accounting.
class RemoteOwnerClient : public EncodingSink {
 public:
  explicit RemoteOwnerClient(RemoteOwnerClientConfig config, Channel* meter = nullptr);

  /// Full protocol session for `owner`'s shipment; returns the owner's
  /// linkage summary. Server-reported failures come back with the
  /// server's status code and message.
  Result<OwnerLinkageSummary> ShipAndAwait(const std::string& owner,
                                           const EncodedDatabase& encoded);

  /// Same session, shipping a batch-layout shard (the streaming-ingest
  /// type): the wire payload is built straight from the `BitMatrix` rows,
  /// byte-identical to shipping the equivalent `EncodedDatabase`.
  Result<OwnerLinkageSummary> ShipShardAndAwait(const std::string& owner,
                                                const EncodedShard& shard);

  /// EncodingSink: runs ShipAndAwait and stores the summary for
  /// summary().
  Status Deliver(const std::string& owner, const EncodedDatabase& encoded) override;

  /// The summary of the last successful Deliver()/ShipAndAwait().
  const std::optional<OwnerLinkageSummary>& summary() const { return summary_; }

  /// The server's self-reported name (after a successful handshake).
  const std::string& server_name() const { return server_name_; }

  /// Raw socket bytes of the last Deliver(), frame headers included,
  /// summed over every attempt.
  size_t wire_bytes_sent() const { return wire_bytes_sent_; }
  size_t wire_bytes_received() const { return wire_bytes_received_; }

  /// Retries the last Deliver() needed beyond its first attempt.
  size_t retries() const { return retries_; }

 private:
  /// The fault-tolerant delivery loop shared by both Ship* entry points:
  /// `shipment` is a full EncodeShipment payload, `filter_bits` and
  /// `record_count` fill the Hello.
  Result<OwnerLinkageSummary> DeliverPayload(const std::string& owner,
                                             const std::vector<uint8_t>& shipment,
                                             uint32_t filter_bits,
                                             uint32_t record_count);

  RemoteOwnerClientConfig config_;
  Channel* meter_;
  std::optional<OwnerLinkageSummary> summary_;
  std::string server_name_;
  size_t wire_bytes_sent_ = 0;
  size_t wire_bytes_received_ = 0;
  size_t retries_ = 0;
};

/// How an owner reaches an online (protocol v4) linkage unit.
struct OnlineLinkClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Label used for metering routes before the handshake confirms the
  /// server's own name.
  std::string server_label = "linkage-unit";
  ConnectOptions connect;
  int io_timeout_ms = 30000;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  SessionRetryPolicy retry;
};

/// An owner's persistent session against an online linkage unit
/// (`LinkageUnitServerConfig::online_mode`): one connection carries any
/// number of kAppendRecords / kQuery round trips.
///
/// Fault tolerance mirrors RemoteOwnerClient: a lost connection is
/// redialled and the server-side session resumed (fresh hello if it was
/// swept). Appends are idempotent by the session's record cursor, queries
/// are stateless, so every operation is safe to retry.
///
/// AppendRows assumes this client is its party's only writer and that it
/// appends from the party's current server-side cursor (record 0 on a
/// fresh daemon): batches the server has already applied are skipped
/// idempotently, which is exactly what makes retries safe.
class OnlineLinkClient {
 public:
  explicit OnlineLinkClient(OnlineLinkClientConfig config, Channel* meter = nullptr);
  ~OnlineLinkClient();

  OnlineLinkClient(const OnlineLinkClient&) = delete;
  OnlineLinkClient& operator=(const OnlineLinkClient&) = delete;

  /// Opens a session as `party` (hello with record_count = 0 — the online
  /// query-only handshake; appends are still allowed on it).
  Status Connect(const std::string& party, uint32_t filter_bits);

  /// Appends rows [row_begin, row_end) of `shard` and returns the party's
  /// record cursor after the ack.
  Result<uint64_t> AppendRows(const EncodedShard& shard, size_t row_begin,
                              size_t row_end);

  /// Re-derives the party's record cursor from the server: a zero-record
  /// append probe whose ack carries the server-side count. Resyncs
  /// appended() — after a server crash + recovery this is how an owner
  /// learns where its re-drive must continue (registers the party on
  /// first contact, like any append).
  Result<uint64_t> ServerCursor();

  /// Link-queries rows [row_begin, row_end) of `shard`; one result per
  /// row, in row order. `top_k = 0` means the server's default cap.
  Result<QueryResultMessage> QueryRows(const EncodedShard& shard, size_t row_begin,
                                       size_t row_end, bool want_clusters,
                                       uint32_t top_k);

  /// Closes the connection (the server-side session stays resumable).
  void Close();

  /// The party's record cursor as of the last append ack.
  uint64_t appended() const { return appended_; }
  const std::string& server_name() const { return server_name_; }
  size_t retries() const { return retries_; }

 private:
  /// Dials and handshakes (resume when a session exists, else hello).
  Status EnsureConnected();
  /// Sends `make_payload()` and awaits `expected`, redialling per the
  /// retry policy on connection loss or kBusy. The payload is rebuilt per
  /// attempt so it names the session id in effect after any re-handshake.
  Result<std::vector<uint8_t>> Roundtrip(
      MessageType send_type,
      const std::function<std::vector<uint8_t>()>& make_payload,
      MessageType expected);

  OnlineLinkClientConfig config_;
  Channel* meter_;
  std::string party_;
  uint32_t filter_bits_ = 0;
  uint64_t session_id_ = 0;
  uint64_t appended_ = 0;
  uint64_t next_query_id_ = 1;
  std::string server_name_;
  size_t retries_ = 0;

  std::unique_ptr<TcpConnection> conn_;
  std::unique_ptr<MeteredFrameConnection> mfc_;
};

}  // namespace pprl

#endif  // PPRL_SERVICE_CLIENT_H_
