#include "service/durability.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "net/fault_injection.h"
#include "obs/metrics.h"

namespace pprl {

namespace {

using Clock = std::chrono::steady_clock;

Status MkdirIfMissing(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("durability needs a directory");
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IoError("cannot create directory " + dir + ": " +
                         std::strerror(errno));
}

struct DurabilityMetrics {
  obs::Counter& recovery_runs = obs::GlobalMetrics().GetCounter(
      "pprl_recovery_runs_total", "startup recoveries that found prior state");
  obs::Counter& replayed_records = obs::GlobalMetrics().GetCounter(
      "pprl_recovery_replayed_records_total",
      "records re-applied from WAL replay during recovery");
};

DurabilityMetrics& Metrics() {
  static DurabilityMetrics metrics;
  return metrics;
}

}  // namespace

OnlineDurability::OnlineDurability(DurabilityConfig config)
    : config_(std::move(config)) {
  if (config_.checkpoint_dir.empty()) config_.checkpoint_dir = config_.wal_dir;
  if (config_.wal_batch_records == 0) config_.wal_batch_records = 512;
}

Status OnlineDurability::Recover(std::unique_ptr<OnlineLinkageEngine>* engine,
                                 RecoveryReport* report) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Clock::time_point start = Clock::now();
  PPRL_RETURN_IF_ERROR(MkdirIfMissing(config_.wal_dir));
  PPRL_RETURN_IF_ERROR(MkdirIfMissing(config_.checkpoint_dir));
  engine->reset();
  *report = RecoveryReport();

  auto checkpoints = io::ListCheckpoints(config_.checkpoint_dir);
  if (!checkpoints.ok()) return checkpoints.status();
  uint64_t last_sequence = 0;
  if (!checkpoints->empty()) {
    const std::string& path = checkpoints->back().second;
    auto snapshot = io::ReadCheckpointFile(path);
    if (!snapshot.ok()) return snapshot.status();
    auto restored =
        OnlineLinkageEngine::FromSnapshot(*snapshot, config_.serving_options);
    if (!restored.ok()) return restored.status();
    *engine = std::move(*restored);
    last_sequence = snapshot->wal_sequence;
    report->checkpoint_loaded = true;
    report->checkpoint_path = path;
    report->checkpoint_records = snapshot->rows.size();
  }

  auto segments = io::ListWalSegments(config_.wal_dir);
  if (!segments.ok()) return segments.status();
  for (const auto& [start_seq, path] : *segments) {
    auto segment = io::ReadWalFile(path);
    if (!segment.ok()) return segment.status();
    report->torn_bytes_dropped += segment->torn_bytes;
    if (*engine != nullptr &&
        segment->filter_bits != (*engine)->filter_bits()) {
      return Status::ProtocolViolation(
          "WAL segment " + path + " declares " +
          std::to_string(segment->filter_bits) +
          "-bit filters; the recovered state uses " +
          std::to_string((*engine)->filter_bits()));
    }
    bool replayed_any = false;
    for (const io::WalRecord& record : segment->records) {
      if (record.sequence <= last_sequence) continue;  // checkpoint covers it
      if (record.sequence != last_sequence + 1) {
        return Status::ProtocolViolation(
            "WAL gap: segment " + path + " continues at sequence " +
            std::to_string(record.sequence) + ", durable state ends at " +
            std::to_string(last_sequence));
      }
      if (*engine == nullptr) {
        *engine = std::make_unique<OnlineLinkageEngine>(
            segment->filter_bits, config_.serving_options);
      }
      switch (static_cast<io::WalRecordType>(record.type)) {
        case io::WalRecordType::kHello: {
          auto party = io::DecodeWalHello(record.payload);
          if (!party.ok()) return party.status();
          (*engine)->RegisterDatabase(*party);
          break;
        }
        case io::WalRecordType::kAppendBatch: {
          auto batch = io::DecodeWalAppendBatch(record.payload);
          if (!batch.ok()) return batch.status();
          if (batch->database >= (*engine)->database_count()) {
            return Status::ProtocolViolation(
                "WAL segment " + path + " record at offset " +
                std::to_string(record.offset) +
                " appends to an unregistered database");
          }
          for (size_t i = 0; i < batch->rows.size(); ++i) {
            auto appended = (*engine)->Append(batch->database,
                                              batch->rows.ids[i],
                                              batch->rows.filters[i]);
            if (!appended.ok()) return appended.status();
          }
          report->replayed_records += batch->rows.size();
          break;
        }
        default:
          return Status::ProtocolViolation(
              "WAL segment " + path + " record at offset " +
              std::to_string(record.offset) + " has unknown type " +
              std::to_string(record.type));
      }
      last_sequence = record.sequence;
      replayed_any = true;
    }
    if (replayed_any) ++report->replayed_segments;
  }

  next_sequence_ = last_sequence + 1;
  report->wal_sequence = last_sequence;
  report->seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (report->checkpoint_loaded || report->replayed_records > 0) {
    Metrics().recovery_runs.Increment();
    Metrics().replayed_records.Increment(report->replayed_records);
  }
  return Status::OK();
}

Status OnlineDurability::EnsureWalLocked(uint32_t filter_bits) {
  if (wal_ != nullptr) return Status::OK();
  io::WalWriter::Options options;
  options.sync_every_ms = config_.wal_sync_ms;
  auto writer =
      io::WalWriter::Create(io::WalSegmentPath(config_.wal_dir, next_sequence_),
                            filter_bits, next_sequence_, options);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(*writer);
  return Status::OK();
}

Result<uint64_t> OnlineDurability::JournalLocked(
    io::WalRecordType type, const std::vector<uint8_t>& payload) {
  auto sequence = wal_->Append(type, payload.data(), payload.size());
  if (!sequence.ok()) return sequence.status();
  next_sequence_ = wal_->next_sequence();
  ++ops_total_;
  ++ops_since_checkpoint_;
  // The harshest boundary: the record is durable, the engine has not
  // applied it, the owner holds no ack. Recovery must replay it and the
  // re-driven client must be deduplicated by the record cursor.
  if (config_.crash_after_ops != 0 && ops_total_ >= config_.crash_after_ops) {
    InjectedCrash("durability op limit reached (--chaos-crash-after)");
  }
  return sequence;
}

Result<uint64_t> OnlineDurability::DurableAppend(OnlineLinkageEngine& engine,
                                                 const std::string& party,
                                                 const EncodedDatabase& records,
                                                 size_t begin, size_t end,
                                                 uint32_t* database_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  PPRL_RETURN_IF_ERROR(
      EnsureWalLocked(static_cast<uint32_t>(engine.filter_bits())));

  uint32_t db = 0;
  if (auto existing = engine.FindDatabase(party)) {
    db = *existing;
  } else {
    // Journal-then-apply, like every append: replay must re-register in
    // the same order, because the database index is durable state.
    auto journaled =
        JournalLocked(io::WalRecordType::kHello, io::EncodeWalHello(party));
    if (!journaled.ok()) return journaled.status();
    db = engine.RegisterDatabase(party);
  }
  *database_index = db;

  for (size_t i = begin; i < end; i += config_.wal_batch_records) {
    const size_t j = std::min(end, i + config_.wal_batch_records);
    auto journaled = JournalLocked(io::WalRecordType::kAppendBatch,
                                   io::EncodeWalAppendBatch(db, records, i, j));
    if (!journaled.ok()) return journaled.status();
    for (size_t k = i; k < j; ++k) {
      auto appended = engine.Append(db, records.ids[k], records.filters[k]);
      if (!appended.ok()) return appended.status();
    }
  }

  if (config_.checkpoint_every_n != 0 &&
      ops_since_checkpoint_ >= config_.checkpoint_every_n) {
    // A failed periodic checkpoint is not data loss — the WAL still holds
    // everything — so log and keep serving rather than failing the append.
    const Status checkpointed = CheckpointLocked(engine);
    if (!checkpointed.ok()) {
      PPRL_LOG(kWarning) << "periodic checkpoint failed (WAL remains "
                            "authoritative): "
                         << checkpointed.ToString();
    }
  }
  return static_cast<uint64_t>(engine.record_count(db));
}

Status OnlineDurability::Checkpoint(OnlineLinkageEngine& engine) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CheckpointLocked(engine);
}

Status OnlineDurability::CheckpointLocked(OnlineLinkageEngine& engine) {
  const Clock::time_point start = Clock::now();
  const uint64_t covered = next_sequence_ - 1;
  const io::OnlineSnapshot snapshot = engine.ExportSnapshot(covered);
  std::string path;
  PPRL_RETURN_IF_ERROR(
      io::WriteCheckpointFile(config_.checkpoint_dir, snapshot, &path));

  // The snapshot covers every journaled record, so the whole WAL prefix —
  // every segment — is now redundant: close the writer and delete them. A
  // crash between the rename above and the deletes below only leaves
  // fully-covered segments behind, which recovery skips by sequence.
  wal_.reset();
  auto segments = io::ListWalSegments(config_.wal_dir);
  if (segments.ok()) {
    for (const auto& [start_seq, segment_path] : *segments) {
      ::unlink(segment_path.c_str());
    }
  }
  auto checkpoints = io::ListCheckpoints(config_.checkpoint_dir);
  if (checkpoints.ok()) {
    for (const auto& [seq, checkpoint_path] : *checkpoints) {
      if (checkpoint_path != path) ::unlink(checkpoint_path.c_str());
    }
  }
  ops_since_checkpoint_ = 0;
  PPRL_LOG(kInfo) << "checkpoint covering WAL sequence " << covered << " ("
                  << snapshot.rows.size() << " records) written to " << path
                  << " in "
                  << std::chrono::duration<double>(Clock::now() - start).count()
                  << " s";
  return Status::OK();
}

}  // namespace pprl
