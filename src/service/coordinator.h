#ifndef PPRL_SERVICE_COORDINATOR_H_
#define PPRL_SERVICE_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/fault_injection.h"
#include "net/retry.h"
#include "net/transport.h"
#include "service/server.h"

namespace pprl {

/// One worker daemon in a coordinator's ring.
struct WorkerEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// "host:port" — the metering/metric label of this worker's link.
  std::string Label() const { return host + ":" + std::to_string(port); }
};

/// Parses a "host:port,host:port,..." worker list (the --workers flag).
/// A bare "port" entry means 127.0.0.1. Rejects empty entries and ports
/// outside [1, 65535].
Result<std::vector<WorkerEndpoint>> ParseWorkerList(const std::string& spec);

/// Configuration of the coordinator role on top of a linkage-unit daemon.
struct CoordinatorConfig {
  /// The worker ring, in partition-index order: workers[i] owns the block
  /// keys BlockPartitioner assigns to index i. Order is part of the
  /// partition geometry — list workers identically across restarts to
  /// reuse their shipments.
  std::vector<WorkerEndpoint> workers;
  /// Block-key partition scheme (kAuto: rendezvous up to 8 workers, the
  /// consistent-hash ring beyond).
  PartitionScheme scheme = PartitionScheme::kAuto;
  /// Retry policy of every coordinator -> worker delivery (shipments and
  /// partition assignments alike).
  RetryPolicy retry;
  ConnectOptions connect;
  /// Socket read timeout while awaiting one kPartitionResult: the worker
  /// computes its whole partition before replying.
  int assign_timeout_ms = 120000;
  /// Straggler quorum: proceed once this many worker partitions have been
  /// gathered and the rest have exhausted their retries. 0 requires every
  /// worker. A shortfall yields a *degraded* result (the failed workers'
  /// partitions are simply missing); partitions are not reassigned.
  size_t min_worker_partitions = 0;
  /// Preferred shipment chunk size towards workers (capped by each
  /// worker's advertised maximum).
  size_t chunk_bytes = 4u << 20;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Chaos mode on the worker links: every coordinator -> worker
  /// connection is wrapped in a FaultInjectingConnection (deterministic
  /// per worker and attempt).
  FaultSpec chaos;
};

/// The coordinator of a horizontally sharded linkage unit.
///
/// Owner-facing, it IS an ordinary `LinkageUnitServer`: owners dial it,
/// ship with the resumable chunk protocol and receive their summaries,
/// indistinguishable from a single daemon. The difference is behind the
/// linkage trigger: instead of comparing locally, the coordinator
///
///   1. *scatters* — re-ships every owner's registered database to each
///      worker daemon over the same fault-tolerant session protocol
///      (stop-and-wait chunks, resume on connection loss, BUSY backoff),
///   2. *assigns* — sends each worker its kAssignPartition (ring index,
///      scheme, blocking + threshold parameters) and awaits the
///      kPartitionResult carrying the partition's scored edges,
///   3. *gathers and merges* — sums the counters and sorts the
///      concatenated edges into the single-daemon order
///      (linkage/distributed.h), then clusters locally.
///
/// Because the canonical-key partition rule makes worker candidate sets
/// disjoint and their union equal to the single-daemon candidate list,
/// the merged result is bitwise-identical to one daemon's at any worker
/// count. Workers that fail all retries degrade the result (summaries
/// report workers_linked < workers_expected) when the quorum allows it.
class CoordinatorServer {
 public:
  CoordinatorServer(LinkageUnitServerConfig server_config,
                    CoordinatorConfig coordinator_config);
  ~CoordinatorServer();

  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  /// Starts the owner-facing daemon with the scatter/gather linker
  /// installed. Fails without at least one worker.
  Status Start();
  void Stop();

  /// See LinkageUnitServer::WaitUntilDone.
  Status WaitUntilDone(int timeout_ms) const;

  uint16_t port() const { return server_->port(); }
  uint16_t metrics_port() const { return server_->metrics_port(); }
  const std::string& name() const { return server_->name(); }
  size_t num_workers() const { return coordinator_.workers.size(); }

  /// The owner-facing daemon (owner channel, wire bytes, results).
  LinkageUnitServer& server() { return *server_; }
  const LinkageUnitServer& server() const { return *server_; }

  /// Metered coordinator -> worker traffic, kept separate from the
  /// owner-facing channel so the owner-side cost columns stay directly
  /// comparable with a single daemon's.
  Channel& worker_channel() { return worker_channel_; }

  /// Raw socket bytes on the worker links, frame headers included.
  size_t worker_wire_bytes_sent() const { return worker_wire_bytes_sent_.load(); }
  size_t worker_wire_bytes_received() const {
    return worker_wire_bytes_received_.load();
  }

  /// Worker-link retries beyond first attempts, summed over the run.
  size_t worker_retries() const { return worker_retries_.load(); }

 private:
  /// The DistributedLinker installed into the daemon: scatter, assign,
  /// gather, merge, cluster.
  Result<DistributedLinkOutcome> ScatterGatherLink(
      const LinkageUnitService& unit, const MultiPartyLinkageOptions& options);

  /// Drives one worker end to end: ships every database, then assigns the
  /// partition and returns the gathered result. Retries per `retry`.
  Result<PartitionResultMessage> DriveWorker(size_t worker_index,
                                             const LinkageUnitService& unit,
                                             const MultiPartyLinkageOptions& options);

  /// One kAssignPartition -> kPartitionResult exchange with retry/backoff
  /// (fresh connection per attempt; BUSY hints honoured).
  Result<PartitionResultMessage> AssignWithRetry(size_t worker_index,
                                                 const AssignPartitionMessage& assign);

  LinkageUnitServerConfig server_config_;
  CoordinatorConfig coordinator_;
  std::unique_ptr<LinkageUnitServer> server_;
  Channel worker_channel_;
  std::atomic<size_t> worker_wire_bytes_sent_{0};
  std::atomic<size_t> worker_wire_bytes_received_{0};
  std::atomic<size_t> worker_retries_{0};
};

}  // namespace pprl

#endif  // PPRL_SERVICE_COORDINATOR_H_
