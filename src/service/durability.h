#ifndef PPRL_SERVICE_DURABILITY_H_
#define PPRL_SERVICE_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "encoding/clk_io.h"
#include "io/checkpoint.h"
#include "io/wal.h"
#include "linkage/online_linkage.h"

namespace pprl {

/// Tuning of the online durability layer (see docs/OPERATIONS.md for the
/// RPO/RTO runbook).
struct DurabilityConfig {
  /// WAL segment directory; enabling durability means setting this.
  std::string wal_dir;
  /// Checkpoint directory; empty defaults to `wal_dir`.
  std::string checkpoint_dir;
  /// Group-commit window for WAL fsyncs (<= 0 syncs every operation).
  /// Bounds data loss on MACHINE crashes only; a killed process never
  /// loses an acked record regardless (io/wal.h durability contract).
  int wal_sync_ms = 50;
  /// Checkpoint after this many journaled operations; 0 = only the final
  /// checkpoint on graceful shutdown.
  uint64_t checkpoint_every_n = 100000;
  /// Records per WAL append-batch record. Also the granularity of the
  /// crash-point ops counter, so keep it well below a shipment size.
  size_t wal_batch_records = 512;
  /// Crash-point injection: InjectedCrash() right after the n-th journaled
  /// operation (0 = never). Plumbed from FaultSpec::crash_after_ops.
  uint64_t crash_after_ops = 0;
  /// Serving knobs for a recovered engine (threshold and LSH geometry are
  /// durable state and come from the checkpoint itself).
  OnlineLinkageOptions serving_options;
};

/// What recovery found, for startup logging and the restart-latency gate.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  std::string checkpoint_path;
  uint64_t checkpoint_records = 0;
  uint64_t replayed_segments = 0;
  uint64_t replayed_records = 0;
  uint64_t torn_bytes_dropped = 0;
  uint64_t wal_sequence = 0;  ///< last durable sequence after replay
  double seconds = 0;
};

/// The online serving path's durability layer: journals every absorbed
/// record to a WAL before it is applied and acked, checkpoints the engine
/// periodically, and recovers checkpoint + WAL replay on startup
/// (docs/PROTOCOLS.md Appendix B has the formats and the recovery state
/// machine).
///
/// All journaling operations are serialized under one mutex: WAL order is
/// apply order, which is what makes replay reproduce the exact database
/// registration and row arrival sequence the canonical cluster ids depend
/// on. Queries never touch this class and stay concurrent.
class OnlineDurability {
 public:
  explicit OnlineDurability(DurabilityConfig config);

  /// Recovers prior state: loads the newest checkpoint (if any), replays
  /// every WAL record with a later sequence, and leaves `*engine` holding
  /// the rebuilt engine — or nullptr when no prior state exists. Corrupt
  /// state fails with a typed error naming the file and offset; a torn
  /// WAL tail (the normal post-crash artifact) is dropped and reported.
  /// Read-only: recovery crashed and retried any number of times leaves
  /// the files untouched.
  Status Recover(std::unique_ptr<OnlineLinkageEngine>* engine,
                 RecoveryReport* report);

  /// Journals, applies and acks one batch: registers `party` on first use
  /// (journaled as a hello record — registration order is durable state),
  /// then journals rows [begin, end) of `records` in wal_batch_records
  /// chunks, each applied to the engine only after its WAL write returned.
  /// Returns the party's post-append record cursor. On a journal failure
  /// (disk full) nothing is applied and no ack must be sent — the engine
  /// never holds records the WAL does not.
  Result<uint64_t> DurableAppend(OnlineLinkageEngine& engine,
                                 const std::string& party,
                                 const EncodedDatabase& records, size_t begin,
                                 size_t end, uint32_t* database_index);

  /// Writes a checkpoint now and rotates the WAL (graceful shutdown, or
  /// the every-n trigger). Deletes segments and older checkpoints the new
  /// snapshot covers.
  Status Checkpoint(OnlineLinkageEngine& engine);

  uint64_t ops_journaled() const { return ops_total_; }

 private:
  Status EnsureWalLocked(uint32_t filter_bits);
  Result<uint64_t> JournalLocked(io::WalRecordType type,
                                 const std::vector<uint8_t>& payload);
  Status CheckpointLocked(OnlineLinkageEngine& engine);

  DurabilityConfig config_;
  std::mutex mutex_;
  std::unique_ptr<io::WalWriter> wal_;
  uint64_t next_sequence_ = 1;
  uint64_t ops_since_checkpoint_ = 0;
  uint64_t ops_total_ = 0;
};

}  // namespace pprl

#endif  // PPRL_SERVICE_DURABILITY_H_
