#ifndef PPRL_SERVICE_PROTOCOL_H_
#define PPRL_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "encoding/clk_io.h"
#include "pipeline/party.h"

namespace pprl {

/// The messages of the linkage-unit wire protocol (version 2), in the
/// order a session uses them. Each value is the `type` tag of one frame
/// (net/frame.h); payload layouts are little-endian and produced /
/// validated by the Encode*/Decode* pairs below.
///
///   owner                          linkage unit
///     │ ── kHello ───────────────────▶ │   version, party, filter bits, n
///     │ ◀─────────────── kHelloAck ── │   server, expected owners,
///     │                                │   session id, max chunk bytes
///     │ ── kShipmentChunk ───────────▶ │   session, offset, checksum, data
///     │ ◀─────────── kShipmentAck ── │   acked bytes, complete flag
///     │        ... more chunks until the shipment is complete ...
///     │      (unit links once all owners have shipped)
///     │ ◀─────────────── kResults ── │   per-owner match summary
///
/// If the connection dies mid-shipment, the owner dials again and sends
/// kResume with the session id from the HelloAck; the unit replies
/// kResumeAck carrying the byte offset it has durably applied, and the
/// owner continues chunking from there. Chunk application is idempotent:
/// a re-delivered chunk at or below the acked offset is acknowledged
/// again without being applied twice.
///
/// Either side may send kError instead of the expected message; the
/// payload carries a status code + text and the session ends. An
/// overloaded unit instead sends kBusy (retry-after hint) and closes —
/// the session state, if any, survives for a later resume.
///
/// Version 3 adds the scatter/gather pair for horizontally sharded
/// linkage units (docs/PROTOCOLS.md §14). A coordinator first ships every
/// owner's registered database to each worker daemon with the ordinary
/// hello/chunk session machinery above, then assigns the worker its slice
/// of the candidate space:
///
///   coordinator                       worker
///     │ ── kAssignPartition ─────────▶ │   ring size, worker index,
///     │                                │   blocking + threshold params
///     │ ◀──────── kPartitionResult ── │   scored edges of the partition,
///     │                                │   comparison/pruning counters
///
/// The assignment is idempotent: re-sending it (after a lost connection)
/// makes the worker recompute the same deterministic result. A worker
/// that has not received every owner shipment answers kError
/// (kFailedPrecondition); an overloaded worker sheds with kBusy exactly
/// like an owner-facing daemon.
///
/// Version 4 adds the online serving pair for an incrementally-linked unit
/// (`pprl_linkd --online`, docs/PROTOCOLS.md §15). Sessions open with the
/// same hello/resume machinery (a record_count of 0 opens a query-only
/// session); after registration the session stays open and loops:
///
///   owner                          linkage unit
///     │ ── kAppendRecords ───────────▶ │   base index + id/filter batch
///     │ ◀─────────── kShipmentAck ── │   acked records (resume cursor)
///     │ ── kQuery ───────────────────▶ │   query id + filter batch
///     │ ◀──────────── kQueryResult ── │   per-record matches + cluster
///
/// Appends are idempotent by base index (a batch at or below the acked
/// record cursor is re-acked without being applied), queries are
/// stateless, so both replay safely over a kResume'd connection.
enum class MessageType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kShipmentChunk = 3,
  kShipmentAck = 4,
  kResults = 5,
  kError = 6,
  kResume = 7,
  kResumeAck = 8,
  kBusy = 9,
  kAssignPartition = 10,
  kPartitionResult = 11,
  kAppendRecords = 12,
  kQuery = 13,
  kQueryResult = 14,
};

/// The channel-metering tag for a message type ("encoded-filters" for
/// shipment chunks, matching the in-process pipeline's accounting).
const char* MessageTypeTag(uint8_t type);

/// Opening message of a session: who is calling and what they will ship.
struct HelloMessage {
  uint32_t protocol_version = 0;
  std::string party;
  /// Bit length of every filter in the upcoming shipment. Fixed here so
  /// the shipment payload itself needs no per-record length fields.
  uint32_t filter_bits = 0;
  uint32_t record_count = 0;
};

/// The unit's reply to a Hello. The session id names the server-side
/// shipment state for later kResume; max_chunk_bytes is the largest data
/// span the unit will accept in one kShipmentChunk.
struct HelloAckMessage {
  uint32_t protocol_version = 0;
  std::string server;
  uint32_t expected_owners = 0;
  uint64_t session_id = 0;
  uint32_t max_chunk_bytes = 0;
};

/// One span of the encoded shipment. `offset` is the byte position within
/// the full shipment payload (EncodeShipment output); `checksum` is
/// ShipmentChunkChecksum(data) and guards against in-flight corruption,
/// which plain length-prefixed frames cannot detect. `last` marks the
/// chunk that completes the shipment.
struct ShipmentChunkMessage {
  uint64_t session_id = 0;
  uint64_t offset = 0;
  bool last = false;
  uint64_t checksum = 0;
  std::vector<uint8_t> data;
};

/// Fixed wire overhead of one shipment chunk beyond its data bytes:
/// u64 session + u64 offset + u8 last + u64 checksum.
inline constexpr size_t kShipmentChunkOverheadBytes = 8 + 8 + 1 + 8;

/// Acknowledges applied shipment bytes. `acked_bytes` is the resume
/// cursor: everything below it is durable on the unit. `complete` flips
/// once the whole shipment has been applied and registered.
struct ShipmentAckMessage {
  uint64_t session_id = 0;
  uint64_t acked_bytes = 0;
  bool complete = false;
  uint32_t owners_shipped = 0;
  uint32_t expected_owners = 0;
};

/// Re-attaches a new connection to an existing session after a fault.
struct ResumeMessage {
  uint32_t protocol_version = 0;
  std::string party;
  uint64_t session_id = 0;
};

/// The unit's reply to a Resume: where to continue from.
struct ResumeAckMessage {
  uint64_t session_id = 0;
  uint64_t acked_bytes = 0;
  bool shipment_complete = false;
};

/// Load-shedding reply: try again after the hinted delay. Sent instead of
/// HelloAck/ResumeAck when the unit is at its session or buffer limit.
struct BusyMessage {
  uint32_t retry_after_ms = 0;
  std::string reason;
};

/// One matched record in an owner's result summary.
struct MatchedRecordSummary {
  uint32_t record = 0;        ///< index into the owner's shipment
  uint32_t cluster_id = 0;    ///< cluster index in the unit's clustering
  uint32_t cluster_size = 0;  ///< records in that cluster (across databases)

  friend bool operator==(const MatchedRecordSummary& a, const MatchedRecordSummary& b) {
    return a.record == b.record && a.cluster_id == b.cluster_id &&
           a.cluster_size == b.cluster_size;
  }
};

/// What a database owner learns from a linkage run: which of *its own*
/// records were clustered with records elsewhere, plus global cost
/// counters. No other party's record indices or similarities leak.
/// owners_linked < owners_expected means the unit invoked its quorum
/// option and linked without every invited owner; workers_linked <
/// workers_expected means a sharded run proceeded without every worker
/// partition (straggler quorum) — either way a degraded result. A
/// non-distributed run reports workers 0/0.
struct OwnerLinkageSummary {
  std::vector<MatchedRecordSummary> matches;
  uint64_t comparisons = 0;
  uint64_t candidate_pairs = 0;
  uint64_t total_edges = 0;
  uint64_t total_clusters = 0;
  uint32_t owners_linked = 0;
  uint32_t owners_expected = 0;
  uint32_t workers_linked = 0;
  uint32_t workers_expected = 0;

  bool degraded() const {
    return owners_linked < owners_expected || workers_linked < workers_expected;
  }
};

/// A transported error: the Status round-trips through the wire.
struct ErrorMessage {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

/// Coordinator -> worker: which slice of the candidate space this worker
/// owns, and the exact blocking/threshold parameters to recompute it
/// with. Workers rebuild the seeded LSH index from their shipped copies
/// of the databases, so only the ring geometry crosses the wire, never a
/// key -> worker map.
struct AssignPartitionMessage {
  uint32_t protocol_version = 0;
  std::string coordinator;
  uint32_t worker_index = 0;
  uint32_t num_workers = 0;
  /// PartitionScheme as its wire value (0 auto, 1 rendezvous, 2 ring).
  uint8_t scheme = 0;
  /// Shipments the worker must have registered before it can compare.
  uint32_t expected_owners = 0;
  double dice_threshold = 0.0;
  uint32_t lsh_tables = 0;
  uint32_t lsh_bits_per_key = 0;
  uint64_t lsh_seed = 0;
};

/// Worker -> coordinator: every scored edge of the worker's partition
/// (threshold already applied), sorted by (database pair, a, b), plus the
/// partition's share of the comparison counters. Scores travel as raw
/// IEEE-754 bit patterns, so the merged edge list is bitwise-identical to
/// a single-machine run.
struct PartitionResultMessage {
  uint32_t worker_index = 0;
  uint64_t comparisons = 0;
  uint64_t candidate_pairs = 0;
  uint64_t pruned_comparisons = 0;
  std::vector<MatchEdge> edges;
};

/// Owner -> online unit: a batch of records to link into the population.
/// `base_index` is the number of this party's records already applied on
/// the unit as the client last knew it — the idempotency cursor. A batch
/// whose records all lie at or below the unit's cursor is acknowledged
/// without being applied; a batch starting beyond it is a protocol
/// violation (a gap). `data` is the EncodeShipment layout: count ×
/// (u64 id + ceil(filter_bits/8) filter bytes). The reply is a
/// kShipmentAck whose `acked_bytes` carries the party's RECORD cursor
/// (records applied), not bytes, and `complete` is always true.
struct AppendRecordsMessage {
  uint64_t session_id = 0;
  uint64_t base_index = 0;
  uint32_t filter_bits = 0;
  uint32_t count = 0;
  std::vector<uint8_t> data;
};

/// Owner -> online unit: link queries for a batch of filters (same data
/// layout as a shipment; the ids are echoed back in the result). Nothing
/// is inserted. `want_clusters` asks the unit to resolve each best match's
/// cluster id/size; `top_k` caps matches per record (0 = server default).
struct QueryMessage {
  uint64_t session_id = 0;
  uint64_t query_id = 0;  ///< echoed in the result; client correlation
  bool want_clusters = false;
  uint32_t top_k = 0;
  uint32_t filter_bits = 0;
  uint32_t count = 0;
  std::vector<uint8_t> data;
};

/// One match inside a query result. Scores travel as raw IEEE-754 bits,
/// like kPartitionResult edges.
struct QueryMatch {
  uint32_t database = 0;
  uint32_t record = 0;
  uint64_t id = 0;
  double score = 0;

  friend bool operator==(const QueryMatch& a, const QueryMatch& b) {
    return a.database == b.database && a.record == b.record && a.id == b.id &&
           a.score == b.score;
  }
};

/// Per-queried-record slice of a kQueryResult.
struct QueryRecordResult {
  uint64_t id = 0;               ///< the id sent with the query record
  uint32_t cluster_id = UINT32_MAX;  ///< best match's cluster; UINT32_MAX none
  uint32_t cluster_size = 0;
  uint32_t candidates = 0;       ///< LSH candidates scored for this record
  std::vector<QueryMatch> matches;  ///< best first, top_k-capped
};

/// Online unit -> owner: answers one kQuery.
struct QueryResultMessage {
  uint64_t query_id = 0;
  uint64_t index_size = 0;  ///< records indexed when the query was answered
  std::vector<QueryRecordResult> records;
};

std::vector<uint8_t> EncodeHello(const HelloMessage& msg);
Result<HelloMessage> DecodeHello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeHelloAck(const HelloAckMessage& msg);
Result<HelloAckMessage> DecodeHelloAck(const std::vector<uint8_t>& payload);

/// Encodes a chunk; the checksum field is ignored and recomputed from
/// `msg.data` so an encoded chunk is always self-consistent.
std::vector<uint8_t> EncodeShipmentChunk(const ShipmentChunkMessage& msg);
Result<ShipmentChunkMessage> DecodeShipmentChunk(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeShipmentAck(const ShipmentAckMessage& msg);
Result<ShipmentAckMessage> DecodeShipmentAck(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeResume(const ResumeMessage& msg);
Result<ResumeMessage> DecodeResume(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeResumeAck(const ResumeAckMessage& msg);
Result<ResumeAckMessage> DecodeResumeAck(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeBusy(const BusyMessage& msg);
Result<BusyMessage> DecodeBusy(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeAssignPartition(const AssignPartitionMessage& msg);
Result<AssignPartitionMessage> DecodeAssignPartition(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodePartitionResult(const PartitionResultMessage& msg);
Result<PartitionResultMessage> DecodePartitionResult(
    const std::vector<uint8_t>& payload, size_t max_edges = 16u << 20);

/// FNV-1a 64 over a chunk's data bytes. Cheap, order-sensitive, and good
/// enough to catch the single-bit flips a faulty transport introduces.
uint64_t ShipmentChunkChecksum(const uint8_t* data, size_t len);

/// Serialises an encoded database as n × (u64 id + ceil(bits/8) filter
/// bytes) — exactly the byte count the in-process `Channel` path meters
/// for an "encoded-filters" shipment, so cost accounting matches. The
/// chunk layer ships contiguous spans of this buffer.
Result<std::vector<uint8_t>> EncodeShipment(const EncodedDatabase& encoded);

/// Same wire layout, straight from a shard's `BitMatrix` rows: the filter
/// bytes are extracted word-wise without materializing per-record
/// `BitVector`s, so a streamed ingest (io/ingest.h) goes CSV -> CLK rows
/// -> wire bytes with no intermediate vectors. Byte-identical to encoding
/// `EncodedDatabaseFromShard(shard)`.
Result<std::vector<uint8_t>> EncodeShipment(const EncodedShard& shard);

/// Rows [row_begin, row_end) of a shard in the same wire layout — the
/// batching primitive of the online append/query path.
Result<std::vector<uint8_t>> EncodeShipmentRows(const EncodedShard& shard,
                                                size_t row_begin,
                                                size_t row_end);

/// Inverse of EncodeShipment; `filter_bits` comes from the Hello. The
/// payload length must be an exact multiple of the per-record size.
Result<EncodedDatabase> DecodeShipment(const std::vector<uint8_t>& payload,
                                       uint32_t filter_bits);

/// Reassembles a chunked shipment on the linkage unit, enforcing the
/// resume contract: chunks apply exactly once, in order, each guarded by
/// its checksum. Duplicates (full re-deliveries of already-acked spans)
/// are detected and skipped, which is what makes client retries safe.
class ShipmentAssembler {
 public:
  /// A default-constructed assembler accepts nothing until it is replaced
  /// by one initialised from a Hello.
  ShipmentAssembler() = default;
  ShipmentAssembler(uint32_t filter_bits, uint32_t record_count);

  /// Applies one chunk. Returns true if the chunk advanced the shipment,
  /// false for a harmless duplicate (offset + size entirely at or below
  /// the acked cursor). Errors:
  ///  - kIoError: checksum mismatch (corrupted in flight) — retryable,
  ///  - kOutOfRange: chunk extends past the declared shipment size,
  ///  - kProtocolViolation: gaps, partial overlaps, empty non-final
  ///    chunks, or a `last` flag that disagrees with the byte count.
  Result<bool> Apply(const ShipmentChunkMessage& chunk);

  /// Decodes the fully assembled shipment. Requires complete().
  Result<EncodedDatabase> Finish() const;

  /// Frees the assembly buffer (after the shipment has been handed to the
  /// linkage unit) while keeping acked_bytes()/complete() answerable for
  /// resumes that arrive after registration.
  void Discard();

  uint64_t acked_bytes() const { return acked_; }
  bool complete() const { return complete_; }
  uint64_t expected_bytes() const { return expected_; }
  /// Bytes currently held in the assembly buffer.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  uint32_t filter_bits_ = 0;
  uint64_t expected_ = 0;
  uint64_t acked_ = 0;
  bool complete_ = false;
  std::vector<uint8_t> buffer_;
};

std::vector<uint8_t> EncodeResults(const OwnerLinkageSummary& summary);
Result<OwnerLinkageSummary> DecodeResults(const std::vector<uint8_t>& payload,
                                          size_t max_matches = 16u << 20);

std::vector<uint8_t> EncodeAppendRecords(const AppendRecordsMessage& msg);
Result<AppendRecordsMessage> DecodeAppendRecords(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQuery(const QueryMessage& msg);
Result<QueryMessage> DecodeQuery(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryResult(const QueryResultMessage& msg);
Result<QueryResultMessage> DecodeQueryResult(const std::vector<uint8_t>& payload,
                                             size_t max_matches = 16u << 20);

std::vector<uint8_t> EncodeError(const Status& status);
/// Reconstructs the transported Status (never OK).
Result<ErrorMessage> DecodeError(const std::vector<uint8_t>& payload);

/// Projects a multi-party linkage result onto one owner: every record of
/// database `database_index` that landed in a cluster of size >= 2.
/// owners_linked/owners_expected are filled in by the caller, which knows
/// whether the run was degraded.
OwnerLinkageSummary SummarizeForOwner(const MultiPartyLinkageResult& result,
                                      uint32_t database_index);

}  // namespace pprl

#endif  // PPRL_SERVICE_PROTOCOL_H_
