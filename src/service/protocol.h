#ifndef PPRL_SERVICE_PROTOCOL_H_
#define PPRL_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "encoding/clk_io.h"
#include "pipeline/party.h"

namespace pprl {

/// The messages of the linkage-unit wire protocol, in the order a session
/// uses them. Each value is the `type` tag of one frame (net/frame.h);
/// payload layouts are little-endian and produced/validated by the
/// Encode*/Decode* pairs below.
///
///   owner                          linkage unit
///     │ ── kHello ───────────────────▶ │   version, party, filter bits, n
///     │ ◀─────────────── kHelloAck ── │   server name, expected owners
///     │ ── kShipment ────────────────▶ │   n × (u64 id + filter bytes)
///     │ ◀─────────── kShipmentAck ── │   owners shipped so far
///     │      (unit links once all owners have shipped)
///     │ ◀─────────────── kResults ── │   per-owner match summary
///
/// Either side may send kError instead of the expected message; the
/// payload carries a status code + text and the session ends.
enum class MessageType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kShipment = 3,
  kShipmentAck = 4,
  kResults = 5,
  kError = 6,
};

/// The channel-metering tag for a message type ("encoded-filters" for
/// shipments, matching the in-process pipeline's accounting).
const char* MessageTypeTag(uint8_t type);

/// Opening message of a session: who is calling and what they will ship.
struct HelloMessage {
  uint32_t protocol_version = 0;
  std::string party;
  /// Bit length of every filter in the upcoming shipment. Fixed here so
  /// the shipment payload itself needs no per-record length fields.
  uint32_t filter_bits = 0;
  uint32_t record_count = 0;
};

/// The unit's reply to a Hello.
struct HelloAckMessage {
  uint32_t protocol_version = 0;
  std::string server;
  uint32_t expected_owners = 0;
};

/// Acknowledges a stored shipment.
struct ShipmentAckMessage {
  uint32_t owners_shipped = 0;
  uint32_t expected_owners = 0;
};

/// One matched record in an owner's result summary.
struct MatchedRecordSummary {
  uint32_t record = 0;        ///< index into the owner's shipment
  uint32_t cluster_id = 0;    ///< cluster index in the unit's clustering
  uint32_t cluster_size = 0;  ///< records in that cluster (across databases)

  friend bool operator==(const MatchedRecordSummary& a, const MatchedRecordSummary& b) {
    return a.record == b.record && a.cluster_id == b.cluster_id &&
           a.cluster_size == b.cluster_size;
  }
};

/// What a database owner learns from a linkage run: which of *its own*
/// records were clustered with records elsewhere, plus global cost
/// counters. No other party's record indices or similarities leak.
struct OwnerLinkageSummary {
  std::vector<MatchedRecordSummary> matches;
  uint64_t comparisons = 0;
  uint64_t candidate_pairs = 0;
  uint64_t total_edges = 0;
  uint64_t total_clusters = 0;
};

/// A transported error: the Status round-trips through the wire.
struct ErrorMessage {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

std::vector<uint8_t> EncodeHello(const HelloMessage& msg);
Result<HelloMessage> DecodeHello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeHelloAck(const HelloAckMessage& msg);
Result<HelloAckMessage> DecodeHelloAck(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeShipmentAck(const ShipmentAckMessage& msg);
Result<ShipmentAckMessage> DecodeShipmentAck(const std::vector<uint8_t>& payload);

/// Serialises an encoded database as n × (u64 id + ceil(bits/8) filter
/// bytes) — exactly the byte count the in-process `Channel` path meters
/// for an "encoded-filters" shipment, so cost accounting matches.
Result<std::vector<uint8_t>> EncodeShipment(const EncodedDatabase& encoded);

/// Inverse of EncodeShipment; `filter_bits` comes from the Hello. The
/// payload length must be an exact multiple of the per-record size.
Result<EncodedDatabase> DecodeShipment(const std::vector<uint8_t>& payload,
                                       uint32_t filter_bits);

std::vector<uint8_t> EncodeResults(const OwnerLinkageSummary& summary);
Result<OwnerLinkageSummary> DecodeResults(const std::vector<uint8_t>& payload,
                                          size_t max_matches = 16u << 20);

std::vector<uint8_t> EncodeError(const Status& status);
/// Reconstructs the transported Status (never OK).
Result<ErrorMessage> DecodeError(const std::vector<uint8_t>& payload);

/// Projects a multi-party linkage result onto one owner: every record of
/// database `database_index` that landed in a cluster of size >= 2.
OwnerLinkageSummary SummarizeForOwner(const MultiPartyLinkageResult& result,
                                      uint32_t database_index);

}  // namespace pprl

#endif  // PPRL_SERVICE_PROTOCOL_H_
