#ifndef PPRL_SERVICE_SERVER_H_
#define PPRL_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/fault_injection.h"
#include "io/ingest.h"
#include "linkage/online_linkage.h"
#include "net/metrics_http.h"
#include "net/transport.h"
#include "pipeline/party.h"
#include "service/durability.h"
#include "service/protocol.h"

namespace pprl {

/// Outcome of a pluggable (distributed) linkage strategy: the linkage
/// result plus the worker complement that actually contributed.
/// workers_linked < workers_expected marks a straggler-quorum run whose
/// result is degraded (some partitions' pairs are missing).
struct DistributedLinkOutcome {
  MultiPartyLinkageResult result;
  uint32_t workers_linked = 0;
  uint32_t workers_expected = 0;
};

/// Pluggable linkage strategy: given the unit's registered shipments and
/// the effective link options, produce the linkage result. The
/// coordinator role (service/coordinator.h) installs its scatter/gather
/// linker here, reusing the daemon's whole session machinery unchanged.
using DistributedLinker = std::function<Result<DistributedLinkOutcome>(
    const LinkageUnitService&, const MultiPartyLinkageOptions&)>;

/// Configuration of a linkage-unit daemon.
struct LinkageUnitServerConfig {
  std::string name = "linkage-unit";
  /// 0 binds an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;
  /// Loopback-only by default: exposing a linkage unit beyond localhost is
  /// a deployment decision, not a default.
  bool loopback_only = true;
  /// The unit links once exactly this many distinct owners have shipped
  /// (unless the quorum option below kicks in first).
  size_t expected_owners = 2;
  MultiPartyLinkageOptions link_options;
  /// Extra pool threads beyond the session limit (each session holds its
  /// thread while waiting for the linkage to finish).
  size_t extra_threads = 1;
  /// Workers in the daemon's shared work-stealing scheduler. >1 runs every
  /// linkage's comparison/clustering stages on it (overriding
  /// link_options.num_threads/scheduler); concurrent linkage runs share the
  /// same workers, each tracking its own completion. 1 keeps linkage
  /// serial.
  size_t link_threads = 1;
  /// Per-socket read/write timeout while a session is active.
  int io_timeout_ms = 30000;
  /// How often the accept loop wakes to check for Stop(), sweep expired
  /// sessions and evaluate the quorum option.
  int accept_poll_ms = 100;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Port of the Prometheus /metrics side endpoint: -1 disables it, 0
  /// binds an ephemeral port (read back via metrics_port()), anything else
  /// binds that port. The endpoint honours loopback_only.
  int metrics_port = -1;

  // --- Robustness (session resume + overload shedding) ---

  /// Concurrent connections the daemon will serve; arrivals beyond this
  /// are shed with a kBusy frame. 0 derives 2 * expected_owners + 2,
  /// which leaves room for every owner plus a resumed straggler each.
  size_t max_sessions = 0;
  /// An unattached session that has not registered its shipment is swept
  /// after this much idle time — its partial buffer is freed and a later
  /// kResume is answered with kNotFound (the owner starts over).
  int session_ttl_ms = 60000;
  /// Hard wall-clock bound from a session's creation to its shipment
  /// completing, across any number of resumes.
  int session_deadline_ms = 120000;
  /// Cap on bytes reserved for in-flight shipment buffers. A hello whose
  /// declared shipment would exceed it is shed with kBusy.
  size_t max_buffered_bytes = 256u << 20;
  /// Retry hint carried in kBusy frames.
  int busy_retry_after_ms = 200;
  /// Largest data span accepted in one kShipmentChunk (advertised in the
  /// HelloAck).
  uint32_t max_chunk_bytes = 4u << 20;
  /// When non-empty, every registered shipment is also persisted to this
  /// directory (which must exist) as "<party>.pclk" or "<party>.csv" per
  /// spool_format, before the linkage consumes it — an audit/replay trail
  /// of exactly what each owner shipped. Spooling is best-effort: a failed
  /// write is logged and counted, never fails the session.
  std::string spool_dir;
  /// On-disk format of spooled shipments (kAuto means kPclk).
  io::ShardFileFormat spool_format = io::ShardFileFormat::kPclk;
  /// Quorum option: when 2 <= min_owners < expected_owners, the unit
  /// links with the owners it has once quorum_wait_ms passes with no new
  /// registration — a degraded run, flagged in every result summary.
  /// 0 (or >= expected_owners) disables the option: all owners required.
  size_t min_owners = 0;
  int quorum_wait_ms = 5000;
  /// Chaos mode: when enabled(), every accepted connection is wrapped in
  /// a FaultInjectingConnection with a seed derived from `chaos.seed` and
  /// the connection's accept index, so runs replay deterministically.
  FaultSpec chaos;

  // --- Horizontal sharding (coordinator/worker roles) ---

  /// Worker role: the daemon accepts shipments exactly like an
  /// owner-facing unit but never links on its own (the quorum option is
  /// ignored). It answers kAssignPartition control frames from a
  /// coordinator by computing the assigned slice of the candidate space
  /// (LinkageUnitService::LinkPartition) and replying kPartitionResult.
  /// Owner sessions get their shipment acks but no results frame.
  bool worker_mode = false;
  /// When set, RunLinkage delegates to this strategy instead of calling
  /// unit_.Link() directly; the outcome's worker complement flows into
  /// every owner's result summary.
  DistributedLinker distributed_linker;

  // --- Online serving (protocol v4) ---

  /// Online role: instead of the one-shot ship -> link -> results
  /// lifecycle, the daemon feeds every shipment into an incrementally
  /// maintained `OnlineLinkageEngine` and then serves kAppendRecords /
  /// kQuery frames on the same session until the owner disconnects. There
  /// is no batch linkage run and no kResults frame; the daemon runs until
  /// stopped. A hello with record_count = 0 opens a query-only session.
  /// Incompatible with worker_mode and distributed_linker. The engine's
  /// threshold and LSH geometry come from link_options, so query scores
  /// and the served partition match what a batch run over the same
  /// shipments would produce (connected-components clustering).
  bool online_mode = false;

  // --- Durability (online role only) ---

  /// When non-empty, the online engine becomes durable: every absorbed
  /// record is journaled to a WAL segment in this directory before it is
  /// applied and acked, Start() recovers checkpoint + WAL replay, and
  /// Stop() writes a final checkpoint. Empty keeps the engine purely
  /// in-memory (pre-durability behaviour).
  std::string wal_dir;
  /// Checkpoint directory; empty defaults to wal_dir.
  std::string checkpoint_dir;
  /// Group-commit window for WAL fsyncs (<= 0 syncs every append).
  int wal_sync_ms = 50;
  /// Checkpoint after this many journaled operations (0 = only on Stop()).
  uint64_t checkpoint_every_n = 100000;
};

/// The linkage unit as a daemon: accepts owner connections over TCP,
/// speaks the framed protocol (service/protocol.h), feeds shipments into
/// the existing `LinkageUnitService`, runs the multi-party linkage once
/// every expected owner has shipped, and answers each owner with its
/// per-owner summary.
///
/// Fault tolerance: each hello opens a server-side *session* that
/// outlives its TCP connection. Shipments arrive as checksummed chunks
/// applied idempotently at acked offsets; if the connection dies the
/// owner resumes the session on a fresh connection and continues from
/// the acked cursor. Overload is shed with kBusy frames rather than
/// stalled accepts, and the quorum option lets the unit degrade to a
/// partial linkage instead of waiting forever for a lost owner.
///
/// All traffic is metered into channel() with the same route/tag
/// accounting as the in-process pipelines, so communication-cost columns
/// in benchmarks are directly comparable. Frame headers and the fixed
/// per-chunk header are excluded from the channel and reported separately
/// via wire_bytes_received()/sent().
class LinkageUnitServer {
 public:
  explicit LinkageUnitServer(LinkageUnitServerConfig config);
  ~LinkageUnitServer();

  LinkageUnitServer(const LinkageUnitServer&) = delete;
  LinkageUnitServer& operator=(const LinkageUnitServer&) = delete;

  /// Binds, listens and starts the accept loop. Non-blocking.
  Status Start();

  /// Stops accepting, closes the listener and joins all workers. Sessions
  /// already past their shipment still receive results if the linkage can
  /// run; waiting sessions are failed. Idempotent.
  void Stop();

  /// Blocks until the linkage has run and every *linked* owner got its
  /// results (or `timeout_ms` elapsed; <= 0 waits forever). OK once done.
  Status WaitUntilDone(int timeout_ms) const;

  /// The bound port (valid after Start()).
  uint16_t port() const { return listener_.port(); }

  /// The bound port of the /metrics endpoint (0 when disabled).
  uint16_t metrics_port() const {
    return metrics_server_ ? metrics_server_->port() : 0;
  }

  const std::string& name() const { return config_.name; }

  /// The concurrent-session limit in effect (config or derived default).
  size_t max_sessions() const;

  /// The metered protocol traffic (payload bytes by route and tag).
  Channel& channel() { return channel_; }
  const Channel& channel() const { return channel_; }

  /// Raw socket bytes in each direction, frame headers included.
  size_t wire_bytes_received() const { return wire_bytes_received_.load(); }
  size_t wire_bytes_sent() const { return wire_bytes_sent_.load(); }

  /// The linkage outcome; FailedPrecondition before the run happened.
  Result<MultiPartyLinkageResult> result() const;

  /// Owner names in shipment order (the database order of result()).
  std::vector<std::string> owner_order() const;

  /// True once the linkage ran without the full owner complement (quorum)
  /// or, for a distributed run, without the full worker complement.
  bool linkage_degraded() const;

  /// Worker complement of a distributed run (0/0 for single-daemon runs).
  uint32_t workers_linked() const;
  uint32_t workers_expected() const;

  /// True when the online engine journals to a WAL (config_.wal_dir set).
  bool durable() const { return durability_ != nullptr; }

  /// What Start()'s recovery found (all-zero when durability is off or no
  /// prior state existed). Valid after Start() returned OK.
  const RecoveryReport& recovery_report() const { return recovery_report_; }

 private:
  /// One owner's server-side shipment state. Lives in sessions_ under
  /// mutex_ and survives connection loss until swept or the server stops.
  struct ServerSession {
    uint64_t id = 0;
    std::string party;
    uint32_t filter_bits = 0;
    uint32_t record_count = 0;
    ShipmentAssembler assembler;
    /// Shipment handed to the linkage unit (assembler buffer discarded).
    bool registered = false;
    bool results_delivered = false;
    uint32_t database_index = 0;
    /// A connection is currently serving this session.
    bool attached = false;
    std::chrono::steady_clock::time_point last_activity;
    std::chrono::steady_clock::time_point deadline;
  };

  void AcceptLoop();
  void HandleSession(std::shared_ptr<TcpConnection> conn, uint64_t conn_index);
  /// Receives shipment chunks for `session_id` until the shipment is
  /// registered. Returns false if the session cannot proceed (fault,
  /// protocol error, deadline) — the caller just closes the connection.
  bool ReceiveShipment(MeteredFrameConnection& mfc, uint64_t session_id);
  /// Waits for the linkage and delivers this session's results. Returns
  /// true once the results frame reached the wire.
  bool DeliverResults(MeteredFrameConnection& mfc, uint64_t session_id);
  /// Worker role: answers a coordinator's kAssignPartition control frame
  /// with the partition's kPartitionResult (or kBusy while owner
  /// shipments are still missing).
  void HandleAssignPartition(MeteredFrameConnection& mfc, const Frame& first);
  /// Online role: serves kAppendRecords / kQuery frames on an established
  /// session until the connection closes (session stays resumable) or a
  /// protocol error fails it.
  void ServeOnline(MeteredFrameConnection& mfc, uint64_t session_id);
  /// Online role: registers `party` with the engine and appends the tail
  /// of `encoded` past the party's record cursor — a re-shipment from an
  /// already-indexed party is a retransmit of its prefix, so re-running a
  /// bulk append is idempotent (the shipment-granular twin of the
  /// kAppendRecords cursor rule). Called WITHOUT mutex_ held: the absorb
  /// is per-record indexed work that can run for seconds on a large
  /// shipment, and the engine is internally thread-safe. absorb_mutex_
  /// serializes bulk absorbs so the cursor rule stays exact when one
  /// party re-ships concurrently.
  Status AbsorbShipmentOnline(const std::string& party,
                              const EncodedDatabase& encoded,
                              uint32_t* database_index);
  /// Sends an error frame (best effort) and records the session failure.
  void FailSession(MeteredFrameConnection& mfc, const Status& status);
  /// Sends a kBusy frame (best effort) and counts the shed.
  void SendBusy(MeteredFrameConnection& mfc, const std::string& reason);
  /// Sheds a connection from the accept thread before it gets a handler.
  void ShedOnAccept(TcpConnection& conn, const std::string& reason);
  /// Drops expired sessions and fires the quorum option when armed.
  void SweepSessions();
  /// Runs the linkage exactly once; callers hold no lock. With
  /// `allow_partial`, runs with the quorum the unit currently has.
  void RunLinkage(bool allow_partial);
  /// Persists a registered shipment to config_.spool_dir (best effort).
  void SpoolShipment(const std::string& party, const EncodedDatabase& encoded);
  /// Erases a session and releases its buffer reservation. mutex_ held.
  void EraseSessionLocked(uint64_t session_id);

  LinkageUnitServerConfig config_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  /// Shared shard scheduler for parallel linkage (set when link_threads > 1).
  std::unique_ptr<WorkStealingScheduler> link_scheduler_;
  std::unique_ptr<MetricsHttpServer> metrics_server_;
  Channel channel_;

  mutable std::mutex mutex_;
  mutable std::condition_variable linkage_done_;
  LinkageUnitService unit_;
  /// Online role only; created at the first hello (which fixes the filter
  /// length). Thread-safe internally — ServeOnline calls it WITHOUT
  /// holding mutex_, so queries from concurrent sessions never serialize
  /// behind each other.
  std::unique_ptr<OnlineLinkageEngine> online_;
  /// Online durability layer (set iff config_.wal_dir is non-empty).
  /// Serializes journal+apply internally; never held together with mutex_.
  std::unique_ptr<OnlineDurability> durability_;
  /// Recovery outcome of the last Start() (valid when durability_ is set).
  RecoveryReport recovery_report_;
  /// Serializes bulk shipment absorbs into online_ (NOT v4 appends or
  /// queries) so AbsorbShipmentOnline's read-cursor-then-append sequence
  /// cannot interleave for a party that ships twice at once. Never held
  /// together with mutex_.
  std::mutex absorb_mutex_;
  std::map<uint64_t, ServerSession> sessions_;
  uint64_t next_session_id_ = 1;
  /// Bytes reserved by in-flight shipment buffers (admission control).
  size_t buffered_bytes_ = 0;
  std::chrono::steady_clock::time_point last_registration_;
  std::vector<std::string> owner_order_;
  uint32_t expected_filter_bits_ = 0;
  bool linkage_ran_ = false;
  /// Owners included in the linkage run (== owner_order_.size() then).
  size_t linked_owners_ = 0;
  /// Worker complement of a distributed run (both 0 when single-daemon).
  uint32_t workers_linked_ = 0;
  uint32_t workers_expected_ = 0;
  bool linkage_degraded_ = false;
  Status linkage_status_;
  MultiPartyLinkageResult linkage_result_;
  size_t results_delivered_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> accepted_connections_{0};
  std::atomic<size_t> wire_bytes_received_{0};
  std::atomic<size_t> wire_bytes_sent_{0};
};

}  // namespace pprl

#endif  // PPRL_SERVICE_SERVER_H_
