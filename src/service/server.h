#ifndef PPRL_SERVICE_SERVER_H_
#define PPRL_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/metrics_http.h"
#include "net/transport.h"
#include "pipeline/party.h"
#include "service/protocol.h"

namespace pprl {

/// Configuration of a linkage-unit daemon.
struct LinkageUnitServerConfig {
  std::string name = "linkage-unit";
  /// 0 binds an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;
  /// Loopback-only by default: exposing a linkage unit beyond localhost is
  /// a deployment decision, not a default.
  bool loopback_only = true;
  /// The unit links once exactly this many distinct owners have shipped.
  size_t expected_owners = 2;
  MultiPartyLinkageOptions link_options;
  /// Extra pool threads beyond one per expected owner (each session holds
  /// its thread while waiting for the linkage to finish).
  size_t extra_threads = 1;
  /// Workers in the daemon's shared work-stealing scheduler. >1 runs every
  /// linkage's comparison/clustering stages on it (overriding
  /// link_options.num_threads/scheduler); concurrent linkage runs share the
  /// same workers, each tracking its own completion. 1 keeps linkage
  /// serial.
  size_t link_threads = 1;
  /// Per-socket read/write timeout while a session is active.
  int io_timeout_ms = 30000;
  /// How often the accept loop wakes to check for Stop().
  int accept_poll_ms = 100;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Port of the Prometheus /metrics side endpoint: -1 disables it, 0
  /// binds an ephemeral port (read back via metrics_port()), anything else
  /// binds that port. The endpoint honours loopback_only.
  int metrics_port = -1;
};

/// The linkage unit as a daemon: accepts owner connections over TCP,
/// speaks the framed protocol (service/protocol.h), feeds shipments into
/// the existing `LinkageUnitService`, runs the multi-party linkage once
/// every expected owner has shipped, and answers each owner with its
/// per-owner summary.
///
/// All traffic is metered into channel() with the same route/tag
/// accounting as the in-process pipelines, so communication-cost columns
/// in benchmarks are directly comparable. Frame headers are excluded from
/// the channel and reported separately via wire_bytes_received()/sent().
class LinkageUnitServer {
 public:
  explicit LinkageUnitServer(LinkageUnitServerConfig config);
  ~LinkageUnitServer();

  LinkageUnitServer(const LinkageUnitServer&) = delete;
  LinkageUnitServer& operator=(const LinkageUnitServer&) = delete;

  /// Binds, listens and starts the accept loop. Non-blocking.
  Status Start();

  /// Stops accepting, closes the listener and joins all workers. Sessions
  /// already past their shipment still receive results if the linkage can
  /// run; waiting sessions are failed. Idempotent.
  void Stop();

  /// Blocks until the linkage has run and every owner got its results (or
  /// `timeout_ms` elapsed; <= 0 waits forever). OK once done.
  Status WaitUntilDone(int timeout_ms) const;

  /// The bound port (valid after Start()).
  uint16_t port() const { return listener_.port(); }

  /// The bound port of the /metrics endpoint (0 when disabled).
  uint16_t metrics_port() const {
    return metrics_server_ ? metrics_server_->port() : 0;
  }

  const std::string& name() const { return config_.name; }

  /// The metered protocol traffic (payload bytes by route and tag).
  Channel& channel() { return channel_; }
  const Channel& channel() const { return channel_; }

  /// Raw socket bytes in each direction, frame headers included.
  size_t wire_bytes_received() const { return wire_bytes_received_.load(); }
  size_t wire_bytes_sent() const { return wire_bytes_sent_.load(); }

  /// The linkage outcome; FailedPrecondition before the run happened.
  Result<MultiPartyLinkageResult> result() const;

  /// Owner names in shipment order (the database order of result()).
  std::vector<std::string> owner_order() const;

 private:
  void AcceptLoop();
  void HandleSession(std::shared_ptr<TcpConnection> conn);
  /// Sends an error frame (best effort) and records the session failure.
  void FailSession(MeteredFrameConnection& mfc, const Status& status);
  /// Runs the linkage exactly once; callers hold no lock.
  void RunLinkageIfReady();

  LinkageUnitServerConfig config_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  /// Shared shard scheduler for parallel linkage (set when link_threads > 1).
  std::unique_ptr<WorkStealingScheduler> link_scheduler_;
  std::unique_ptr<MetricsHttpServer> metrics_server_;
  Channel channel_;

  mutable std::mutex mutex_;
  mutable std::condition_variable linkage_done_;
  LinkageUnitService unit_;
  std::vector<std::string> owner_order_;
  uint32_t expected_filter_bits_ = 0;
  bool linkage_ran_ = false;
  Status linkage_status_;
  MultiPartyLinkageResult linkage_result_;
  size_t results_delivered_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<size_t> wire_bytes_received_{0};
  std::atomic<size_t> wire_bytes_sent_{0};
};

}  // namespace pprl

#endif  // PPRL_SERVICE_SERVER_H_
