#include "service/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "linkage/distributed.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/protocol.h"

namespace pprl {

namespace {

/// Coordinator-side metrics of the worker links (docs/OBSERVABILITY.md).
struct CoordinatorMetrics {
  obs::Counter& degraded = obs::GlobalMetrics().GetCounter(
      "pprl_coord_degraded_total",
      "Scatter/gather runs that proceeded without every worker partition");

  static obs::Counter& Partitions(const char* outcome) {
    return obs::GlobalMetrics().GetCounter(
        "pprl_coord_partitions_total",
        "Worker partitions driven by the coordinator, by outcome",
        {{"outcome", outcome}});
  }
  static obs::Histogram& PartitionSeconds(const std::string& worker) {
    return obs::GlobalMetrics().GetHistogram(
        "pprl_coord_partition_seconds",
        "Wall time driving one worker: shipments, assignment, gather",
        obs::DefaultLatencyBuckets(), {{"worker", worker}});
  }
  static obs::Counter& WorkerBytes(const std::string& worker, const char* direction) {
    return obs::GlobalMetrics().GetCounter(
        "pprl_coord_worker_bytes_total",
        "Raw socket bytes on a coordinator->worker link, frame headers included",
        {{"worker", worker}, {"direction", direction}});
  }
  static obs::Counter& WorkerRetries() {
    return obs::GlobalMetrics().GetCounter(
        "pprl_coord_worker_retries_total",
        "Worker-link deliveries retried beyond their first attempt");
  }
};

CoordinatorMetrics& Metrics() {
  static CoordinatorMetrics* m = new CoordinatorMetrics();
  return *m;
}

/// Rebuilds a Status of the given code (the factories are the only public
/// constructors).
Status StatusWithCode(StatusCode code, const std::string& msg) {
  switch (code) {
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(msg);
    case StatusCode::kOutOfRange: return Status::OutOfRange(msg);
    case StatusCode::kNotFound: return Status::NotFound(msg);
    case StatusCode::kAlreadyExists: return Status::AlreadyExists(msg);
    case StatusCode::kFailedPrecondition: return Status::FailedPrecondition(msg);
    case StatusCode::kProtocolViolation: return Status::ProtocolViolation(msg);
    case StatusCode::kIoError: return Status::IoError(msg);
    default: return Status::Internal(msg);
  }
}

/// Errors retrying cannot fix (mirrors the owner client's list).
bool Terminal(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<std::vector<WorkerEndpoint>> ParseWorkerList(const std::string& spec) {
  std::vector<WorkerEndpoint> workers;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string entry =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (entry.empty()) {
      return Status::InvalidArgument("empty entry in worker list '" + spec + "'");
    }
    WorkerEndpoint worker;
    const size_t colon = entry.rfind(':');
    const std::string port_text =
        colon == std::string::npos ? entry : entry.substr(colon + 1);
    if (colon != std::string::npos) {
      if (colon == 0) {
        return Status::InvalidArgument("empty host in worker entry '" + entry + "'");
      }
      worker.host = entry.substr(0, colon);
    }
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("bad port in worker entry '" + entry + "'");
    }
    const unsigned long port = std::stoul(port_text);
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument("port out of range in worker entry '" + entry +
                                     "'");
    }
    worker.port = static_cast<uint16_t>(port);
    workers.push_back(std::move(worker));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return workers;
}

CoordinatorServer::CoordinatorServer(LinkageUnitServerConfig server_config,
                                     CoordinatorConfig coordinator_config)
    : server_config_(std::move(server_config)),
      coordinator_(std::move(coordinator_config)) {}

CoordinatorServer::~CoordinatorServer() { Stop(); }

Status CoordinatorServer::Start() {
  if (server_ != nullptr) {
    return Status::FailedPrecondition("coordinator already started");
  }
  if (coordinator_.workers.empty()) {
    return Status::InvalidArgument("a coordinator needs at least one worker");
  }
  if (coordinator_.min_worker_partitions > coordinator_.workers.size()) {
    return Status::InvalidArgument(
        "worker quorum of " + std::to_string(coordinator_.min_worker_partitions) +
        " exceeds the ring of " + std::to_string(coordinator_.workers.size()));
  }
  server_config_.worker_mode = false;
  server_config_.distributed_linker =
      [this](const LinkageUnitService& unit, const MultiPartyLinkageOptions& options) {
        return ScatterGatherLink(unit, options);
      };
  server_ = std::make_unique<LinkageUnitServer>(server_config_);
  const Status started = server_->Start();
  if (!started.ok()) {
    server_.reset();
    return started;
  }
  const BlockPartitioner geometry(
      static_cast<uint32_t>(coordinator_.workers.size()), coordinator_.scheme);
  PPRL_LOG(kInfo) << "coordinator '" << name() << "' sharding over "
                  << coordinator_.workers.size() << " workers ("
                  << PartitionSchemeName(geometry.effective_scheme())
                  << " partitioning)";
  return Status::OK();
}

void CoordinatorServer::Stop() {
  if (server_) server_->Stop();
}

Status CoordinatorServer::WaitUntilDone(int timeout_ms) const {
  if (!server_) return Status::FailedPrecondition("coordinator not started");
  return server_->WaitUntilDone(timeout_ms);
}

Result<DistributedLinkOutcome> CoordinatorServer::ScatterGatherLink(
    const LinkageUnitService& unit, const MultiPartyLinkageOptions& options) {
  const size_t num_workers = coordinator_.workers.size();
  PPRL_LOG(kInfo) << "coordinator '" << name() << "' scattering "
                  << unit.num_databases() << " databases to " << num_workers
                  << " workers";

  // Every worker is driven end to end on its own thread: shipments,
  // assignment, gather. Threads only write their own slot, so no lock.
  std::vector<Result<PartitionResultMessage>> gathered(
      num_workers, Status::Internal("worker not driven"));
  std::vector<std::thread> drivers;
  drivers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    drivers.emplace_back([this, w, &unit, &options, &gathered] {
      const auto start = std::chrono::steady_clock::now();
      gathered[w] = DriveWorker(w, unit, options);
      Metrics()
          .PartitionSeconds(coordinator_.workers[w].Label())
          .Observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 start)
                       .count());
    });
  }
  for (std::thread& t : drivers) t.join();

  std::vector<WorkerPartitionResult> parts;
  parts.reserve(num_workers);
  Status first_failure = Status::OK();
  for (size_t w = 0; w < num_workers; ++w) {
    if (!gathered[w].ok()) {
      Metrics().Partitions("error").Increment();
      PPRL_LOG(kWarning) << "worker " << coordinator_.workers[w].Label()
                         << " failed its partition: "
                         << gathered[w].status().ToString();
      if (first_failure.ok()) first_failure = gathered[w].status();
      continue;
    }
    Metrics().Partitions("ok").Increment();
    WorkerPartitionResult part;
    part.worker_index = gathered[w]->worker_index;
    part.comparisons = gathered[w]->comparisons;
    part.candidate_pairs = gathered[w]->candidate_pairs;
    part.pruned_comparisons = gathered[w]->pruned_comparisons;
    part.edges = std::move(gathered[w]->edges);
    parts.push_back(std::move(part));
  }

  const size_t required = coordinator_.min_worker_partitions == 0
                              ? num_workers
                              : coordinator_.min_worker_partitions;
  if (parts.size() < required) {
    return Status::IoError("only " + std::to_string(parts.size()) + " of " +
                           std::to_string(num_workers) +
                           " worker partitions gathered (quorum " +
                           std::to_string(required) +
                           "); first failure: " + first_failure.message());
  }
  DistributedLinkOutcome outcome;
  outcome.workers_linked = static_cast<uint32_t>(parts.size());
  outcome.workers_expected = static_cast<uint32_t>(num_workers);
  if (outcome.workers_linked < outcome.workers_expected) {
    Metrics().degraded.Increment();
    PPRL_LOG(kWarning) << "straggler quorum: merging " << parts.size() << " of "
                       << num_workers << " partitions (degraded result)";
  }

  MergedPartitions merged = MergeWorkerPartitions(std::move(parts));
  outcome.result.edges = std::move(merged.edges);
  outcome.result.comparisons = merged.comparisons;
  outcome.result.candidate_pairs = merged.candidate_pairs;
  outcome.result.pruned_comparisons = merged.pruned_comparisons;
  // Clustering stays global at the coordinator, over the merged edges —
  // identical inputs to the single-daemon path, so identical clusters.
  if (options.use_star_clustering) {
    outcome.result.clusters = StarClustering(outcome.result.edges);
  } else if (options.scheduler != nullptr) {
    outcome.result.clusters =
        ParallelConnectedComponents(outcome.result.edges, *options.scheduler);
  } else {
    outcome.result.clusters = ConnectedComponents(outcome.result.edges);
  }
  return outcome;
}

Result<PartitionResultMessage> CoordinatorServer::DriveWorker(
    size_t worker_index, const LinkageUnitService& unit,
    const MultiPartyLinkageOptions& options) {
  const WorkerEndpoint& worker = coordinator_.workers[worker_index];

  // 1. Scatter: re-ship every owner's database over the ordinary
  // fault-tolerant session protocol, stop-and-wait per owner so the
  // worker registers them in the coordinator's owner order.
  for (size_t d = 0; d < unit.num_databases(); ++d) {
    RemoteOwnerClientConfig ship;
    ship.host = worker.host;
    ship.port = worker.port;
    ship.server_label = worker.Label();
    ship.connect = coordinator_.connect;
    ship.retry = coordinator_.retry;
    ship.chunk_bytes = coordinator_.chunk_bytes;
    ship.max_frame_payload = coordinator_.max_frame_payload;
    ship.wait_for_results = false;
    if (coordinator_.chaos.enabled()) {
      ship.fault = coordinator_.chaos.WithSeed(
          coordinator_.chaos.seed +
          0x9e3779b97f4a7c15ULL * (worker_index * 64 + d + 1));
    }
    RemoteOwnerClient client(ship, &worker_channel_);
    auto shipped = client.ShipAndAwait(unit.owners()[d], unit.databases()[d]);
    Metrics().WorkerBytes(worker.Label(), "sent").Increment(client.wire_bytes_sent());
    Metrics()
        .WorkerBytes(worker.Label(), "received")
        .Increment(client.wire_bytes_received());
    worker_wire_bytes_sent_.fetch_add(client.wire_bytes_sent());
    worker_wire_bytes_received_.fetch_add(client.wire_bytes_received());
    if (client.retries() > 0) {
      Metrics().WorkerRetries().Increment(client.retries());
      worker_retries_.fetch_add(client.retries());
    }
    if (!shipped.ok()) {
      // A worker that already holds this shipment from an earlier
      // (retried) drive answers kAlreadyExists — that is success, not
      // failure: the bytes are registered.
      if (shipped.status().code() != StatusCode::kAlreadyExists) {
        return StatusWithCode(shipped.status().code(),
                              "shipping '" + unit.owners()[d] + "' to worker " +
                                  worker.Label() + ": " +
                                  shipped.status().message());
      }
    }
  }

  // 2. Assign the partition and gather its result.
  AssignPartitionMessage assign;
  assign.protocol_version = kWireProtocolVersion;
  assign.coordinator = name();
  assign.worker_index = static_cast<uint32_t>(worker_index);
  assign.num_workers = static_cast<uint32_t>(coordinator_.workers.size());
  assign.scheme = static_cast<uint8_t>(coordinator_.scheme);
  assign.expected_owners = static_cast<uint32_t>(unit.num_databases());
  assign.dice_threshold = options.dice_threshold;
  assign.lsh_tables = static_cast<uint32_t>(options.lsh_tables);
  assign.lsh_bits_per_key = static_cast<uint32_t>(options.lsh_bits_per_key);
  assign.lsh_seed = options.lsh_seed;
  return AssignWithRetry(worker_index, assign);
}

Result<PartitionResultMessage> CoordinatorServer::AssignWithRetry(
    size_t worker_index, const AssignPartitionMessage& assign) {
  const WorkerEndpoint& worker = coordinator_.workers[worker_index];
  RetryBackoff backoff(coordinator_.retry);
  Status last_error = Status::IoError("no assignment attempt made");

  const auto attempt_assignment = [&](int attempt,
                                      int* busy_hint_ms) -> Result<PartitionResultMessage> {
    auto conn =
        TcpConnection::Connect(worker.host, worker.port, coordinator_.connect);
    if (!conn.ok()) return conn.status();
    TcpConnection& socket = **conn;
    std::unique_ptr<FaultInjectingConnection> chaos;
    Connection* wire = &socket;
    if (coordinator_.chaos.enabled()) {
      chaos = std::make_unique<FaultInjectingConnection>(
          socket, coordinator_.chaos.WithSeed(
                      coordinator_.chaos.seed +
                      0x517cc1b727220a95ULL *
                          (worker_index * 64 + static_cast<uint64_t>(attempt) + 1)));
      wire = chaos.get();
    }
    MeteredFrameConnection mfc(*wire, &worker_channel_, name(),
                               coordinator_.max_frame_payload);
    mfc.set_peer(worker.Label());

    struct WireTally {
      TcpConnection& socket;
      std::atomic<size_t>& sent;
      std::atomic<size_t>& received;
      ~WireTally() {
        sent.fetch_add(socket.wire_bytes_sent());
        received.fetch_add(socket.wire_bytes_received());
      }
    } tally{socket, worker_wire_bytes_sent_, worker_wire_bytes_received_};

    PPRL_RETURN_IF_ERROR(mfc.Send(
        static_cast<uint8_t>(MessageType::kAssignPartition),
        EncodeAssignPartition(assign),
        MessageTypeTag(static_cast<uint8_t>(MessageType::kAssignPartition))));
    // The worker computes its whole partition before replying.
    wire->SetIoTimeout(coordinator_.assign_timeout_ms);
    auto frame = mfc.Receive(MessageTypeTag);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) {
        return Status::IoError("worker closed before answering the assignment");
      }
      return frame.status();
    }
    if (frame->type == static_cast<uint8_t>(MessageType::kBusy)) {
      auto busy = DecodeBusy(frame->payload);
      if (!busy.ok()) return busy.status();
      *busy_hint_ms = static_cast<int>(busy->retry_after_ms);
      return Status::IoError("worker busy: " + busy->reason);
    }
    if (frame->type == static_cast<uint8_t>(MessageType::kError)) {
      auto err = DecodeError(frame->payload);
      if (!err.ok()) return err.status();
      return StatusWithCode(err->code, "worker: " + err->message);
    }
    if (frame->type != static_cast<uint8_t>(MessageType::kPartitionResult)) {
      return Status::ProtocolViolation("expected partition-result, got frame type " +
                                       std::to_string(frame->type));
    }
    auto result = DecodePartitionResult(frame->payload);
    if (!result.ok()) return result.status();
    if (result->worker_index != assign.worker_index) {
      return Status::ProtocolViolation("partition-result names worker " +
                                       std::to_string(result->worker_index) +
                                       ", assigned " +
                                       std::to_string(assign.worker_index));
    }
    return result;
  };

  for (int attempt = 0; attempt < std::max(coordinator_.retry.max_attempts, 1);
       ++attempt) {
    int busy_hint_ms = -1;
    auto outcome = attempt_assignment(attempt, &busy_hint_ms);
    if (outcome.ok()) return outcome;
    last_error = outcome.status();
    if (Terminal(last_error)) return last_error;
    const int delay_ms = backoff.NextDelayMs(attempt, busy_hint_ms);
    Metrics().WorkerRetries().Increment();
    worker_retries_.fetch_add(1);
    if (backoff.DeadlineExceededAfter(delay_ms)) {
      return Status::IoError("assignment deadline exceeded after " +
                             std::to_string(attempt + 1) +
                             " attempts; last error: " + last_error.message());
    }
    PPRL_LOG(kDebug) << "retrying assignment to " << worker.Label() << " in "
                     << delay_ms << " ms: " << last_error.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return Status::IoError("assignment to " + worker.Label() + " failed after " +
                         std::to_string(coordinator_.retry.max_attempts) +
                         " attempts; last error: " + last_error.message());
}

}  // namespace pprl
