#ifndef PPRL_EVAL_METRICS_H_
#define PPRL_EVAL_METRICS_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/record.h"
#include "blocking/blocking.h"
#include "linkage/comparison.h"

namespace pprl {

/// Ground truth of a two-database linkage: the set of true (a, b) index
/// pairs, built from generator entity ids. Only the evaluation layer sees
/// this.
class GroundTruth {
 public:
  /// Records with equal entity_id across `a` and `b` form the true matches.
  GroundTruth(const Database& a, const Database& b);

  bool IsMatch(uint32_t a_index, uint32_t b_index) const;
  size_t num_matches() const { return pairs_.size(); }
  const std::set<std::pair<uint32_t, uint32_t>>& pairs() const { return pairs_; }

 private:
  std::set<std::pair<uint32_t, uint32_t>> pairs_;
};

/// Confusion counts of predicted pairs against ground truth.
struct ConfusionCounts {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Compares a predicted match set with the truth (correctness, §3.3).
ConfusionCounts EvaluateMatches(const std::vector<ScoredPair>& predicted,
                                const GroundTruth& truth);

/// Blocking-quality metrics (§3.3 efficiency/quality trade-off):
struct BlockingQuality {
  /// 1 - candidates / (|A| * |B|); higher = fewer comparisons.
  double reduction_ratio = 0;
  /// Fraction of true matches surviving blocking (blocking recall).
  double pairs_completeness = 0;
  /// Fraction of candidates that are true matches (blocking precision).
  double pairs_quality = 0;
  size_t num_candidates = 0;
};
BlockingQuality EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const GroundTruth& truth, size_t size_a, size_t size_b);

/// Area under the ROC curve of scored pairs against the truth. Uses the
/// rank statistic (equivalent to the Mann-Whitney U), ties counted half.
double AreaUnderRoc(const std::vector<ScoredPair>& scored, const GroundTruth& truth);

/// Precision/recall/F1 at every distinct threshold of `scored`, for
/// threshold-sweep plots. Entries are sorted by ascending threshold.
/// False negatives at each threshold count all true matches not predicted,
/// including those never scored.
struct ThresholdPoint {
  double threshold = 0;
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};
std::vector<ThresholdPoint> ThresholdSweep(const std::vector<ScoredPair>& scored,
                                           const GroundTruth& truth);

}  // namespace pprl

#endif  // PPRL_EVAL_METRICS_H_
