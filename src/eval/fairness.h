#ifndef PPRL_EVAL_FAIRNESS_H_
#define PPRL_EVAL_FAIRNESS_H_

#include <map>
#include <string>
#include <vector>

#include "common/record.h"
#include "eval/metrics.h"

namespace pprl {

/// Fairness evaluation of linkage results (survey §3.3 "Correctness and
/// fairness" and §5.2, [46]): linkage quality measured per protected group,
/// because linkage errors that concentrate in one subgroup bias every
/// downstream analysis.

/// Per-group confusion counts keyed by the protected attribute's value. A
/// pair belongs to the group of its database-A record.
using GroupConfusion = std::map<std::string, ConfusionCounts>;

/// Splits the evaluation of `predicted` by the protected field of `a`'s
/// records (e.g. "sex"). Records with an empty protected value land in the
/// group "<missing>".
GroupConfusion EvaluateByGroup(const std::vector<ScoredPair>& predicted,
                               const GroundTruth& truth, const Database& a,
                               const std::string& protected_field);

/// Fairness-gap summaries over a group confusion map.
struct FairnessGaps {
  /// Max - min recall across groups ("equal opportunity" gap: do true
  /// matches in every group have the same chance of being found?).
  double recall_gap = 0;
  /// Max - min precision across groups.
  double precision_gap = 0;
  /// Max - min F1 across groups.
  double f1_gap = 0;
};
FairnessGaps ComputeFairnessGaps(const GroupConfusion& by_group);

}  // namespace pprl

#endif  // PPRL_EVAL_FAIRNESS_H_
