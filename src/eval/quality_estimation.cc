#include "eval/quality_estimation.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace pprl {

namespace {

double NormalPdf(double x, double mean, double stddev) {
  const double z = (x - mean) / stddev;
  return std::exp(-z * z / 2) / (stddev * std::sqrt(2 * M_PI));
}

double NormalCdf(double x, double mean, double stddev) {
  return 0.5 * std::erfc(-(x - mean) / (stddev * std::sqrt(2.0)));
}

}  // namespace

double ScoreMixtureModel::MatchPosterior(double score) const {
  const double pm = match_weight * NormalPdf(score, match_mean, match_stddev);
  const double pn =
      (1 - match_weight) * NormalPdf(score, non_match_mean, non_match_stddev);
  if (pm + pn <= 0) return score > non_match_mean ? 1.0 : 0.0;
  return pm / (pm + pn);
}

double ScoreMixtureModel::EstimatedPrecision(double threshold) const {
  // P(match AND score >= t) / P(score >= t).
  const double match_above =
      match_weight * (1 - NormalCdf(threshold, match_mean, match_stddev));
  const double non_above =
      (1 - match_weight) * (1 - NormalCdf(threshold, non_match_mean, non_match_stddev));
  const double total = match_above + non_above;
  if (total <= 0) return 0;
  return match_above / total;
}

double ScoreMixtureModel::EstimatedRecall(double threshold) const {
  return 1 - NormalCdf(threshold, match_mean, match_stddev);
}

double ScoreMixtureModel::SuggestThreshold() const {
  double best_threshold = match_mean;
  double best_f1 = -1;
  for (double t = 0.0; t <= 1.0; t += 0.005) {
    const double p = EstimatedPrecision(t);
    const double r = EstimatedRecall(t);
    if (p + r <= 0) continue;
    const double f1 = 2 * p * r / (p + r);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = t;
    }
  }
  return best_threshold;
}

Result<ScoreMixtureModel> FitScoreMixture(const std::vector<double>& scores,
                                          size_t em_iterations) {
  if (scores.size() < 10) {
    return Status::InvalidArgument("need at least 10 scores to fit the mixture");
  }
  if (StdDev(scores) < 1e-9) {
    return Status::InvalidArgument("scores have no spread; nothing to separate");
  }

  ScoreMixtureModel model;
  // Initialise the components at the 10th/90th percentiles.
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  model.non_match_mean = sorted[sorted.size() / 10];
  model.match_mean = sorted[sorted.size() - 1 - sorted.size() / 10];
  if (model.match_mean - model.non_match_mean < 0.05) {
    model.match_mean = model.non_match_mean + 0.05;
  }
  model.match_stddev = model.non_match_stddev = std::max(0.02, StdDev(scores) / 2);
  model.match_weight = 0.05;
  constexpr double kMinStd = 1e-3;
  constexpr double kMinWeight = 1e-4;

  std::vector<double> resp(scores.size());
  for (size_t iter = 0; iter < em_iterations; ++iter) {
    // E-step.
    for (size_t i = 0; i < scores.size(); ++i) {
      resp[i] = model.MatchPosterior(scores[i]);
    }
    // M-step.
    double w = 0, mean_m = 0, mean_n = 0, wn = 0;
    for (size_t i = 0; i < scores.size(); ++i) {
      w += resp[i];
      wn += 1 - resp[i];
      mean_m += resp[i] * scores[i];
      mean_n += (1 - resp[i]) * scores[i];
    }
    if (w < kMinWeight || wn < kMinWeight) break;
    mean_m /= w;
    mean_n /= wn;
    double var_m = 0, var_n = 0;
    for (size_t i = 0; i < scores.size(); ++i) {
      var_m += resp[i] * (scores[i] - mean_m) * (scores[i] - mean_m);
      var_n += (1 - resp[i]) * (scores[i] - mean_n) * (scores[i] - mean_n);
    }
    model.match_weight = std::clamp(w / static_cast<double>(scores.size()),
                                    kMinWeight, 1 - kMinWeight);
    // Keep the identification "match component = the higher-mean one".
    if (mean_m < mean_n) {
      std::swap(mean_m, mean_n);
      std::swap(var_m, var_n);
      std::swap(w, wn);
      model.match_weight = 1 - model.match_weight;
    }
    model.match_mean = mean_m;
    model.non_match_mean = mean_n;
    model.match_stddev = std::max(kMinStd, std::sqrt(var_m / w));
    model.non_match_stddev = std::max(kMinStd, std::sqrt(var_n / wn));
  }
  return model;
}

Result<ScoreMixtureModel> FitScoreMixture(const std::vector<ScoredPair>& pairs,
                                          size_t em_iterations) {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const ScoredPair& pair : pairs) scores.push_back(pair.score);
  return FitScoreMixture(scores, em_iterations);
}

}  // namespace pprl
