#include "eval/metrics.h"

#include <algorithm>
#include <unordered_map>

namespace pprl {

GroundTruth::GroundTruth(const Database& a, const Database& b) {
  std::unordered_map<uint64_t, std::vector<uint32_t>> b_by_entity;
  for (uint32_t j = 0; j < b.records.size(); ++j) {
    b_by_entity[b.records[j].entity_id].push_back(j);
  }
  for (uint32_t i = 0; i < a.records.size(); ++i) {
    const auto it = b_by_entity.find(a.records[i].entity_id);
    if (it == b_by_entity.end()) continue;
    for (uint32_t j : it->second) pairs_.insert({i, j});
  }
}

bool GroundTruth::IsMatch(uint32_t a_index, uint32_t b_index) const {
  return pairs_.count({a_index, b_index}) > 0;
}

double ConfusionCounts::Precision() const {
  const size_t denom = true_positives + false_positives;
  return denom == 0 ? 0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ConfusionCounts::Recall() const {
  const size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ConfusionCounts::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r == 0 ? 0 : 2 * p * r / (p + r);
}

ConfusionCounts EvaluateMatches(const std::vector<ScoredPair>& predicted,
                                const GroundTruth& truth) {
  ConfusionCounts counts;
  std::set<std::pair<uint32_t, uint32_t>> predicted_set;
  for (const ScoredPair& pair : predicted) predicted_set.insert({pair.a, pair.b});
  for (const auto& pair : predicted_set) {
    if (truth.pairs().count(pair) > 0) {
      ++counts.true_positives;
    } else {
      ++counts.false_positives;
    }
  }
  counts.false_negatives = truth.num_matches() - counts.true_positives;
  return counts;
}

BlockingQuality EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const GroundTruth& truth, size_t size_a,
                                 size_t size_b) {
  BlockingQuality quality;
  quality.num_candidates = candidates.size();
  const double total_pairs = static_cast<double>(size_a) * static_cast<double>(size_b);
  quality.reduction_ratio =
      total_pairs == 0 ? 0 : 1.0 - static_cast<double>(candidates.size()) / total_pairs;
  size_t true_in_candidates = 0;
  for (const CandidatePair& pair : candidates) {
    if (truth.IsMatch(pair.a, pair.b)) ++true_in_candidates;
  }
  quality.pairs_completeness =
      truth.num_matches() == 0
          ? 1.0
          : static_cast<double>(true_in_candidates) /
                static_cast<double>(truth.num_matches());
  quality.pairs_quality = candidates.empty()
                              ? 0
                              : static_cast<double>(true_in_candidates) /
                                    static_cast<double>(candidates.size());
  return quality;
}

double AreaUnderRoc(const std::vector<ScoredPair>& scored, const GroundTruth& truth) {
  // Rank-sum formulation: AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos * n_neg)
  // where R_pos is the rank sum of positive scores (average ranks on ties).
  std::vector<std::pair<double, bool>> labelled;
  labelled.reserve(scored.size());
  for (const ScoredPair& pair : scored) {
    labelled.push_back({pair.score, truth.IsMatch(pair.a, pair.b)});
  }
  std::sort(labelled.begin(), labelled.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  const size_t n = labelled.size();
  size_t n_pos = 0;
  double rank_sum_pos = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && labelled[j].first == labelled[i].first) ++j;
    const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (labelled[k].second) {
        ++n_pos;
        rank_sum_pos += avg_rank;
      }
    }
    i = j;
  }
  const size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  return (rank_sum_pos - static_cast<double>(n_pos) * static_cast<double>(n_pos + 1) / 2.0) /
         (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

std::vector<ThresholdPoint> ThresholdSweep(const std::vector<ScoredPair>& scored,
                                           const GroundTruth& truth) {
  // Sort descending; walking down the list adds pairs to the predicted set.
  std::vector<ScoredPair> sorted = scored;
  std::sort(sorted.begin(), sorted.end(), [](const ScoredPair& x, const ScoredPair& y) {
    return x.score > y.score;
  });
  std::vector<ThresholdPoint> points;
  size_t tp = 0, fp = 0;
  const size_t total_matches = truth.num_matches();
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j].score == sorted[i].score) {
      if (truth.IsMatch(sorted[j].a, sorted[j].b)) {
        ++tp;
      } else {
        ++fp;
      }
      ++j;
    }
    ThresholdPoint point;
    point.threshold = sorted[i].score;
    point.precision = tp + fp == 0 ? 0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
    point.recall = total_matches == 0
                       ? 1.0
                       : static_cast<double>(tp) / static_cast<double>(total_matches);
    point.f1 = point.precision + point.recall == 0
                   ? 0
                   : 2 * point.precision * point.recall / (point.precision + point.recall);
    points.push_back(point);
    i = j;
  }
  std::reverse(points.begin(), points.end());  // ascending threshold
  return points;
}

}  // namespace pprl
