#ifndef PPRL_EVAL_QUALITY_ESTIMATION_H_
#define PPRL_EVAL_QUALITY_ESTIMATION_H_

#include <vector>

#include "common/status.h"
#include "linkage/comparison.h"

namespace pprl {

/// Ground-truth-free linkage-quality estimation (survey §5.2: "assessing
/// the linkage quality in a PPRL project is very challenging because it is
/// generally not possible to inspect linked records"; heuristic measures
/// "require more research").
///
/// The estimator fits a two-component Gaussian mixture to the similarity
/// scores of the compared pairs via EM: one component for non-matches (low
/// scores, the overwhelming majority) and one for matches (high scores).
/// From the fitted mixture it predicts, for any threshold, the expected
/// precision/recall WITHOUT any labels — the heuristic evaluation the
/// survey asks for.
struct ScoreMixtureModel {
  double match_weight = 0.05;  ///< mixture proportion of the match component
  double match_mean = 0.9;
  double match_stddev = 0.05;
  double non_match_mean = 0.3;
  double non_match_stddev = 0.1;

  /// Probability a pair with this score is a match (posterior).
  double MatchPosterior(double score) const;

  /// Estimated precision of classifying at `threshold`.
  double EstimatedPrecision(double threshold) const;

  /// Estimated recall (fraction of the match component above `threshold`).
  double EstimatedRecall(double threshold) const;

  /// Threshold maximising the estimated F1.
  double SuggestThreshold() const;
};

/// Fits the mixture to `scores`. Feed it the similarity scores of the
/// *plausible candidate* pairs (e.g. everything above a loose floor like
/// 0.5), not the full quadratic pair set: against millions of unrelated
/// pairs the tiny match component is statistically invisible to a
/// two-component fit. Needs at least 10 scores with nonzero spread.
Result<ScoreMixtureModel> FitScoreMixture(const std::vector<double>& scores,
                                          size_t em_iterations = 100);

/// Convenience: extracts scores from compared pairs and fits.
Result<ScoreMixtureModel> FitScoreMixture(const std::vector<ScoredPair>& pairs,
                                          size_t em_iterations = 100);

}  // namespace pprl

#endif  // PPRL_EVAL_QUALITY_ESTIMATION_H_
