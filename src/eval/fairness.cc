#include "eval/fairness.h"

#include <algorithm>

namespace pprl {

GroupConfusion EvaluateByGroup(const std::vector<ScoredPair>& predicted,
                               const GroundTruth& truth, const Database& a,
                               const std::string& protected_field) {
  GroupConfusion by_group;
  const int field = a.schema.FieldIndex(protected_field);

  auto group_of = [&](uint32_t a_index) -> std::string {
    if (field < 0 || a_index >= a.records.size()) return "<missing>";
    const std::string& value = a.records[a_index].values[static_cast<size_t>(field)];
    return value.empty() ? "<missing>" : value;
  };

  std::set<std::pair<uint32_t, uint32_t>> predicted_set;
  for (const ScoredPair& pair : predicted) predicted_set.insert({pair.a, pair.b});

  for (const auto& pair : predicted_set) {
    ConfusionCounts& counts = by_group[group_of(pair.first)];
    if (truth.pairs().count(pair) > 0) {
      ++counts.true_positives;
    } else {
      ++counts.false_positives;
    }
  }
  for (const auto& pair : truth.pairs()) {
    if (predicted_set.count(pair) == 0) {
      ++by_group[group_of(pair.first)].false_negatives;
    }
  }
  return by_group;
}

FairnessGaps ComputeFairnessGaps(const GroupConfusion& by_group) {
  FairnessGaps gaps;
  if (by_group.empty()) return gaps;
  double min_recall = 1, max_recall = 0;
  double min_precision = 1, max_precision = 0;
  double min_f1 = 1, max_f1 = 0;
  for (const auto& [group, counts] : by_group) {
    min_recall = std::min(min_recall, counts.Recall());
    max_recall = std::max(max_recall, counts.Recall());
    min_precision = std::min(min_precision, counts.Precision());
    max_precision = std::max(max_precision, counts.Precision());
    min_f1 = std::min(min_f1, counts.F1());
    max_f1 = std::max(max_f1, counts.F1());
  }
  gaps.recall_gap = std::max(0.0, max_recall - min_recall);
  gaps.precision_gap = std::max(0.0, max_precision - min_precision);
  gaps.f1_gap = std::max(0.0, max_f1 - min_f1);
  return gaps;
}

}  // namespace pprl
