#ifndef PPRL_TUNING_TUNER_H_
#define PPRL_TUNING_TUNER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace pprl {

/// One tunable parameter of a PPRL pipeline (Bloom-filter length, number of
/// hash functions, match threshold, LSH table count, ...).
struct ParamSpec {
  std::string name;
  double min_value = 0;
  double max_value = 1;
  bool is_integer = false;
};

/// A full assignment: one value per ParamSpec, in spec order.
using ParamPoint = std::vector<double>;

/// Black-box objective to MAXIMISE (e.g. F1 of a linkage run).
using Objective = std::function<double(const ParamPoint&)>;

/// One evaluated configuration.
struct Evaluation {
  ParamPoint point;
  double value = 0;
};

/// Result of a tuning run: every evaluation plus the incumbent.
struct TuningResult {
  std::vector<Evaluation> history;
  Evaluation best;

  /// Best objective value seen after the first `k` evaluations, for
  /// convergence plots (experiment E10).
  double BestAfter(size_t k) const;
};

/// Exhaustive grid search with `points_per_dimension` levels per parameter
/// (§3.1: tunes "in an isolated way disregarding past evaluations").
TuningResult GridSearch(const std::vector<ParamSpec>& space, const Objective& objective,
                        size_t points_per_dimension);

/// Uniform random search with `budget` evaluations [3].
TuningResult RandomSearch(const std::vector<ParamSpec>& space, const Objective& objective,
                          size_t budget, Rng& rng);

/// Bayesian optimisation with a Gaussian-process surrogate and expected-
/// improvement acquisition [36]: uses everything seen so far to pick the
/// next configuration, which is what the survey recommends over grid and
/// random search for PPRL parameter tuning.
struct BayesianOptOptions {
  size_t initial_random = 5;      ///< warm-up evaluations before the GP
  size_t acquisition_samples = 500;  ///< candidate points scored per step
  double kernel_length_scale = 0.2;  ///< RBF length scale in normalised [0,1] space
  double noise = 1e-6;            ///< observation noise added to the kernel diagonal
};
TuningResult BayesianOptimization(const std::vector<ParamSpec>& space,
                                  const Objective& objective, size_t budget, Rng& rng,
                                  const BayesianOptOptions& options = {});

}  // namespace pprl

#endif  // PPRL_TUNING_TUNER_H_
