#include "tuning/tuner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pprl {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Maps a normalised [0,1] coordinate to the spec's range (rounding for
/// integer parameters).
double Denormalize(double unit, const ParamSpec& spec) {
  double v = spec.min_value + unit * (spec.max_value - spec.min_value);
  if (spec.is_integer) v = std::round(v);
  return std::clamp(v, spec.min_value, spec.max_value);
}

ParamPoint DenormalizePoint(const std::vector<double>& unit,
                            const std::vector<ParamSpec>& space) {
  ParamPoint point(space.size());
  for (size_t d = 0; d < space.size(); ++d) point[d] = Denormalize(unit[d], space[d]);
  return point;
}

/// Squared-exponential kernel on normalised coordinates.
double RbfKernel(const std::vector<double>& x, const std::vector<double>& y,
                 double length_scale) {
  double sq = 0;
  for (size_t d = 0; d < x.size(); ++d) sq += (x[d] - y[d]) * (x[d] - y[d]);
  return std::exp(-sq / (2 * length_scale * length_scale));
}

/// In-place Cholesky decomposition A = L L^T (lower triangle). Returns
/// false when A is not positive definite.
bool Cholesky(std::vector<std::vector<double>>& a) {
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (size_t k = 0; k < j; ++k) sum -= a[i][k] * a[j][k];
      if (i == j) {
        if (sum <= 0) return false;
        a[i][i] = std::sqrt(sum);
      } else {
        a[i][j] = sum / a[j][j];
      }
    }
    for (size_t j = i + 1; j < n; ++j) a[i][j] = 0;
  }
  return true;
}

/// Solves L y = b (forward substitution).
std::vector<double> ForwardSolve(const std::vector<std::vector<double>>& l,
                                 const std::vector<double>& b) {
  const size_t n = l.size();
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l[i][k] * y[k];
    y[i] = sum / l[i][i];
  }
  return y;
}

/// Solves L^T x = y (backward substitution).
std::vector<double> BackwardSolve(const std::vector<std::vector<double>>& l,
                                  const std::vector<double>& y) {
  const size_t n = l.size();
  std::vector<double> x(n);
  for (size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l[k][i] * x[k];
    x[i] = sum / l[i][i];
  }
  return x;
}

double NormalPdf(double z) { return std::exp(-z * z / 2) / std::sqrt(2 * M_PI); }

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

void Record(TuningResult& result, ParamPoint point, double value) {
  result.history.push_back({std::move(point), value});
  if (result.history.size() == 1 || value > result.best.value) {
    result.best = result.history.back();
  }
}

}  // namespace

double TuningResult::BestAfter(size_t k) const {
  double best = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < history.size() && i < k; ++i) {
    best = std::max(best, history[i].value);
  }
  return best;
}

TuningResult GridSearch(const std::vector<ParamSpec>& space, const Objective& objective,
                        size_t points_per_dimension) {
  TuningResult result;
  const size_t levels = std::max<size_t>(1, points_per_dimension);
  std::vector<size_t> index(space.size(), 0);
  while (true) {
    std::vector<double> unit(space.size());
    for (size_t d = 0; d < space.size(); ++d) {
      unit[d] = levels == 1 ? 0.5
                            : static_cast<double>(index[d]) /
                                  static_cast<double>(levels - 1);
    }
    ParamPoint point = DenormalizePoint(unit, space);
    Record(result, point, objective(point));
    // Odometer increment.
    size_t d = 0;
    while (d < space.size()) {
      if (++index[d] < levels) break;
      index[d] = 0;
      ++d;
    }
    if (d == space.size()) break;
  }
  return result;
}

TuningResult RandomSearch(const std::vector<ParamSpec>& space, const Objective& objective,
                          size_t budget, Rng& rng) {
  TuningResult result;
  for (size_t i = 0; i < budget; ++i) {
    std::vector<double> unit(space.size());
    for (double& u : unit) u = rng.NextDouble();
    ParamPoint point = DenormalizePoint(unit, space);
    Record(result, point, objective(point));
  }
  return result;
}

TuningResult BayesianOptimization(const std::vector<ParamSpec>& space,
                                  const Objective& objective, size_t budget, Rng& rng,
                                  const BayesianOptOptions& options) {
  TuningResult result;
  std::vector<std::vector<double>> unit_points;  // normalised coordinates
  std::vector<double> values;

  auto evaluate = [&](const std::vector<double>& unit) {
    ParamPoint point = DenormalizePoint(unit, space);
    const double value = objective(point);
    unit_points.push_back(unit);
    values.push_back(value);
    Record(result, std::move(point), value);
  };

  const size_t warmup = std::min(budget, options.initial_random);
  for (size_t i = 0; i < warmup; ++i) {
    std::vector<double> unit(space.size());
    for (double& u : unit) u = rng.NextDouble();
    evaluate(unit);
  }

  for (size_t step = warmup; step < budget; ++step) {
    // Fit the GP: K = kernel matrix + noise, alpha = K^-1 (y - mean).
    const size_t n = unit_points.size();
    double mean = 0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(n);

    std::vector<std::vector<double>> k(n, std::vector<double>(n));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        k[i][j] = RbfKernel(unit_points[i], unit_points[j], options.kernel_length_scale);
      }
      k[i][i] += options.noise;
    }
    std::vector<double> centered(n);
    for (size_t i = 0; i < n; ++i) centered[i] = values[i] - mean;
    if (!Cholesky(k)) {
      // Numerical failure: fall back to a random probe this step.
      std::vector<double> unit(space.size());
      for (double& u : unit) u = rng.NextDouble();
      evaluate(unit);
      continue;
    }
    const std::vector<double> alpha = BackwardSolve(k, ForwardSolve(k, centered));

    // Expected improvement over the incumbent at random candidates.
    const double best_value = result.best.value;
    double best_ei = -1;
    std::vector<double> best_unit(space.size(), 0.5);
    for (size_t s = 0; s < options.acquisition_samples; ++s) {
      std::vector<double> unit(space.size());
      for (double& u : unit) u = Clamp01(rng.NextDouble());
      std::vector<double> k_star(n);
      for (size_t i = 0; i < n; ++i) {
        k_star[i] = RbfKernel(unit, unit_points[i], options.kernel_length_scale);
      }
      double mu = mean;
      for (size_t i = 0; i < n; ++i) mu += k_star[i] * alpha[i];
      // Predictive variance: k(x,x) - v^T v with v = L^-1 k_star.
      const std::vector<double> v = ForwardSolve(k, k_star);
      double var = 1.0 + options.noise;
      for (double vi : v) var -= vi * vi;
      const double sigma = std::sqrt(std::max(var, 1e-12));
      const double z = (mu - best_value) / sigma;
      const double ei = (mu - best_value) * NormalCdf(z) + sigma * NormalPdf(z);
      if (ei > best_ei) {
        best_ei = ei;
        best_unit = unit;
      }
    }
    evaluate(best_unit);
  }
  return result;
}

}  // namespace pprl
