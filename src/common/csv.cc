#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace pprl {

int CsvTable::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"' && !field_started) {
        in_quotes = true;
        field_started = true;
      } else if (c == ',') {
        end_field();
      } else if (c == '\n') {
        end_record();
      } else if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
        // CRLF record terminator; the LF on the next iteration ends the
        // record. A CR not followed by LF falls through as literal data.
      } else {
        field += c;
        field_started = true;
      }
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !record.empty() || !field.empty()) {
    end_record();
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV input has no header row");
  }

  CsvTable table;
  table.header = std::move(records[0]);
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != table.header.size()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(r) + " has " + std::to_string(records[r].size()) +
          " fields, expected " + std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

namespace {

std::string EscapeField(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void WriteRecord(std::string& out, const std::vector<std::string>& record) {
  for (size_t i = 0; i < record.size(); ++i) {
    if (i > 0) out += ',';
    out += EscapeField(record[i]);
  }
  out += '\n';
}

}  // namespace

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  WriteRecord(out, table.header);
  for (const auto& row : table.rows) WriteRecord(out, row);
  return out;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsv(table);
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace pprl
