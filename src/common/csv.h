#ifndef PPRL_COMMON_CSV_H_
#define PPRL_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pprl {

/// An in-memory CSV table: a header row plus data rows.
///
/// Used to load/store the synthetic person databases produced by
/// `pprl::datagen` and to export benchmark result series.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `column` in the header, or -1 when absent.
  int ColumnIndex(const std::string& column) const;
};

/// Parses RFC-4180-style CSV text (quoted fields, embedded commas/quotes and
/// newlines inside quotes; records end at LF or CRLF — a CR not followed by
/// LF is field data). The first record is treated as the header. The
/// streaming reader in io/csv_stream.h parses the identical dialect.
Result<CsvTable> ParseCsv(const std::string& text);

/// Serialises `table` to CSV, quoting fields that contain separators.
std::string WriteCsv(const CsvTable& table);

/// Reads and parses the file at `path`.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Writes `table` to `path`, replacing any existing file.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace pprl

#endif  // PPRL_COMMON_CSV_H_
