#include "common/strings.h"

#include <cctype>
#include <map>

namespace pprl {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      return parts;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string StripNonAlnum(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

std::string NormalizeQid(std::string_view s) {
  const std::string lowered = ToLower(Trim(s));
  std::string out;
  out.reserve(lowered.size());
  bool prev_space = false;
  for (char c : lowered) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!prev_space && !out.empty()) out += ' ';
      prev_space = true;
    } else {
      out += c;
      prev_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> QGrams(std::string_view s, const QGramOptions& options) {
  const size_t q = options.q == 0 ? 1 : options.q;
  std::string padded;
  if (options.pad && q > 1) {
    padded.assign(q - 1, '_');
    padded += s;
    padded.append(q - 1, '_');
  } else {
    padded.assign(s);
  }
  std::vector<std::string> grams;
  if (padded.size() < q) {
    if (!padded.empty()) grams.push_back(padded);
    return grams;
  }
  std::map<std::string, int> seen;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    std::string gram = padded.substr(i, q);
    if (options.positional_dedup) {
      const int occurrence = seen[gram]++;
      if (occurrence > 0) {
        gram += '#';
        gram += std::to_string(occurrence);
      }
    }
    grams.push_back(std::move(gram));
  }
  return grams;
}

bool IsInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace pprl
