#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace pprl {

namespace {

/// Pool metrics aggregate over every ThreadPool in the process (pools are
/// short-lived in the comparison paths, long-lived in the daemon).
struct PoolMetrics {
  obs::Counter& tasks = obs::GlobalMetrics().GetCounter(
      "pprl_threadpool_tasks_total", "Tasks executed by thread pool workers");
  obs::Gauge& queue_depth = obs::GlobalMetrics().GetGauge(
      "pprl_threadpool_queue_depth", "Tasks submitted but not yet started");
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

/// Scheduler metrics aggregate over every WorkStealingScheduler in the
/// process (per-call schedulers in benches, one long-lived instance in the
/// daemon).
struct SchedulerMetrics {
  obs::Gauge& queue_depth = obs::GlobalMetrics().GetGauge(
      "pprl_shard_queue_depth", "Shards submitted but not yet started");
  obs::Counter& steals = obs::GlobalMetrics().GetCounter(
      "pprl_steals_total", "Successful steal operations between workers");
  obs::Histogram& shard_seconds = obs::GlobalMetrics().GetHistogram(
      "pprl_shard_seconds", "Per-shard execution time on the scheduler",
      obs::DefaultLatencyBuckets());
};

SchedulerMetrics& SchedMetrics() {
  static SchedulerMetrics* m = new SchedulerMetrics();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  Metrics().queue_depth.Add(1);
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown_ with no work left
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    Metrics().queue_depth.Sub(1);
    task();
    Metrics().tasks.Increment();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

WorkStealingScheduler::WorkStealingScheduler(Options options)
    : max_pending_(options.max_pending) {
  const size_t n = std::max<size_t>(1, options.num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->steal_fail_metric = &obs::GlobalMetrics().GetCounter(
        "pprl_steal_fail_total",
        "Steal sweeps that probed every victim and found nothing",
        {{"worker", std::to_string(i)}});
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingScheduler::~WorkStealingScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkStealingScheduler::Submit(std::function<void()> task) {
  SubmitTo(next_worker_.fetch_add(1, std::memory_order_relaxed), std::move(task));
}

void WorkStealingScheduler::SubmitTo(size_t worker, std::function<void()> task) {
  if (max_pending_ == 0) {
    // No backpressure: submission never touches the scheduler mutex.
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1);  // seq_cst: pairs with the sleeper handshake
  } else {
    // The uncontended case (window has room) also stays off the mutex;
    // only a full window parks the producer.
    // seq_cst Dekker handshake with WorkerLoop: the producer publishes
    // waiters_ then reads pending_; the worker publishes pending_ then
    // reads waiters_. The total order guarantees at least one side sees
    // the other — either the producer observes the freed slot, or the
    // worker observes the waiter and takes the mutex to notify.
    if (pending_.load() >= max_pending_) {
      std::unique_lock<std::mutex> lock(mutex_);
      waiters_.fetch_add(1);
      space_available_.wait(lock, [this] {
        return pending_.load() < max_pending_;
      });
      waiters_.fetch_sub(1);
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1);
  }
  Worker& w = *workers_[worker % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.m);
    w.deque.push_back(std::move(task));
    w.approx_size.store(w.deque.size(), std::memory_order_relaxed);
  }
  SchedMetrics().queue_depth.Add(1);
  // Wake a worker only when one is actually parked. The pending_ bump
  // above and the sleepers_ bump in WorkerLoop are both seq_cst, so either
  // this load sees the sleeper (and the mutexed notify below lands after
  // it committed to sleeping) or the sleeper's predicate sees pending_.
  if (sleepers_.load() > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    task_available_.notify_one();
  }
}

void WorkStealingScheduler::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock,
                 [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

void WorkStealingScheduler::FlushDone(size_t n) {
  if (n == 0) return;
  if (in_flight_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    // Last task of the batch was the last in flight: hand off to Wait()
    // under the mutex so the wakeup cannot be missed.
    std::lock_guard<std::mutex> lock(mutex_);
    all_done_.notify_all();
  }
}

bool WorkStealingScheduler::NextTask(size_t self, std::function<void()>& task) {
  Worker& own = *workers_[self];
  if (own.approx_size.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(own.m);
    if (!own.deque.empty()) {
      task = std::move(own.deque.front());
      own.deque.pop_front();
      own.approx_size.store(own.deque.size(), std::memory_order_relaxed);
      return true;
    }
  }
  // Own deque dry: steal the front half of the first non-empty victim,
  // keeping the first stolen shard and queueing the rest locally. Victims
  // are probed in ring order from self+1 so thieves spread out, and a
  // victim's mutex is only taken once its approx_size says there is
  // something to take — an idle sweep costs N relaxed loads, not N lock
  // acquisitions against the very workers still making progress.
  const size_t n = workers_.size();
  for (size_t off = 1; off < n; ++off) {
    Worker& victim = *workers_[(self + off) % n];
    if (victim.approx_size.load(std::memory_order_relaxed) == 0) continue;
    std::vector<std::function<void()>> loot;
    {
      std::lock_guard<std::mutex> lock(victim.m);
      const size_t have = victim.deque.size();
      if (have == 0) continue;
      const size_t take = (have + 1) / 2;
      loot.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        loot.push_back(std::move(victim.deque.front()));
        victim.deque.pop_front();
      }
      victim.approx_size.store(victim.deque.size(), std::memory_order_relaxed);
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    SchedMetrics().steals.Increment();
    task = std::move(loot.front());
    if (loot.size() > 1) {
      std::lock_guard<std::mutex> lock(own.m);
      for (size_t i = 1; i < loot.size(); ++i) own.deque.push_back(std::move(loot[i]));
      own.approx_size.store(own.deque.size(), std::memory_order_relaxed);
    }
    return true;
  }
  steal_fails_.fetch_add(1, std::memory_order_relaxed);
  own.steal_fail_metric->Increment();
  return false;
}

void WorkStealingScheduler::WorkerLoop(size_t self) {
  // Completion accounting is batched: kDoneBatch completions fold into
  // in_flight_ as one atomic op, and the remainder flushes whenever the
  // worker runs out of local work. Under a steady shard stream the global
  // counter (and the Wait() handoff it guards) is touched 1/kDoneBatch as
  // often as the per-shard scheme it replaced.
  constexpr size_t kDoneBatch = 32;
  Worker& own = *workers_[self];
  while (true) {
    std::function<void()> task;
    if (NextTask(self, task)) {
      pending_.fetch_sub(1);  // seq_cst: pairs with the waiter handshake
      SchedMetrics().queue_depth.Sub(1);
      if (max_pending_ != 0 && waiters_.load() > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        space_available_.notify_one();
      }
      Timer timer;
      task();
      task = nullptr;  // run destructors before accounting the completion
      SchedMetrics().shard_seconds.Observe(timer.ElapsedSeconds());
      if (++own.unflushed_done >= kDoneBatch) {
        FlushDone(own.unflushed_done);
        own.unflushed_done = 0;
      }
      continue;
    }
    // Out of local and stealable work: flush the completion batch before
    // parking, or Wait() could block on tasks that already finished.
    FlushDone(own.unflushed_done);
    own.unflushed_done = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    sleepers_.fetch_add(1);  // seq_cst: pairs with Submit's sleeper check
    task_available_.wait(lock, [this] {
      return shutdown_ || pending_.load() > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    // Drain-on-shutdown: exit only once no shard is waiting anywhere.
    if (shutdown_ && pending_.load(std::memory_order_relaxed) == 0) return;
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  scheduler_.Submit([this, task = std::move(task)] {
    task();
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t num_chunks = std::min(n, pool.num_threads() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = begin; c < end; c += chunk) {
    const size_t chunk_end = std::min(end, c + chunk);
    pool.Submit([c, chunk_end, &body] {
      for (size_t i = c; i < chunk_end; ++i) body(i);
    });
  }
  pool.Wait();
}

}  // namespace pprl
