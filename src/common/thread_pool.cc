#include "common/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace pprl {

namespace {

/// Pool metrics aggregate over every ThreadPool in the process (pools are
/// short-lived in the comparison paths, long-lived in the daemon).
struct PoolMetrics {
  obs::Counter& tasks = obs::GlobalMetrics().GetCounter(
      "pprl_threadpool_tasks_total", "Tasks executed by thread pool workers");
  obs::Gauge& queue_depth = obs::GlobalMetrics().GetGauge(
      "pprl_threadpool_queue_depth", "Tasks submitted but not yet started");
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  Metrics().queue_depth.Add(1);
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown_ with no work left
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    Metrics().queue_depth.Sub(1);
    task();
    Metrics().tasks.Increment();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t num_chunks = std::min(n, pool.num_threads() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = begin; c < end; c += chunk) {
    const size_t chunk_end = std::min(end, c + chunk);
    pool.Submit([c, chunk_end, &body] {
      for (size_t i = c; i < chunk_end; ++i) body(i);
    });
  }
  pool.Wait();
}

}  // namespace pprl
