#include "common/bitvector.h"

#include <bit>
#include <cassert>

namespace pprl {

namespace {
constexpr size_t kWordBits = 64;

size_t NumWords(size_t num_bits) { return (num_bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), words_(NumWords(num_bits), 0), cached_count_(0) {}

BitVector::BitVector(const BitVector& other)
    : num_bits_(other.num_bits_),
      words_(other.words_),
      cached_count_(other.cached_count_.load(std::memory_order_relaxed)) {}

BitVector::BitVector(BitVector&& other) noexcept
    : num_bits_(other.num_bits_),
      words_(std::move(other.words_)),
      cached_count_(other.cached_count_.load(std::memory_order_relaxed)) {
  other.num_bits_ = 0;
  other.words_.clear();
  other.cached_count_.store(0, std::memory_order_relaxed);
}

BitVector& BitVector::operator=(const BitVector& other) {
  if (this != &other) {
    num_bits_ = other.num_bits_;
    words_ = other.words_;
    cached_count_.store(other.cached_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  return *this;
}

BitVector& BitVector::operator=(BitVector&& other) noexcept {
  if (this != &other) {
    num_bits_ = other.num_bits_;
    words_ = std::move(other.words_);
    cached_count_.store(other.cached_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    other.num_bits_ = 0;
    other.words_.clear();
    other.cached_count_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

void BitVector::Set(size_t pos, bool value) {
  assert(pos < num_bits_);
  const uint64_t mask = uint64_t{1} << (pos % kWordBits);
  if (value) {
    words_[pos / kWordBits] |= mask;
  } else {
    words_[pos / kWordBits] &= ~mask;
  }
  InvalidateCount();
}

void BitVector::Flip(size_t pos) {
  assert(pos < num_bits_);
  words_[pos / kWordBits] ^= uint64_t{1} << (pos % kWordBits);
  InvalidateCount();
}

bool BitVector::Get(size_t pos) const {
  assert(pos < num_bits_);
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
}

void BitVector::Clear() {
  words_.assign(words_.size(), 0);
  cached_count_.store(0, std::memory_order_relaxed);
}

size_t BitVector::Count() const {
  const size_t cached = cached_count_.load(std::memory_order_relaxed);
  if (cached != kNoCount) return cached;
  size_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  cached_count_.store(count, std::memory_order_relaxed);
  return count;
}

size_t BitVector::AndCount(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  size_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] & other.words_[i]);
  }
  return count;
}

size_t BitVector::OrCount(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  size_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] | other.words_[i]);
  }
  return count;
}

size_t BitVector::XorCount(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  size_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] ^ other.words_[i]);
  }
  return count;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  InvalidateCount();
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  InvalidateCount();
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  InvalidateCount();
  return *this;
}

void BitVector::Concat(const BitVector& other) {
  BitVector result(num_bits_ + other.num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) result.Set(i);
  }
  for (size_t i = 0; i < other.num_bits_; ++i) {
    if (other.Get(i)) result.Set(num_bits_ + i);
  }
  *this = std::move(result);
}

std::vector<uint32_t> BitVector::SetPositions() const {
  std::vector<uint32_t> positions;
  positions.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      positions.push_back(static_cast<uint32_t>(w * kWordBits + bit));
      word &= word - 1;
    }
  }
  return positions;
}

std::string BitVector::ToString() const {
  std::string out(num_bits_, '0');
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) out[i] = '1';
  }
  return out;
}

BitVector BitVector::FromString(const std::string& bits) {
  BitVector out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      out.Set(i);
    } else if (bits[i] != '0') {
      return BitVector();
    }
  }
  return out;
}

}  // namespace pprl
