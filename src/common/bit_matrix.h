#ifndef PPRL_COMMON_BIT_MATRIX_H_
#define PPRL_COMMON_BIT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvector.h"

namespace pprl {

/// A set of equal-length bit vectors stored as one contiguous row-major
/// matrix of 64-bit words.
///
/// This is the batch-comparison counterpart of `BitVector`: where a
/// `std::vector<BitVector>` scatters every filter across the heap (one
/// allocation per record, pointer-chase per comparison), a `BitMatrix`
/// packs them back to back with a fixed row stride so the comparison
/// kernels in linkage/compare_kernels.h stream through candidate pairs at
/// memory bandwidth. Rows start on 64-byte boundaries (one cache line,
/// also the widest vector register) and per-row popcounts are taken once
/// at construction, which is what makes the Dice/Jaccard cardinality
/// bounds in the kernels free to evaluate.
///
/// Conversion from and back to `std::vector<BitVector>` is lossless, so
/// encoders, hardening, and the wire paths keep their per-record type.
class BitMatrix {
 public:
  /// An empty matrix (0 rows, 0 bits).
  BitMatrix() = default;

  /// An all-zero matrix of `num_rows` rows of `num_bits` bits each.
  BitMatrix(size_t num_rows, size_t num_bits);

  BitMatrix(const BitMatrix& other);
  BitMatrix& operator=(const BitMatrix& other);
  BitMatrix(BitMatrix&&) noexcept = default;
  BitMatrix& operator=(BitMatrix&&) noexcept = default;

  /// Packs `rows` (all of equal length) into a matrix. Row i of the result
  /// holds exactly the bits of rows[i].
  static BitMatrix FromVectors(const std::vector<BitVector>& rows);

  /// Unpacks back into individually allocated vectors; inverse of
  /// FromVectors().
  std::vector<BitVector> ToVectors() const;

  size_t num_rows() const { return num_rows_; }

  /// Bits per row (the filter length).
  size_t num_bits() const { return num_bits_; }

  /// Words actually carrying bits in each row: ceil(num_bits / 64).
  size_t words_per_row() const { return words_per_row_; }

  /// Row stride in words — words_per_row() rounded up to a 64-byte
  /// multiple; the padding words are always zero.
  size_t stride_words() const { return stride_words_; }

  /// Pointer to row `i`'s words; 64-byte aligned. Bits past num_bits() in
  /// the last carrying word (and all padding words) are zero.
  const uint64_t* row(size_t i) const { return data_.get() + i * stride_words_; }
  uint64_t* mutable_row(size_t i) { return data_.get() + i * stride_words_; }

  /// Popcount of row `i`, precomputed at construction. Callers that write
  /// through mutable_row() must call RecomputeCounts() afterwards.
  size_t row_count(size_t i) const { return counts_[i]; }

  /// All per-row popcounts, row order.
  const std::vector<size_t>& row_counts() const { return counts_; }

  /// Re-derives every per-row popcount from the current words.
  void RecomputeCounts();

  /// Re-derives the popcount of row `i` only; for callers that wrote a
  /// single row through mutable_row() and want to keep appends O(row).
  void RecountRow(size_t i);

  /// Ensures capacity for at least `rows` rows without changing num_rows().
  /// Grows by copy; existing row pointers are invalidated.
  void ReserveRows(size_t rows);

  /// Rows the current allocation can hold without growing.
  size_t row_capacity() const {
    return stride_words_ == 0 ? 0 : capacity_words_ / stride_words_;
  }

  /// Appends one all-zero row (amortized O(row) via geometric growth) and
  /// returns its index. Callers fill it through mutable_row() and then
  /// call RecountRow().
  size_t AppendRow();

  /// Appends a row holding `row`'s bits; `row.size()` must equal
  /// num_bits(). Returns the new row's index. The popcount is taken from
  /// the vector's cached count, so the append is O(words_per_row()).
  size_t AppendRow(const BitVector& row);

  /// Makes this matrix a copy of rows [row_begin, row_end) of `src` —
  /// same num_bits, row i holds src row row_begin + i, counts copied, not
  /// recomputed. Reuses the existing allocation when it is large enough
  /// and the stride matches, so a worker can refill one scratch tile per
  /// b-range without churning the allocator. Rows are contiguous at a
  /// fixed stride, so the refill is a single memcpy.
  void AssignRowSlice(const BitMatrix& src, size_t row_begin, size_t row_end);

 private:
  struct AlignedFree {
    void operator()(uint64_t* p) const;
  };
  using AlignedWords = std::unique_ptr<uint64_t[], AlignedFree>;

  static AlignedWords Allocate(size_t total_words);

  size_t num_rows_ = 0;
  size_t num_bits_ = 0;
  size_t words_per_row_ = 0;
  size_t stride_words_ = 0;
  AlignedWords data_;
  /// Words actually allocated behind data_ — can exceed
  /// num_rows_ * stride_words_ after AssignRowSlice() shrank the view.
  size_t capacity_words_ = 0;
  std::vector<size_t> counts_;
};

}  // namespace pprl

#endif  // PPRL_COMMON_BIT_MATRIX_H_
