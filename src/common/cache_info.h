#ifndef PPRL_COMMON_CACHE_INFO_H_
#define PPRL_COMMON_CACHE_INFO_H_

#include <cstddef>

namespace pprl {

/// The cache sizes the cache-blocked comparison path tiles against.
///
/// Detected once per process from sysfs (Linux) and falling back to
/// conservative defaults anywhere the topology is unreadable (containers
/// often hide it). The values bound working sets, so underestimating
/// merely shrinks tiles; overestimating is what thrashes — hence the
/// fallbacks sit at the small end of current server parts.
struct CacheInfo {
  size_t l1d_bytes = 32u << 10;
  size_t l2_bytes = 512u << 10;
  /// Last-level cache for the whole package. On multi-socket / multi-CCX
  /// parts this is one slice's reach, not the sum.
  size_t llc_bytes = 16u << 20;
};

/// Cached process-wide detection result.
const CacheInfo& DetectCacheInfo();

}  // namespace pprl

#endif  // PPRL_COMMON_CACHE_INFO_H_
