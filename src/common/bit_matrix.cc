#include "common/bit_matrix.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

namespace pprl {

namespace {

constexpr size_t kWordBits = 64;
constexpr size_t kAlignBytes = 64;
constexpr size_t kAlignWords = kAlignBytes / sizeof(uint64_t);

size_t CarryingWords(size_t num_bits) {
  return (num_bits + kWordBits - 1) / kWordBits;
}

size_t StrideWords(size_t num_bits) {
  const size_t words = CarryingWords(num_bits);
  return (words + kAlignWords - 1) / kAlignWords * kAlignWords;
}

}  // namespace

void BitMatrix::AlignedFree::operator()(uint64_t* p) const {
  ::operator delete[](p, std::align_val_t{kAlignBytes});
}

BitMatrix::AlignedWords BitMatrix::Allocate(size_t total_words) {
  if (total_words == 0) return nullptr;
  auto* p = static_cast<uint64_t*>(
      ::operator new[](total_words * sizeof(uint64_t), std::align_val_t{kAlignBytes}));
  std::memset(p, 0, total_words * sizeof(uint64_t));
  return AlignedWords(p);
}

BitMatrix::BitMatrix(size_t num_rows, size_t num_bits)
    : num_rows_(num_rows),
      num_bits_(num_bits),
      words_per_row_(CarryingWords(num_bits)),
      stride_words_(StrideWords(num_bits)),
      data_(Allocate(num_rows * StrideWords(num_bits))),
      capacity_words_(num_rows * StrideWords(num_bits)),
      counts_(num_rows, 0) {}

BitMatrix::BitMatrix(const BitMatrix& other)
    : num_rows_(other.num_rows_),
      num_bits_(other.num_bits_),
      words_per_row_(other.words_per_row_),
      stride_words_(other.stride_words_),
      data_(Allocate(other.num_rows_ * other.stride_words_)),
      capacity_words_(other.num_rows_ * other.stride_words_),
      counts_(other.counts_) {
  if (data_ != nullptr) {
    std::memcpy(data_.get(), other.data_.get(),
                num_rows_ * stride_words_ * sizeof(uint64_t));
  }
}

BitMatrix& BitMatrix::operator=(const BitMatrix& other) {
  if (this != &other) *this = BitMatrix(other);
  return *this;
}

BitMatrix BitMatrix::FromVectors(const std::vector<BitVector>& rows) {
  const size_t num_bits = rows.empty() ? 0 : rows[0].size();
  BitMatrix out(rows.size(), num_bits);
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i].size() == num_bits);
    const std::vector<uint64_t>& words = rows[i].words();
    std::copy(words.begin(), words.end(), out.mutable_row(i));
    out.counts_[i] = rows[i].Count();
  }
  return out;
}

std::vector<BitVector> BitMatrix::ToVectors() const {
  std::vector<BitVector> out;
  out.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    BitVector v(num_bits_);
    const uint64_t* src = row(i);
    for (size_t w = 0; w < words_per_row_; ++w) {
      uint64_t word = src[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        v.Set(w * kWordBits + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

void BitMatrix::AssignRowSlice(const BitMatrix& src, size_t row_begin,
                               size_t row_end) {
  assert(row_begin <= row_end && row_end <= src.num_rows_);
  const size_t rows = row_end - row_begin;
  const size_t needed = rows * src.stride_words_;
  if (capacity_words_ < needed) {
    data_ = Allocate(needed);
    capacity_words_ = needed;
  }
  num_rows_ = rows;
  num_bits_ = src.num_bits_;
  words_per_row_ = src.words_per_row_;
  stride_words_ = src.stride_words_;
  if (rows > 0) {
    std::memcpy(data_.get(), src.row(row_begin),
                rows * stride_words_ * sizeof(uint64_t));
  }
  counts_.assign(src.counts_.begin() + static_cast<ptrdiff_t>(row_begin),
                 src.counts_.begin() + static_cast<ptrdiff_t>(row_end));
}

void BitMatrix::RecountRow(size_t i) {
  assert(i < num_rows_);
  const uint64_t* r = row(i);
  size_t count = 0;
  for (size_t w = 0; w < words_per_row_; ++w) count += std::popcount(r[w]);
  counts_[i] = count;
}

void BitMatrix::ReserveRows(size_t rows) {
  assert(stride_words_ > 0 || rows == 0);
  const size_t needed = rows * stride_words_;
  if (needed <= capacity_words_) return;
  AlignedWords grown = Allocate(needed);
  if (num_rows_ > 0) {
    std::memcpy(grown.get(), data_.get(),
                num_rows_ * stride_words_ * sizeof(uint64_t));
  }
  data_ = std::move(grown);
  capacity_words_ = needed;
  counts_.reserve(rows);
}

size_t BitMatrix::AppendRow() {
  assert(stride_words_ > 0 && "append needs a fixed row width; construct with BitMatrix(0, bits)");
  if ((num_rows_ + 1) * stride_words_ > capacity_words_) {
    ReserveRows(std::max<size_t>(num_rows_ * 2, 1024));
  }
  const size_t i = num_rows_++;
  std::memset(mutable_row(i), 0, stride_words_ * sizeof(uint64_t));
  counts_.push_back(0);
  return i;
}

size_t BitMatrix::AppendRow(const BitVector& row) {
  assert(row.size() == num_bits_);
  const size_t i = AppendRow();
  const std::vector<uint64_t>& words = row.words();
  std::memcpy(mutable_row(i), words.data(), words.size() * sizeof(uint64_t));
  counts_[i] = row.Count();
  return i;
}

void BitMatrix::RecomputeCounts() {
  for (size_t i = 0; i < num_rows_; ++i) {
    const uint64_t* r = row(i);
    size_t count = 0;
    for (size_t w = 0; w < words_per_row_; ++w) count += std::popcount(r[w]);
    counts_[i] = count;
  }
}

}  // namespace pprl
