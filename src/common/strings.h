#ifndef PPRL_COMMON_STRINGS_H_
#define PPRL_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pprl {

/// Returns `s` lower-cased (ASCII only; QID normalisation in the survey's
/// pre-processing step operates on ASCII person data).
std::string ToLower(std::string_view s);

/// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Splits on `delim`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Removes every character that is not an ASCII letter or digit.
std::string StripNonAlnum(std::string_view s);

/// Canonical QID normalisation used before encoding: lower-case, trim, and
/// collapse internal runs of whitespace to a single space.
std::string NormalizeQid(std::string_view s);

/// Options for q-gram extraction.
struct QGramOptions {
  /// Sub-string length (q). The survey's Bloom-filter examples use q = 2.
  size_t q = 2;
  /// If true, pad with q-1 leading/trailing '_' so boundary characters
  /// appear in q q-grams, as in Schnell-style CLK encodings.
  bool pad = true;
  /// If true, append a positional index to repeated q-grams so the output is
  /// a set even when the string has duplicate q-grams ("aa" in "aaaa").
  bool positional_dedup = true;
};

/// Extracts the q-gram token set of `s` (Figure 2, left).
///
/// With `positional_dedup`, the i-th occurrence of a repeated gram `g` is
/// emitted as `g` + '#' + i for i >= 1, preserving multiplicity information
/// in a set representation.
std::vector<std::string> QGrams(std::string_view s, const QGramOptions& options = {});

/// True if `s` consists only of ASCII digits (possibly with one leading '-').
bool IsInteger(std::string_view s);

}  // namespace pprl

#endif  // PPRL_COMMON_STRINGS_H_
