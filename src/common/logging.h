#ifndef PPRL_COMMON_LOGGING_H_
#define PPRL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pprl {

/// Severity levels for library diagnostics.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Current minimum severity.
LogLevel GetLogLevel();

/// Emits `message` to stderr when `level` passes the threshold.
/// Thread-safe; one line per call.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style helper behind the PPRL_LOG macro.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pprl

/// Usage: PPRL_LOG(kInfo) << "compared " << n << " pairs";
#define PPRL_LOG(severity) ::pprl::internal::LogStream(::pprl::LogLevel::severity)

#endif  // PPRL_COMMON_LOGGING_H_
