#ifndef PPRL_COMMON_STATS_H_
#define PPRL_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace pprl {

/// Streaming descriptive statistics (Welford's algorithm).
///
/// Used by the benchmark harnesses to report mean/stddev over repeated runs
/// and by the tuner to summarise objective evaluations.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& xs);

/// The p-th percentile (0 <= p <= 100) by linear interpolation on the sorted
/// copy of `xs`; 0 for an empty input.
double Percentile(std::vector<double> xs, double p);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Shannon entropy (bits) of a discrete distribution given by counts.
double EntropyBits(const std::vector<size_t>& counts);

}  // namespace pprl

#endif  // PPRL_COMMON_STATS_H_
