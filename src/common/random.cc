#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pprl {

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  std::uniform_int_distribution<uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

uint64_t Rng::NextUint64() { return engine_(); }

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::NextGaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::NextLaplace(double scale) {
  // Inverse-CDF sampling: u uniform in (-1/2, 1/2),
  // x = -scale * sgn(u) * ln(1 - 2|u|).
  double u = NextDouble() - 0.5;
  // Guard against u == -0.5 exactly, which would take log(0).
  if (u <= -0.5) u = -0.499999999999;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfDistribution::ZipfDistribution(size_t n, double skew) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace pprl
