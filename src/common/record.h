#ifndef PPRL_COMMON_RECORD_H_
#define PPRL_COMMON_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pprl {

/// QID data types distinguished by the survey's linkage-schema dimension
/// (§3.1): strings, numeric values, categorical codes, and dates each get
/// their own encoding and similarity treatment.
enum class FieldType {
  kString,
  kNumeric,
  kCategorical,
  kDate,  ///< ISO "YYYY-MM-DD"
};

/// Description of one QID column.
struct FieldSpec {
  std::string name;
  FieldType type = FieldType::kString;
};

/// The column-name → field-type convention shared by every CSV importer
/// (datagen/io and the streaming ingest path): well-known person-data
/// column names get their survey type, everything else is a string QID.
inline FieldType GuessFieldTypeFromName(const std::string& column_name) {
  std::string name = column_name;
  for (char& c : name) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (name == "dob" || name == "date_of_birth" || name == "birth_date") {
    return FieldType::kDate;
  }
  if (name == "sex" || name == "gender" || name == "state") {
    return FieldType::kCategorical;
  }
  if (name == "age" || name == "income" || name == "weight" || name == "height") {
    return FieldType::kNumeric;
  }
  return FieldType::kString;
}

/// The common schema agreed between database owners before linkage.
struct Schema {
  std::vector<FieldSpec> fields;

  /// Index of the field called `name`, or -1 when absent.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  size_t size() const { return fields.size(); }
};

/// One person record as held by a database owner.
///
/// `entity_id` is the ground-truth identity used only by the evaluation
/// module; a real deployment would not have it, and no protocol code reads
/// it.
struct Record {
  uint64_t id = 0;          ///< unique within one database
  uint64_t entity_id = 0;   ///< ground-truth entity (evaluation only)
  std::vector<std::string> values;  ///< one value per schema field
};

/// A database owner's table: schema plus records.
struct Database {
  Schema schema;
  std::vector<Record> records;

  size_t size() const { return records.size(); }
};

}  // namespace pprl

#endif  // PPRL_COMMON_RECORD_H_
