#ifndef PPRL_COMMON_RANDOM_H_
#define PPRL_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pprl {

/// Deterministic pseudo-random source used across the library.
///
/// Every randomised component (data generator, LSH seeds, BLIP noise, ...)
/// takes an explicit `Rng` so experiments are reproducible from a single seed,
/// matching the survey's call for reproducible evaluation frameworks [41].
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer over the full 64-bit range.
  uint64_t NextUint64();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Gaussian sample with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Laplace(0, scale) sample — the noise distribution of the differential-
  /// privacy mechanisms in `pprl::privacy`.
  double NextLaplace(double scale);

  /// Bernoulli trial that succeeds with probability `p`.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[NextUint64(i)]);
    }
  }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed sampler over ranks {0, ..., n-1}.
///
/// Person-name frequencies are strongly skewed; the data generator uses this
/// to reproduce the frequency structure that frequency attacks on Bloom
/// filters exploit (survey §3.2).
class ZipfDistribution {
 public:
  /// `n` must be > 0; `skew` is the Zipf exponent (1.0 is classic Zipf).
  ZipfDistribution(size_t n, double skew);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability mass of rank `k`.
  double Pmf(size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace pprl

#endif  // PPRL_COMMON_RANDOM_H_
