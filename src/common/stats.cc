#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace pprl {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double sq = 0;
  for (double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1 - frac) + xs[lo + 1] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double EntropyBits(const std::vector<size_t>& counts) {
  size_t total = 0;
  for (size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0;
  for (size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace pprl
