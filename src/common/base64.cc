#include "common/base64.h"

namespace pprl {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int DecodeChar(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string Base64Encode(const std::vector<uint8_t>& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    const uint32_t triple = (static_cast<uint32_t>(data[i]) << 16) |
                            (static_cast<uint32_t>(data[i + 1]) << 8) | data[i + 2];
    out += kAlphabet[(triple >> 18) & 0x3f];
    out += kAlphabet[(triple >> 12) & 0x3f];
    out += kAlphabet[(triple >> 6) & 0x3f];
    out += kAlphabet[triple & 0x3f];
    i += 3;
  }
  const size_t rest = data.size() - i;
  if (rest == 1) {
    const uint32_t triple = static_cast<uint32_t>(data[i]) << 16;
    out += kAlphabet[(triple >> 18) & 0x3f];
    out += kAlphabet[(triple >> 12) & 0x3f];
    out += "==";
  } else if (rest == 2) {
    const uint32_t triple = (static_cast<uint32_t>(data[i]) << 16) |
                            (static_cast<uint32_t>(data[i + 1]) << 8);
    out += kAlphabet[(triple >> 18) & 0x3f];
    out += kAlphabet[(triple >> 12) & 0x3f];
    out += kAlphabet[(triple >> 6) & 0x3f];
    out += '=';
  }
  return out;
}

Result<std::vector<uint8_t>> Base64Decode(const std::string& text) {
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length must be a multiple of 4");
  }
  std::vector<uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int values[4] = {0, 0, 0, 0};
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + static_cast<size_t>(j)];
      if (c == '=') {
        // Padding only allowed in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) {
          return Status::InvalidArgument("unexpected base64 padding");
        }
        ++pad;
        continue;
      }
      if (pad > 0) return Status::InvalidArgument("data after base64 padding");
      const int v = DecodeChar(c);
      if (v < 0) {
        return Status::InvalidArgument(std::string("invalid base64 character '") + c +
                                       "'");
      }
      values[j] = v;
    }
    const uint32_t triple = (static_cast<uint32_t>(values[0]) << 18) |
                            (static_cast<uint32_t>(values[1]) << 12) |
                            (static_cast<uint32_t>(values[2]) << 6) |
                            static_cast<uint32_t>(values[3]);
    out.push_back(static_cast<uint8_t>((triple >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<uint8_t>((triple >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<uint8_t>(triple & 0xff));
  }
  return out;
}

}  // namespace pprl
