#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pprl {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << "[pprl " << LevelName(level) << "] " << message << "\n";
}

}  // namespace pprl
