#include "common/cache_info.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace pprl {

namespace {

/// Parses a sysfs cache size string ("48K", "2048K", "260M") to bytes;
/// 0 when unparsable.
size_t ParseCacheSize(const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || value == 0) return 0;
  switch (*end) {
    case 'K':
      return static_cast<size_t>(value) << 10;
    case 'M':
      return static_cast<size_t>(value) << 20;
    case 'G':
      return static_cast<size_t>(value) << 30;
    default:
      return static_cast<size_t>(value);
  }
}

/// One short sysfs attribute read ("48K\n", "Data\n", "2\n").
bool ReadAttr(const std::string& path, char* buf, size_t len) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  const size_t n = std::fread(buf, 1, len - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  return true;
}

CacheInfo DetectOnce() {
  CacheInfo info;
  // cpu0's cache hierarchy stands in for every worker's: tiles sized for
  // the smallest core are merely conservative on asymmetric parts.
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int index = 0; index < 8; ++index) {
    const std::string dir = base + std::to_string(index) + "/";
    char level[16], type[32], size[32];
    if (!ReadAttr(dir + "level", level, sizeof(level)) ||
        !ReadAttr(dir + "type", type, sizeof(type)) ||
        !ReadAttr(dir + "size", size, sizeof(size))) {
      continue;
    }
    const size_t bytes = ParseCacheSize(size);
    if (bytes == 0) continue;
    const bool data = std::strncmp(type, "Data", 4) == 0 ||
                      std::strncmp(type, "Unified", 7) == 0;
    if (!data) continue;
    switch (std::atoi(level)) {
      case 1:
        info.l1d_bytes = bytes;
        break;
      case 2:
        info.l2_bytes = bytes;
        break;
      default:
        // Deepest unified level wins (L3, or L4 where present).
        info.llc_bytes = bytes;
        break;
    }
  }
  // Some single-level topologies report no L3; treat L2 as the LLC then,
  // never smaller than the default floor's L2.
  if (info.llc_bytes < info.l2_bytes) info.llc_bytes = info.l2_bytes;
  return info;
}

}  // namespace

const CacheInfo& DetectCacheInfo() {
  static const CacheInfo info = DetectOnce();
  return info;
}

}  // namespace pprl
