#ifndef PPRL_COMMON_THREAD_POOL_H_
#define PPRL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pprl {

namespace obs {
class Counter;
}  // namespace obs

/// A fixed-size worker pool for the parallel/distributed complexity-reduction
/// branch of the taxonomy (survey §3.4 "Parallel/distributed processing").
///
/// Blocks can be compared on different workers; `ParallelFor` partitions an
/// index range across the pool and joins before returning.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs `body(i)` for every i in [begin, end), distributing contiguous chunks
/// over `pool`. Blocks until all iterations complete.
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

/// The sharded execution layer of the parallel linkage path (survey §3.4,
/// "Parallel/distributed processing").
///
/// Differences from `ThreadPool` that matter for streaming linkage runs:
///
///   * **Per-worker deques.** Each worker owns a deque; `Submit` deals
///     shards round-robin (or to an explicit worker via `SubmitTo`), so
///     there is no single hot queue mutex between N workers.
///   * **Work stealing.** A worker whose deque runs dry steals the front
///     half of the fullest victim's deque before sleeping, which keeps
///     skewed shard streams (one giant block, many tiny ones) balanced.
///   * **Bounded memory.** `max_pending` caps shards submitted but not yet
///     started; `Submit` blocks the producer once the cap is reached. A
///     blocking stage can therefore stream millions of candidate pairs
///     through a fixed-size window instead of materializing them all.
///
/// Shutdown drains: the destructor (and `Wait`) runs every submitted shard
/// before joining, so in-flight work is never dropped.
///
/// Observability: `pprl_shard_queue_depth` (submitted, not started),
/// `pprl_steals_total` (successful steal operations) and
/// `pprl_shard_seconds` (per-shard execution time) in the global registry.
class WorkStealingScheduler {
 public:
  struct Options {
    size_t num_threads = 1;
    /// Max shards submitted but not yet started before Submit() blocks;
    /// 0 means unbounded.
    size_t max_pending = 0;
  };

  explicit WorkStealingScheduler(Options options);
  /// Convenience: `num_threads` workers, unbounded queue.
  explicit WorkStealingScheduler(size_t num_threads)
      : WorkStealingScheduler(Options{num_threads, 0}) {}

  /// Drains every submitted shard and joins all workers.
  ~WorkStealingScheduler();

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  /// Enqueues `task` on the next worker (round-robin). Blocks while
  /// `max_pending` shards are already waiting.
  void Submit(std::function<void()> task);

  /// Enqueues `task` on worker `worker % num_threads()` — for callers that
  /// want shard affinity; stealing still rebalances.
  void SubmitTo(size_t worker, std::function<void()> task);

  /// Blocks until every submitted shard has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Successful steal operations since construction (each may move several
  /// shards). Also exported as pprl_steals_total.
  uint64_t steal_count() const { return steals_.load(std::memory_order_relaxed); }

  /// Shards submitted but not yet started (for tests; racy by nature).
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

  /// Failed steal sweeps (a worker probed every victim and found nothing)
  /// across all workers. Also exported per worker as pprl_steal_fail_total.
  uint64_t steal_fail_count() const {
    return steal_fails_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker's deque plus the small mutex guarding it (locked only for
  /// push/pop/steal pointer shuffling, never while a shard runs). Padded
  /// to two cache lines so deque bookkeeping of neighbouring workers never
  /// false-shares — 64 bytes is not enough once the adjacent-line
  /// prefetcher pairs lines, and the mutex + deque + counter already
  /// straddle the first line.
  struct alignas(128) Worker {
    std::mutex m;
    std::deque<std::function<void()>> deque;
    /// deque.size(), maintained under `m` but readable without it: steal
    /// sweeps probe this and skip empty victims without ever touching
    /// their mutex, which is what kept 8 thieves off 8 mutexes.
    std::atomic<size_t> approx_size{0};
    /// Completions not yet folded into the scheduler's in_flight_
    /// (batched accounting; owning worker thread only).
    size_t unflushed_done = 0;
    /// This worker's pprl_steal_fail_total{worker=i} series.
    obs::Counter* steal_fail_metric = nullptr;
  };

  void WorkerLoop(size_t self);
  /// Pops locally (front) or steals half of the first non-empty victim's
  /// deque (probed via approx_size, locked only on a hit).
  bool NextTask(size_t self, std::function<void()>& task);
  /// Folds `n` completions into in_flight_ and wakes Wait()ers on zero.
  void FlushDone(size_t n);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable task_available_;  // workers sleep here
  std::condition_variable all_done_;        // Wait() sleeps here
  std::condition_variable space_available_; // Submit() backpressure
  bool shutdown_ = false;                   // guarded by mutex_

  size_t max_pending_ = 0;
  std::atomic<size_t> in_flight_{0};  // submitted, not finished
  std::atomic<size_t> pending_{0};    // submitted, not started
  std::atomic<size_t> sleepers_{0};   // workers parked on task_available_
  std::atomic<size_t> waiters_{0};    // producers parked on space_available_
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> steal_fails_{0};
  std::atomic<size_t> next_worker_{0};
};

/// Completion tracking for one batch of shards on a *shared* scheduler.
/// `WorkStealingScheduler::Wait()` waits for everything in flight, which is
/// wrong when several sessions (daemon) share one scheduler; a TaskGroup
/// waits only for the shards submitted through it. Destroying a group
/// before Wait() returns is a programming error.
class TaskGroup {
 public:
  explicit TaskGroup(WorkStealingScheduler& scheduler) : scheduler_(scheduler) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `task` to the underlying scheduler (inherits its round-robin
  /// placement and backpressure) and counts it toward this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished.
  void Wait();

 private:
  WorkStealingScheduler& scheduler_;
  std::mutex mutex_;
  std::condition_variable done_;
  /// Atomic so completions stay off the mutex except for the last one,
  /// which takes it to hand off to Wait().
  std::atomic<size_t> outstanding_{0};
};

}  // namespace pprl

#endif  // PPRL_COMMON_THREAD_POOL_H_
