#ifndef PPRL_COMMON_THREAD_POOL_H_
#define PPRL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pprl {

/// A fixed-size worker pool for the parallel/distributed complexity-reduction
/// branch of the taxonomy (survey §3.4 "Parallel/distributed processing").
///
/// Blocks can be compared on different workers; `ParallelFor` partitions an
/// index range across the pool and joins before returning.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs `body(i)` for every i in [begin, end), distributing contiguous chunks
/// over `pool`. Blocks until all iterations complete.
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace pprl

#endif  // PPRL_COMMON_THREAD_POOL_H_
