#ifndef PPRL_COMMON_STATUS_H_
#define PPRL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace pprl {

/// Error category for a failed operation.
///
/// The library does not throw exceptions (see DESIGN.md); fallible operations
/// return a `Status` or a `Result<T>` instead, in the style of Arrow/RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kProtocolViolation,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value.
///
/// An OK status carries no message and is cheap to copy. Construct errors via
/// the named factories: `Status::InvalidArgument("l must be > 0")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ProtocolViolation(std::string msg) {
    return Status(StatusCode::kProtocolViolation, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type `T` or an error `Status`.
///
/// Access the value only after checking `ok()`; `value()` on an error result
/// aborts, which is a programming error, not a recoverable condition.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors absl::StatusOr ergonomics.
  Result(T value) : rep_(std::move(value)) {}
  /// Implicit construction from an error status. `s` must not be OK.
  Result(Status s) : rep_(std::move(s)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status. OK when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates an error status out of the enclosing function.
#define PPRL_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::pprl::Status _pprl_status = (expr);           \
    if (!_pprl_status.ok()) return _pprl_status;    \
  } while (false)

}  // namespace pprl

#endif  // PPRL_COMMON_STATUS_H_
