#ifndef PPRL_COMMON_BITVECTOR_H_
#define PPRL_COMMON_BITVECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pprl {

/// A fixed-length bit vector backed by 64-bit words.
///
/// This is the storage type for Bloom-filter encodings (Figure 2 of the
/// survey). It provides the word-parallel population-count operations that
/// Dice/Jaccard/Hamming similarity computations (and their PPJoin-style
/// filters) are built on.
class BitVector {
 public:
  /// Creates an all-zero vector of `num_bits` bits.
  explicit BitVector(size_t num_bits = 0);

  // The count cache is atomic (see below), so copies and moves are spelled
  // out; they transfer the cached value.
  BitVector(const BitVector& other);
  BitVector(BitVector&& other) noexcept;
  BitVector& operator=(const BitVector& other);
  BitVector& operator=(BitVector&& other) noexcept;

  /// Number of addressable bits.
  size_t size() const { return num_bits_; }

  /// Whether the vector has zero bits.
  bool empty() const { return num_bits_ == 0; }

  /// Sets bit `pos` to `value`. `pos` must be < size().
  void Set(size_t pos, bool value = true);

  /// Flips bit `pos`. `pos` must be < size().
  void Flip(size_t pos);

  /// Returns bit `pos`. `pos` must be < size().
  bool Get(size_t pos) const;

  /// Sets all bits to zero without changing the length.
  void Clear();

  /// Number of set bits (the Hamming weight); cached after first call until
  /// the vector is mutated. Safe to call concurrently on a shared vector:
  /// the cache is a relaxed atomic, so racing readers at worst both compute
  /// the same value.
  size_t Count() const;

  /// Number of positions set in both `this` and `other`. Sizes must match.
  size_t AndCount(const BitVector& other) const;

  /// Number of positions set in `this` or `other`. Sizes must match.
  size_t OrCount(const BitVector& other) const;

  /// Number of positions that differ (Hamming distance). Sizes must match.
  size_t XorCount(const BitVector& other) const;

  /// In-place bitwise AND. Sizes must match.
  BitVector& operator&=(const BitVector& other);

  /// In-place bitwise OR. Sizes must match.
  BitVector& operator|=(const BitVector& other);

  /// In-place bitwise XOR. Sizes must match.
  BitVector& operator^=(const BitVector& other);

  /// Appends `other` to the end of this vector (used by record-level
  /// concatenated encodings).
  void Concat(const BitVector& other);

  /// Returns the positions of all set bits in increasing order.
  std::vector<uint32_t> SetPositions() const;

  /// Renders as a '0'/'1' string, bit 0 first (test/debug aid).
  std::string ToString() const;

  /// Parses a '0'/'1' string produced by ToString(). Other characters are
  /// rejected by returning an empty vector.
  static BitVector FromString(const std::string& bits);

  /// Underlying words, little-endian bit order within each word. The last
  /// word's bits past size() are guaranteed zero.
  const std::vector<uint64_t>& words() const { return words_; }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  void InvalidateCount() { cached_count_.store(kNoCount, std::memory_order_relaxed); }

  static constexpr size_t kNoCount = static_cast<size_t>(-1);

  size_t num_bits_;
  std::vector<uint64_t> words_;
  // Concurrent Count() calls on a shared filter (CompareParallel fan-out)
  // may race to fill the cache; relaxed atomicity makes that benign — both
  // threads store the same value. Mutation is single-threaded by contract.
  mutable std::atomic<size_t> cached_count_{kNoCount};
};

}  // namespace pprl

#endif  // PPRL_COMMON_BITVECTOR_H_
