#ifndef PPRL_COMMON_BASE64_H_
#define PPRL_COMMON_BASE64_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace pprl {

/// Standard base64 (RFC 4648, with '=' padding) used to serialise encoded
/// filters for file interchange between database owners and linkage units.
std::string Base64Encode(const std::vector<uint8_t>& data);

/// Decodes base64; rejects characters outside the alphabet and bad padding.
Result<std::vector<uint8_t>> Base64Decode(const std::string& text);

}  // namespace pprl

#endif  // PPRL_COMMON_BASE64_H_
