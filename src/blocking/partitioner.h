#ifndef PPRL_BLOCKING_PARTITIONER_H_
#define PPRL_BLOCKING_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blocking/blocking.h"

namespace pprl {

/// How block ids map onto workers of a sharded linkage unit.
enum class PartitionScheme {
  /// Rendezvous hashing for small rings (<= 8 workers), consistent-hash
  /// ring above — the crossover where a vnode ring's balance overtakes
  /// rendezvous's O(workers)-per-key cost.
  kAuto,
  /// Highest-random-weight hashing: every key scores every worker, the
  /// top score wins. Perfectly uniform and minimally disruptive under
  /// resize, at O(workers) per lookup.
  kRendezvous,
  /// Classic consistent-hash ring with virtual nodes: O(log vnodes) per
  /// lookup, ~1/W of keys move when a worker joins or leaves.
  kConsistentRing,
};

const char* PartitionSchemeName(PartitionScheme scheme);

/// Deterministically assigns block ids (blocking keys) to workers
/// 0..num_workers-1. Workers are identified by dense index, so any two
/// processes that agree on (num_workers, scheme) agree on every
/// assignment — the coordinator and its workers never exchange the map
/// itself, only the ring size.
class BlockPartitioner {
 public:
  explicit BlockPartitioner(size_t num_workers,
                            PartitionScheme scheme = PartitionScheme::kAuto,
                            size_t vnodes_per_worker = 64);

  uint32_t WorkerForKey(std::string_view key) const;

  size_t num_workers() const { return num_workers_; }
  /// The scheme actually in use (kAuto resolved).
  PartitionScheme effective_scheme() const { return scheme_; }

 private:
  size_t num_workers_;
  PartitionScheme scheme_;
  /// Ring of (vnode hash, worker), sorted by hash. Empty for rendezvous.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
  /// Per-worker seeds for rendezvous scoring. Empty for the ring scheme.
  std::vector<uint64_t> worker_seeds_;
};

/// The candidate pairs of two block indexes owned by `worker` under the
/// canonical-key rule: a pair belongs to the worker that owns its
/// *canonical* block id — the lexicographically smallest key under which
/// the two records collide. Every deduplicated candidate of
/// StandardBlocker/HammingLshBlocker::CandidatePairs(a, b) has exactly one
/// canonical key, so the per-worker sets are disjoint and their union over
/// all workers is exactly the single-machine candidate list — which is
/// what makes a scattered compare's comparison and pruning counters sum to
/// the single-daemon totals instead of double-counting cross-block
/// duplicates.
///
/// Pairs come back in ascending (a, b) order, matching the order the
/// single-machine paths score them in.
std::vector<CandidatePair> OwnedCandidatePairs(const BlockIndex& a,
                                               const BlockIndex& b,
                                               const BlockPartitioner& partitioner,
                                               uint32_t worker);

}  // namespace pprl

#endif  // PPRL_BLOCKING_PARTITIONER_H_
