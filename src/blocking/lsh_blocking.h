#ifndef PPRL_BLOCKING_LSH_BLOCKING_H_
#define PPRL_BLOCKING_LSH_BLOCKING_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/random.h"
#include "common/status.h"
#include "blocking/blocking.h"
#include "encoding/minhash.h"

namespace pprl {

/// Hamming-LSH blocking over Bloom filters (Karapiperis & Verykios [18],
/// Durham [12]).
///
/// Each of `num_tables` tables samples `bits_per_key` random positions of
/// the filter; two records collide in a table when they agree on all sampled
/// positions. A pair at Hamming distance d collides in one table with
/// probability (1 - d/l)^bits_per_key, so with mu tables the recall for
/// similar pairs is 1 - (1 - p)^mu — tunable to any target with high
/// probability, which is the "theoretical guarantee" the survey credits LSH
/// blocking with.
class HammingLshBlocker {
 public:
  /// `filter_bits` is the Bloom-filter length l; seeds are drawn from `rng`.
  HammingLshBlocker(size_t filter_bits, size_t num_tables, size_t bits_per_key,
                    Rng& rng);

  /// Bucket keys of one filter, one per table (table id is baked into the
  /// key so tables do not mix).
  std::vector<std::string> Keys(const BitVector& bf) const;

  /// Builds the multi-table index of a database's filters.
  BlockIndex BuildIndex(const std::vector<BitVector>& filters) const;

  /// Candidate pairs that collide in at least one table.
  static std::vector<CandidatePair> CandidatePairs(const BlockIndex& a,
                                                   const BlockIndex& b);

  /// Probability that a pair at Hamming distance `d` (filters of length l)
  /// becomes a candidate: 1 - (1 - (1 - d/l)^lambda)^mu.
  double CollisionProbability(size_t hamming_distance) const;

  size_t num_tables() const { return positions_.size(); }
  size_t bits_per_key() const { return positions_.empty() ? 0 : positions_[0].size(); }
  size_t filter_bits() const { return filter_bits_; }

  /// The sampled bit positions, [table][sampled bit]. Exposed so an
  /// incremental index (blocking/lsh_index.h) can hash the exact same band
  /// geometry without re-deriving keys through strings.
  const std::vector<std::vector<uint32_t>>& positions() const { return positions_; }

 private:
  size_t filter_bits_;
  std::vector<std::vector<uint32_t>> positions_;  // [table][sampled bit]
};

/// MinHash-LSH blocking: the signature is cut into bands of `rows_per_band`
/// components; records sharing any full band become candidates. Collision
/// probability for Jaccard similarity s is 1 - (1 - s^rows)^bands.
class MinHashLshBlocker {
 public:
  /// `bands * rows_per_band` must equal the signature length used.
  MinHashLshBlocker(size_t bands, size_t rows_per_band);

  std::vector<std::string> Keys(const MinHashSignature& signature) const;

  BlockIndex BuildIndex(const std::vector<MinHashSignature>& signatures) const;

  static std::vector<CandidatePair> CandidatePairs(const BlockIndex& a,
                                                   const BlockIndex& b);

  double CollisionProbability(double jaccard) const;

 private:
  size_t bands_;
  size_t rows_per_band_;
};

}  // namespace pprl

#endif  // PPRL_BLOCKING_LSH_BLOCKING_H_
