#include "blocking/partitioner.h"

#include <algorithm>

namespace pprl {

namespace {

/// FNV-1a 64 over the key bytes — the same cheap order-sensitive hash the
/// protocol layer uses for chunk checksums. Key assignment only needs
/// determinism and spread, not collision resistance: keys are already
/// HMAC/LSH outputs, not attacker-chosen strings.
uint64_t HashKey(std::string_view key) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// splitmix64 finalizer: decorrelates the per-worker / per-vnode seeds
/// from their small dense indices.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr size_t kRendezvousMaxWorkers = 8;

}  // namespace

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kAuto: return "auto";
    case PartitionScheme::kRendezvous: return "rendezvous";
    case PartitionScheme::kConsistentRing: return "consistent-ring";
  }
  return "unknown";
}

BlockPartitioner::BlockPartitioner(size_t num_workers, PartitionScheme scheme,
                                   size_t vnodes_per_worker)
    : num_workers_(std::max<size_t>(num_workers, 1)), scheme_(scheme) {
  if (scheme_ == PartitionScheme::kAuto) {
    scheme_ = num_workers_ <= kRendezvousMaxWorkers
                  ? PartitionScheme::kRendezvous
                  : PartitionScheme::kConsistentRing;
  }
  if (scheme_ == PartitionScheme::kRendezvous) {
    worker_seeds_.reserve(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      worker_seeds_.push_back(Mix(0x5eedu + w));
    }
  } else {
    const size_t vnodes = std::max<size_t>(vnodes_per_worker, 1);
    ring_.reserve(num_workers_ * vnodes);
    for (size_t w = 0; w < num_workers_; ++w) {
      for (size_t v = 0; v < vnodes; ++v) {
        // Vnode positions depend only on (worker, vnode), so growing the
        // ring adds positions without moving existing ones — that is the
        // whole point of consistent hashing.
        ring_.emplace_back(Mix(Mix(0x5eedu + w) ^ (0xabcdULL + v)),
                           static_cast<uint32_t>(w));
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }
}

uint32_t BlockPartitioner::WorkerForKey(std::string_view key) const {
  if (num_workers_ == 1) return 0;
  const uint64_t hash = HashKey(key);
  if (scheme_ == PartitionScheme::kRendezvous) {
    uint32_t best = 0;
    uint64_t best_score = 0;
    for (uint32_t w = 0; w < num_workers_; ++w) {
      const uint64_t score = Mix(hash ^ worker_seeds_[w]);
      if (w == 0 || score > best_score) {
        best = w;
        best_score = score;
      }
    }
    return best;
  }
  // First vnode clockwise of the key's hash; wrap to the ring's start.
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(hash, uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

namespace {

/// record index -> its keys, each list sorted lexicographically, so the
/// canonical (smallest common) key of a pair is the first match of a
/// sorted merge walk. Key strings are borrowed from the index.
std::vector<std::vector<const std::string*>> KeysPerRecord(const BlockIndex& index) {
  uint32_t max_record = 0;
  bool any = false;
  for (const auto& [key, records] : index) {
    for (const uint32_t r : records) {
      max_record = std::max(max_record, r);
      any = true;
    }
  }
  std::vector<std::vector<const std::string*>> keys(any ? max_record + 1 : 0);
  for (const auto& [key, records] : index) {
    for (const uint32_t r : records) keys[r].push_back(&key);
  }
  for (auto& list : keys) {
    std::sort(list.begin(), list.end(),
              [](const std::string* x, const std::string* y) { return *x < *y; });
  }
  return keys;
}

/// The lexicographically smallest key present in both sorted lists.
const std::string* FirstCommonKey(const std::vector<const std::string*>& x,
                                  const std::vector<const std::string*>& y) {
  size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (*x[i] == *y[j]) return x[i];
    if (*x[i] < *y[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<CandidatePair> OwnedCandidatePairs(const BlockIndex& a,
                                               const BlockIndex& b,
                                               const BlockPartitioner& partitioner,
                                               uint32_t worker) {
  const auto keys_a = KeysPerRecord(a);
  const auto keys_b = KeysPerRecord(b);
  std::vector<CandidatePair> owned;
  for (const auto& [key, a_records] : a) {
    if (partitioner.WorkerForKey(key) != worker) continue;
    const auto it = b.find(key);
    if (it == b.end()) continue;
    for (const uint32_t a_rec : a_records) {
      for (const uint32_t b_rec : it->second) {
        // The pair is ours only when this key is its canonical key;
        // otherwise the canonical key's owner emits it. Exactly one key
        // wins per pair, so the global union has no duplicates.
        const std::string* canonical = FirstCommonKey(keys_a[a_rec], keys_b[b_rec]);
        if (canonical != nullptr && *canonical == key) {
          owned.push_back({a_rec, b_rec});
        }
      }
    }
  }
  std::sort(owned.begin(), owned.end());
  return owned;
}

}  // namespace pprl
