#ifndef PPRL_BLOCKING_BLOCKING_H_
#define PPRL_BLOCKING_BLOCKING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/record.h"
#include "common/status.h"

namespace pprl {

/// A candidate record pair: indices into database A and database B.
struct CandidatePair {
  uint32_t a = 0;
  uint32_t b = 0;

  friend bool operator==(const CandidatePair& x, const CandidatePair& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const CandidatePair& x, const CandidatePair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  }
};

/// Blocking-key -> record indices for one database.
using BlockIndex = std::unordered_map<std::string, std::vector<uint32_t>>;

/// A function deriving the blocking-key values (possibly several) of one
/// record. Privacy-aware key functions return encoded values (phonetic
/// codes, HMACs of prefixes) rather than raw QIDs.
using BlockingKeyFunction =
    std::function<std::vector<std::string>(const Schema&, const Record&)>;

/// Standard blocking (survey §3.4 "Blocking"): partition records by their
/// blocking-key values; only same-key records are compared.
class StandardBlocker {
 public:
  explicit StandardBlocker(BlockingKeyFunction key_function);

  /// Builds the key -> records index of `db`.
  BlockIndex BuildIndex(const Database& db) const;

  /// Candidate pairs between two indexed databases: the cross product within
  /// every shared key, deduplicated.
  static std::vector<CandidatePair> CandidatePairs(const BlockIndex& a,
                                                   const BlockIndex& b);

 private:
  BlockingKeyFunction key_function_;
};

/// A ready-made privacy-aware key function: HMAC(secret, Soundex(last_name)
/// + first letter of first_name). Requires the standard generator schema
/// field names.
BlockingKeyFunction SoundexNameKey(const std::string& secret_key);

/// Keyed blocking on an exact attribute value (e.g. postcode).
BlockingKeyFunction ExactAttributeKey(const std::string& field_name,
                                      const std::string& secret_key);

/// Sorted-neighbourhood blocking: records of both databases are merged,
/// sorted by key, and every pair within a sliding window of size `window`
/// becomes a candidate.
class SortedNeighborhoodBlocker {
 public:
  SortedNeighborhoodBlocker(BlockingKeyFunction key_function, size_t window);

  /// Candidate pairs between `a` and `b`.
  std::vector<CandidatePair> CandidatePairs(const Database& a, const Database& b) const;

 private:
  BlockingKeyFunction key_function_;
  size_t window_;
};

/// All |A| x |B| pairs — the naive baseline blocking is measured against.
std::vector<CandidatePair> FullPairs(size_t size_a, size_t size_b);

// --- Streaming candidate generation ---------------------------------------
//
// The materializing CandidatePairs() functions above build (and sort) one
// global pair vector — O(candidates) memory before the first comparison
// runs. The streaming API below instead emits bounded shards of pairs in a
// deterministic order, so the comparison stage can consume candidates while
// blocking is still producing them and memory stays O(shard), not O(pairs).

/// A dense run of candidate pairs: record `a` of database A against every
/// b in [b_begin, b_end) of database B. Streaming producers emit runs
/// instead of pairs wherever candidates are contiguous — 12 bytes per
/// run instead of 8 bytes per pair is what keeps a single producer thread
/// from serializing 8 consumer threads behind pair materialization.
struct PairRun {
  uint32_t a = 0;
  uint32_t b_begin = 0;
  uint32_t b_end = 0;

  friend bool operator==(const PairRun& x, const PairRun& y) {
    return x.a == y.a && x.b_begin == y.b_begin && x.b_end == y.b_end;
  }
};

/// A contiguous run of candidate pairs. Shard ids are dense and ascending
/// in emission order; concatenating shards by id reproduces exactly the
/// sorted, deduplicated list the materializing functions return.
///
/// A shard carries its candidates either materialized (`pairs`) or as
/// dense runs (`runs`) — never both. A run shard's candidate sequence is
/// its runs expanded in order: for each run, (a, b) for b in
/// [b_begin, b_end); run producers guarantee that sequence is ascending
/// (a, b), which the tiled comparison path relies on to restore candidate
/// order after cache-blocked execution.
struct CandidateShard {
  uint32_t shard_id = 0;
  std::vector<CandidatePair> pairs;
  std::vector<PairRun> runs;

  /// Candidate pairs this shard covers, whichever representation it uses.
  size_t num_pairs() const;

  /// Expands `runs` into `pairs` (no-op for pair shards) — for consumers
  /// that want the materialized form.
  void MaterializePairs();
};

/// Consumes one shard (ownership moves to the consumer).
using CandidateShardFn = std::function<void(CandidateShard)>;

/// Streams the candidate pairs of two block indexes in shards of at most
/// `shard_size` pairs (the final shard may be shorter; a shard_size of 0
/// means one shard per run of pairs sharing an a-record). Pair order is
/// ascending (a, b) with duplicates removed — byte-identical to
/// StandardBlocker::CandidatePairs(a, b) / HammingLshBlocker counterparts —
/// but peak memory is O(index + densest a-record's candidates + shard)
/// instead of O(total pairs).
void StreamBlockedPairs(const BlockIndex& a, const BlockIndex& b, size_t shard_size,
                        const CandidateShardFn& emit);

/// Streams all |A| x |B| pairs in ascending (a, b) order — the streaming
/// counterpart of FullPairs().
void StreamFullPairs(size_t size_a, size_t size_b, size_t shard_size,
                     const CandidateShardFn& emit);

/// Run-shard variants: the same candidate sequence, shard boundaries and
/// shard ids as their materializing counterparts above, but each shard
/// carries PairRuns instead of pairs. Producer work drops from O(pairs)
/// to O(runs) — for the full cross product, O(a-rows) — so candidate
/// generation stops being the serial stage of the parallel compare path;
/// consumers expand (or tile) runs on their own worker threads.
void StreamBlockedPairRuns(const BlockIndex& a, const BlockIndex& b,
                           size_t shard_size, const CandidateShardFn& emit);

void StreamFullPairRuns(size_t size_a, size_t size_b, size_t shard_size,
                        const CandidateShardFn& emit);

}  // namespace pprl

#endif  // PPRL_BLOCKING_BLOCKING_H_
