#include "blocking/canopy.h"

#include <algorithm>
#include <set>

namespace pprl {

CanopyBlocker::CanopyBlocker(double loose_threshold, double tight_threshold,
                             uint64_t seed)
    : loose_threshold_(std::min(loose_threshold, tight_threshold)),
      tight_threshold_(std::max(loose_threshold, tight_threshold)),
      rng_(seed) {}

std::vector<CandidatePair> CanopyBlocker::CandidatePairs(
    const std::vector<MinHashSignature>& a_signatures,
    const std::vector<MinHashSignature>& b_signatures) {
  struct Item {
    uint32_t index;
    bool from_a;
  };
  std::vector<Item> pool;
  pool.reserve(a_signatures.size() + b_signatures.size());
  for (uint32_t i = 0; i < a_signatures.size(); ++i) pool.push_back({i, true});
  for (uint32_t i = 0; i < b_signatures.size(); ++i) pool.push_back({i, false});
  rng_.Shuffle(pool);

  auto signature_of = [&](const Item& item) -> const MinHashSignature& {
    return item.from_a ? a_signatures[item.index] : b_signatures[item.index];
  };

  std::vector<bool> removed(pool.size(), false);
  std::set<CandidatePair> pairs;
  last_num_canopies_ = 0;

  for (size_t seed_pos = 0; seed_pos < pool.size(); ++seed_pos) {
    if (removed[seed_pos]) continue;
    // This record seeds a canopy.
    removed[seed_pos] = true;
    ++last_num_canopies_;
    std::vector<size_t> members = {seed_pos};
    const MinHashSignature& seed_sig = signature_of(pool[seed_pos]);
    for (size_t j = 0; j < pool.size(); ++j) {
      if (j == seed_pos) continue;
      const double sim = MinHasher::EstimateJaccard(seed_sig, signature_of(pool[j]));
      if (sim >= loose_threshold_) {
        // Canopies overlap: a record already claimed by an earlier canopy
        // can still be a member here — only future *seeding* is suppressed.
        members.push_back(j);
        if (sim >= tight_threshold_) removed[j] = true;
      }
    }
    // Cross-database pairs within the canopy.
    for (size_t x : members) {
      for (size_t y : members) {
        if (!pool[x].from_a || pool[y].from_a) continue;
        pairs.insert({pool[x].index, pool[y].index});
      }
    }
  }
  return std::vector<CandidatePair>(pairs.begin(), pairs.end());
}

}  // namespace pprl
