#include "blocking/metablocking.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace pprl {

void PurgeBlocks(BlockIndex& a, BlockIndex& b, size_t max_comparisons_per_block) {
  std::vector<std::string> to_remove;
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    if (a_records.size() * it->second.size() > max_comparisons_per_block) {
      to_remove.push_back(key);
    }
  }
  for (const std::string& key : to_remove) {
    a.erase(key);
    b.erase(key);
  }
}

void FilterBlocks(BlockIndex& index, double keep_fraction) {
  keep_fraction = std::clamp(keep_fraction, 0.0, 1.0);
  // Gather each record's blocks with their sizes.
  std::unordered_map<uint32_t, std::vector<std::pair<size_t, const std::string*>>> per_record;
  for (const auto& [key, records] : index) {
    for (uint32_t r : records) {
      per_record[r].push_back({records.size(), &key});
    }
  }
  // Decide which (record, key) assignments survive.
  std::unordered_map<uint32_t, std::vector<const std::string*>> kept;
  for (auto& [record, blocks] : per_record) {
    std::sort(blocks.begin(), blocks.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(blocks.size()) * keep_fraction));
    auto& lst = kept[record];
    for (size_t i = 0; i < keep && i < blocks.size(); ++i) lst.push_back(blocks[i].second);
  }
  // Rebuild the index with only surviving assignments.
  BlockIndex filtered;
  for (const auto& [record, keys] : kept) {
    for (const std::string* key : keys) filtered[*key].push_back(record);
  }
  for (auto& [key, records] : filtered) std::sort(records.begin(), records.end());
  index = std::move(filtered);
}

std::vector<CandidatePair> PruneByCommonBlocks(const BlockIndex& a, const BlockIndex& b,
                                               size_t min_common_blocks) {
  std::map<CandidatePair, size_t> weight;
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    for (uint32_t ra : a_records) {
      for (uint32_t rb : it->second) ++weight[{ra, rb}];
    }
  }
  std::vector<CandidatePair> out;
  for (const auto& [pair, w] : weight) {
    if (w >= min_common_blocks) out.push_back(pair);
  }
  return out;
}

std::vector<BlockScheduleEntry> ScheduleBlocks(const BlockIndex& a, const BlockIndex& b) {
  std::vector<BlockScheduleEntry> schedule;
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    schedule.push_back({key, a_records.size() * it->second.size()});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const BlockScheduleEntry& x, const BlockScheduleEntry& y) {
              return x.comparisons != y.comparisons ? x.comparisons < y.comparisons
                                                    : x.key < y.key;
            });
  return schedule;
}

}  // namespace pprl
