#ifndef PPRL_BLOCKING_LSH_INDEX_H_
#define PPRL_BLOCKING_LSH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "blocking/lsh_blocking.h"
#include "common/bit_matrix.h"
#include "common/bitvector.h"
#include "common/random.h"

namespace pprl {

/// An incrementally-maintainable Hamming-LSH blocking index.
///
/// `HammingLshBlocker` answers the batch question — all candidate pairs
/// between two fully-materialized databases — by building string-keyed
/// `BlockIndex` maps and intersecting them. The online serving path asks a
/// different question thousands of times per second: given ONE new filter,
/// which already-indexed rows collide with it in at least one band table?
/// This class answers that in O(tables + candidates) per probe and supports
/// append-without-rebuild, which is what turns "link one new record" from a
/// batch job into a sub-millisecond query (ROADMAP "velocity" item).
///
/// Design:
///  - Band geometry is the `HammingLshBlocker`'s own sampled positions
///    (constructed from the same seed), so the collision relation is
///    IDENTICAL to the batch blocker's: two rows collide here iff their
///    string keys in `HammingLshBlocker::Keys` are equal for some table.
///    For bits_per_key <= 64 the band fingerprint packs the sampled bits
///    into a u64 (injective, hence exact); wider bands fall back to
///    FNV-1a-64 over the sampled bits.
///  - Each table is an open-addressing fingerprint -> bucket-head map with
///    per-row chain links ("next" array), so an append touches O(tables)
///    cache lines and never reallocates per-bucket storage.
///  - Row payloads live in one growable `BitMatrix`, so the fused
///    AND-popcount comparison kernels (linkage/compare_kernels.h) run
///    unchanged over candidate sets.
class LshBandIndex {
 public:
  /// Samples band geometry from `Rng(seed)` exactly like the batch path in
  /// pipeline/party.cc does, so a batch `Link()` with the same
  /// (filter_bits, num_tables, bits_per_key, seed) sees the same collisions.
  LshBandIndex(size_t filter_bits, size_t num_tables, size_t bits_per_key,
               uint64_t seed);

  /// Appends `filter` as the next row and indexes it in every band table.
  /// O(tables) map operations + one O(row words) copy. Returns the row id.
  uint32_t Append(const BitVector& filter);

  /// Append() without the BitVector detour: copies row `src_row` of `src`
  /// (same bit length) straight into the backing matrix and indexes it.
  /// This is the checkpoint-recovery bulk path — band tables are a
  /// deterministic function of the row sequence, so restoring an index is
  /// re-appending its rows (docs/PROTOCOLS.md Appendix B).
  uint32_t AppendFrom(const BitMatrix& src, size_t src_row);

  /// All distinct indexed rows that collide with `probe` in at least one
  /// band table, ascending row order. Does not insert. `out` is cleared.
  void Probe(const BitVector& probe, std::vector<uint32_t>* out) const;

  /// Band fingerprint of `bf` in `table` — equal fingerprints are exactly
  /// the string-key collisions of `HammingLshBlocker::Keys` when
  /// bits_per_key <= 64.
  uint64_t BandFingerprint(const BitVector& bf, size_t table) const;

  size_t size() const { return rows_.num_rows(); }
  size_t filter_bits() const { return blocker_.filter_bits(); }

  /// The backing row storage; row i is the filter passed to the i-th
  /// Append(). Pointers are invalidated by Append() (geometric growth).
  const BitMatrix& rows() const { return rows_; }

  const HammingLshBlocker& blocker() const { return blocker_; }

  /// Total bucket-chain entries scanned by all Probe() calls so far
  /// (pre-dedup candidate volume; cost observability for tuning).
  uint64_t probed_entries() const {
    return probed_entries_.load(std::memory_order_relaxed);
  }

  /// FNV-1a-64 over the little-endian band fingerprints of every indexed
  /// row in (row, table) order, maintained incrementally by appends. Two
  /// indexes with equal checksums over the same row count collide
  /// identically, so a checkpoint stores this instead of the band tables
  /// and recovery verifies the rebuild against it (seed or geometry drift
  /// cannot silently change the collision relation).
  uint64_t band_checksum() const { return band_checksum_; }

 private:
  /// One band table: open-addressing fingerprint -> head row, with bucket
  /// membership chained through `next` (row id == position; kNoRow ends the
  /// chain). Power-of-two capacity, linear probing, grown at 50% load.
  struct BandTable {
    std::vector<uint64_t> fingerprints;
    std::vector<uint32_t> heads;   ///< kNoRow marks an empty slot
    std::vector<uint32_t> next;    ///< per indexed row, previous head or kNoRow
    size_t used = 0;

    uint32_t Find(uint64_t fp) const;          ///< head row or kNoRow
    void Insert(uint64_t fp, uint32_t row);    ///< prepends `row` to fp's chain
    void Grow();
  };

  static constexpr uint32_t kNoRow = UINT32_MAX;

  /// BandFingerprint over raw row words (bit i of the filter is bit i%64
  /// of word i/64, the BitVector/BitMatrix layout).
  uint64_t FingerprintWords(const uint64_t* words, size_t table) const;
  /// Indexes an already-stored row in every band table and folds its
  /// fingerprints into band_checksum_.
  void IndexRow(uint32_t row);

  Rng rng_;  ///< consumed by blocker_'s construction; kept for init order
  HammingLshBlocker blocker_;
  std::vector<BandTable> tables_;
  BitMatrix rows_;
  uint64_t band_checksum_;
  /// Relaxed atomic so concurrent Probe() calls (readers under a shared
  /// lock in OnlineLinkageEngine) stay race-free.
  mutable std::atomic<uint64_t> probed_entries_{0};
};

}  // namespace pprl

#endif  // PPRL_BLOCKING_LSH_INDEX_H_
