#include "blocking/blocking.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "crypto/hash.h"
#include "encoding/phonetic.h"

namespace pprl {

StandardBlocker::StandardBlocker(BlockingKeyFunction key_function)
    : key_function_(std::move(key_function)) {}

BlockIndex StandardBlocker::BuildIndex(const Database& db) const {
  BlockIndex index;
  for (uint32_t i = 0; i < db.records.size(); ++i) {
    for (const std::string& key : key_function_(db.schema, db.records[i])) {
      index[key].push_back(i);
    }
  }
  return index;
}

std::vector<CandidatePair> StandardBlocker::CandidatePairs(const BlockIndex& a,
                                                           const BlockIndex& b) {
  std::vector<CandidatePair> pairs;
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    for (uint32_t ra : a_records) {
      for (uint32_t rb : it->second) pairs.push_back({ra, rb});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

BlockingKeyFunction SoundexNameKey(const std::string& secret_key) {
  return [secret_key](const Schema& schema, const Record& record) {
    std::vector<std::string> keys;
    const int last_idx = schema.FieldIndex("last_name");
    const int first_idx = schema.FieldIndex("first_name");
    std::string material = "snk\x1f";
    if (last_idx >= 0 && static_cast<size_t>(last_idx) < record.values.size()) {
      material += Soundex(record.values[static_cast<size_t>(last_idx)]);
    }
    material += '\x1f';
    if (first_idx >= 0 && static_cast<size_t>(first_idx) < record.values.size() &&
        !record.values[static_cast<size_t>(first_idx)].empty()) {
      material += ToLower(record.values[static_cast<size_t>(first_idx)].substr(0, 1));
    }
    keys.push_back(DigestToHex(HmacSha256(secret_key, material)).substr(0, 16));
    return keys;
  };
}

BlockingKeyFunction ExactAttributeKey(const std::string& field_name,
                                      const std::string& secret_key) {
  return [field_name, secret_key](const Schema& schema, const Record& record) {
    std::vector<std::string> keys;
    const int idx = schema.FieldIndex(field_name);
    if (idx >= 0 && static_cast<size_t>(idx) < record.values.size()) {
      const std::string material = "eak\x1f" + field_name + "\x1f" +
                                   NormalizeQid(record.values[static_cast<size_t>(idx)]);
      keys.push_back(DigestToHex(HmacSha256(secret_key, material)).substr(0, 16));
    }
    return keys;
  };
}

SortedNeighborhoodBlocker::SortedNeighborhoodBlocker(BlockingKeyFunction key_function,
                                                     size_t window)
    : key_function_(std::move(key_function)), window_(window < 2 ? 2 : window) {}

std::vector<CandidatePair> SortedNeighborhoodBlocker::CandidatePairs(
    const Database& a, const Database& b) const {
  struct Entry {
    std::string key;
    uint32_t index;
    bool from_a;
  };
  std::vector<Entry> entries;
  entries.reserve(a.records.size() + b.records.size());
  for (uint32_t i = 0; i < a.records.size(); ++i) {
    for (const std::string& key : key_function_(a.schema, a.records[i])) {
      entries.push_back({key, i, true});
    }
  }
  for (uint32_t i = 0; i < b.records.size(); ++i) {
    for (const std::string& key : key_function_(b.schema, b.records[i])) {
      entries.push_back({key, i, false});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.key < y.key; });

  std::set<CandidatePair> pairs;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size() && j < i + window_; ++j) {
      if (entries[i].from_a == entries[j].from_a) continue;
      const Entry& ea = entries[i].from_a ? entries[i] : entries[j];
      const Entry& eb = entries[i].from_a ? entries[j] : entries[i];
      pairs.insert({ea.index, eb.index});
    }
  }
  return std::vector<CandidatePair>(pairs.begin(), pairs.end());
}

std::vector<CandidatePair> FullPairs(size_t size_a, size_t size_b) {
  std::vector<CandidatePair> pairs;
  pairs.reserve(size_a * size_b);
  for (uint32_t i = 0; i < size_a; ++i) {
    for (uint32_t j = 0; j < size_b; ++j) pairs.push_back({i, j});
  }
  return pairs;
}

namespace {

/// Accumulates pairs and hands full shards to the consumer; Flush() emits
/// the trailing partial shard.
class ShardEmitter {
 public:
  ShardEmitter(size_t shard_size, const CandidateShardFn& emit)
      : shard_size_(shard_size), emit_(emit) {}

  void Append(std::vector<CandidatePair>&& run) {
    if (shard_size_ == 0) {
      EmitShard(std::move(run));
      return;
    }
    // Bulk copy in whole-chunk steps; the per-pair loop this replaces was
    // the generation bottleneck once the kernels stopped dividing.
    size_t off = 0;
    while (off < run.size()) {
      if (buffer_.empty()) buffer_.reserve(shard_size_);
      const size_t chunk =
          std::min(run.size() - off, shard_size_ - buffer_.size());
      buffer_.insert(buffer_.end(), run.begin() + off, run.begin() + off + chunk);
      off += chunk;
      if (buffer_.size() >= shard_size_) EmitShard(std::move(buffer_));
    }
  }

  void Flush() {
    if (!buffer_.empty()) EmitShard(std::move(buffer_));
  }

 private:
  void EmitShard(std::vector<CandidatePair>&& pairs) {
    if (pairs.empty()) return;
    CandidateShard shard;
    shard.shard_id = next_id_++;
    shard.pairs = std::move(pairs);
    emit_(std::move(shard));
    buffer_ = {};
  }

  size_t shard_size_;
  const CandidateShardFn& emit_;
  std::vector<CandidatePair> buffer_;
  uint32_t next_id_ = 0;
};

}  // namespace

void StreamBlockedPairs(const BlockIndex& a, const BlockIndex& b, size_t shard_size,
                        const CandidateShardFn& emit) {
  // Invert `a` into per-record lists of b-side collision lists: one
  // b.find() per distinct shared key (exactly what the materializing path
  // pays), O(a-side key occurrences) memory, no pair materialized yet.
  uint32_t max_record = 0;
  for (const auto& [key, a_records] : a) {
    for (uint32_t r : a_records) max_record = std::max(max_record, r);
  }
  std::vector<std::vector<const std::vector<uint32_t>*>> hits_of(
      a.empty() ? 0 : size_t{max_record} + 1);
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    for (uint32_t r : a_records) hits_of[r].push_back(&it->second);
  }

  // Ascending a-record; each record's b-candidates sorted and deduplicated
  // locally. Duplicates only arise within one a-record (a pair is the same
  // (a, b) twice), so local dedup equals the global sort+unique.
  ShardEmitter shards(shard_size, emit);
  std::vector<CandidatePair> run;
  for (uint32_t ra = 0; ra < hits_of.size(); ++ra) {
    if (hits_of[ra].empty()) continue;
    run.clear();
    for (const std::vector<uint32_t>* b_records : hits_of[ra]) {
      for (uint32_t rb : *b_records) run.push_back({ra, rb});
    }
    std::sort(run.begin(), run.end());
    run.erase(std::unique(run.begin(), run.end()), run.end());
    shards.Append(std::move(run));
    run = {};
  }
  shards.Flush();
}

void StreamFullPairs(size_t size_a, size_t size_b, size_t shard_size,
                     const CandidateShardFn& emit) {
  if (size_a == 0 || size_b == 0) return;
  if (shard_size == 0) {
    // One shard per a-record, matching ShardEmitter's unsharded semantics.
    uint32_t next_id = 0;
    for (uint32_t i = 0; i < size_a; ++i) {
      CandidateShard shard;
      shard.shard_id = next_id++;
      shard.pairs.reserve(size_b);
      for (uint32_t j = 0; j < size_b; ++j) shard.pairs.push_back({i, j});
      emit(std::move(shard));
    }
    return;
  }
  // The cross product is dense and its shard boundaries are computable, so
  // write pairs straight into the shard buffer — no intermediate run, no
  // per-pair size checks. Shard contents and order are identical to the
  // ShardEmitter path: full shards of `shard_size`, then the remainder.
  uint32_t next_id = 0;
  std::vector<CandidatePair> buf(shard_size);
  CandidatePair* p = buf.data();
  const CandidatePair* end = p + shard_size;
  for (uint32_t i = 0; i < size_a; ++i) {
    uint32_t j = 0;
    while (j < size_b) {
      const size_t chunk =
          std::min<size_t>(size_b - j, static_cast<size_t>(end - p));
      for (size_t k = 0; k < chunk; ++k) {
        p[k] = {i, j + static_cast<uint32_t>(k)};
      }
      p += chunk;
      j += static_cast<uint32_t>(chunk);
      if (p == end) {
        CandidateShard shard;
        shard.shard_id = next_id++;
        shard.pairs = std::move(buf);
        emit(std::move(shard));
        buf.assign(shard_size, CandidatePair{});
        p = buf.data();
        end = p + shard_size;
      }
    }
  }
  if (p != buf.data()) {
    buf.resize(static_cast<size_t>(p - buf.data()));
    CandidateShard shard;
    shard.shard_id = next_id++;
    shard.pairs = std::move(buf);
    emit(std::move(shard));
  }
}

}  // namespace pprl
