#include "blocking/blocking.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "crypto/hash.h"
#include "encoding/phonetic.h"

namespace pprl {

StandardBlocker::StandardBlocker(BlockingKeyFunction key_function)
    : key_function_(std::move(key_function)) {}

BlockIndex StandardBlocker::BuildIndex(const Database& db) const {
  BlockIndex index;
  for (uint32_t i = 0; i < db.records.size(); ++i) {
    for (const std::string& key : key_function_(db.schema, db.records[i])) {
      index[key].push_back(i);
    }
  }
  return index;
}

std::vector<CandidatePair> StandardBlocker::CandidatePairs(const BlockIndex& a,
                                                           const BlockIndex& b) {
  std::vector<CandidatePair> pairs;
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    for (uint32_t ra : a_records) {
      for (uint32_t rb : it->second) pairs.push_back({ra, rb});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

BlockingKeyFunction SoundexNameKey(const std::string& secret_key) {
  return [secret_key](const Schema& schema, const Record& record) {
    std::vector<std::string> keys;
    const int last_idx = schema.FieldIndex("last_name");
    const int first_idx = schema.FieldIndex("first_name");
    std::string material = "snk\x1f";
    if (last_idx >= 0 && static_cast<size_t>(last_idx) < record.values.size()) {
      material += Soundex(record.values[static_cast<size_t>(last_idx)]);
    }
    material += '\x1f';
    if (first_idx >= 0 && static_cast<size_t>(first_idx) < record.values.size() &&
        !record.values[static_cast<size_t>(first_idx)].empty()) {
      material += ToLower(record.values[static_cast<size_t>(first_idx)].substr(0, 1));
    }
    keys.push_back(DigestToHex(HmacSha256(secret_key, material)).substr(0, 16));
    return keys;
  };
}

BlockingKeyFunction ExactAttributeKey(const std::string& field_name,
                                      const std::string& secret_key) {
  return [field_name, secret_key](const Schema& schema, const Record& record) {
    std::vector<std::string> keys;
    const int idx = schema.FieldIndex(field_name);
    if (idx >= 0 && static_cast<size_t>(idx) < record.values.size()) {
      const std::string material = "eak\x1f" + field_name + "\x1f" +
                                   NormalizeQid(record.values[static_cast<size_t>(idx)]);
      keys.push_back(DigestToHex(HmacSha256(secret_key, material)).substr(0, 16));
    }
    return keys;
  };
}

SortedNeighborhoodBlocker::SortedNeighborhoodBlocker(BlockingKeyFunction key_function,
                                                     size_t window)
    : key_function_(std::move(key_function)), window_(window < 2 ? 2 : window) {}

std::vector<CandidatePair> SortedNeighborhoodBlocker::CandidatePairs(
    const Database& a, const Database& b) const {
  struct Entry {
    std::string key;
    uint32_t index;
    bool from_a;
  };
  std::vector<Entry> entries;
  entries.reserve(a.records.size() + b.records.size());
  for (uint32_t i = 0; i < a.records.size(); ++i) {
    for (const std::string& key : key_function_(a.schema, a.records[i])) {
      entries.push_back({key, i, true});
    }
  }
  for (uint32_t i = 0; i < b.records.size(); ++i) {
    for (const std::string& key : key_function_(b.schema, b.records[i])) {
      entries.push_back({key, i, false});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.key < y.key; });

  std::set<CandidatePair> pairs;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size() && j < i + window_; ++j) {
      if (entries[i].from_a == entries[j].from_a) continue;
      const Entry& ea = entries[i].from_a ? entries[i] : entries[j];
      const Entry& eb = entries[i].from_a ? entries[j] : entries[i];
      pairs.insert({ea.index, eb.index});
    }
  }
  return std::vector<CandidatePair>(pairs.begin(), pairs.end());
}

std::vector<CandidatePair> FullPairs(size_t size_a, size_t size_b) {
  std::vector<CandidatePair> pairs;
  pairs.reserve(size_a * size_b);
  for (uint32_t i = 0; i < size_a; ++i) {
    for (uint32_t j = 0; j < size_b; ++j) pairs.push_back({i, j});
  }
  return pairs;
}

size_t CandidateShard::num_pairs() const {
  if (!pairs.empty()) return pairs.size();
  size_t n = 0;
  for (const PairRun& run : runs) n += run.b_end - run.b_begin;
  return n;
}

void CandidateShard::MaterializePairs() {
  if (runs.empty()) return;
  pairs.reserve(num_pairs());
  for (const PairRun& run : runs) {
    for (uint32_t b = run.b_begin; b < run.b_end; ++b) pairs.push_back({run.a, b});
  }
  runs = {};
}

namespace {

/// Accumulates pairs and hands full shards to the consumer; Flush() emits
/// the trailing partial shard.
class ShardEmitter {
 public:
  ShardEmitter(size_t shard_size, const CandidateShardFn& emit)
      : shard_size_(shard_size), emit_(emit) {}

  void Append(std::vector<CandidatePair>&& run) {
    if (shard_size_ == 0) {
      EmitShard(std::move(run));
      return;
    }
    // Bulk copy in whole-chunk steps; the per-pair loop this replaces was
    // the generation bottleneck once the kernels stopped dividing.
    size_t off = 0;
    while (off < run.size()) {
      if (buffer_.empty()) buffer_.reserve(shard_size_);
      const size_t chunk =
          std::min(run.size() - off, shard_size_ - buffer_.size());
      buffer_.insert(buffer_.end(), run.begin() + off, run.begin() + off + chunk);
      off += chunk;
      if (buffer_.size() >= shard_size_) EmitShard(std::move(buffer_));
    }
  }

  void Flush() {
    if (!buffer_.empty()) EmitShard(std::move(buffer_));
  }

 private:
  void EmitShard(std::vector<CandidatePair>&& pairs) {
    if (pairs.empty()) return;
    CandidateShard shard;
    shard.shard_id = next_id_++;
    shard.pairs = std::move(pairs);
    emit_(std::move(shard));
    buffer_ = {};
  }

  size_t shard_size_;
  const CandidateShardFn& emit_;
  std::vector<CandidatePair> buffer_;
  uint32_t next_id_ = 0;
};

/// The run-shard counterpart of ShardEmitter: accumulates PairRuns,
/// splitting them at shard boundaries so every emitted shard covers
/// exactly `shard_size` candidate pairs (the final one fewer) — the same
/// boundaries the materializing emitters produce. shard_size 0 keeps the
/// unsharded semantics: one shard per Append'ed run group.
class RunShardEmitter {
 public:
  RunShardEmitter(size_t shard_size, const CandidateShardFn& emit)
      : shard_size_(shard_size), emit_(emit) {}

  /// Adds the run (a, [b_begin, b_end)) to the current shard.
  void Append(uint32_t a, uint32_t b_begin, uint32_t b_end) {
    while (b_begin < b_end) {
      const size_t width = b_end - b_begin;
      const size_t room =
          shard_size_ == 0 ? width : shard_size_ - buffered_pairs_;
      const uint32_t take = static_cast<uint32_t>(std::min(width, room));
      runs_.push_back({a, b_begin, b_begin + take});
      buffered_pairs_ += take;
      b_begin += take;
      if (shard_size_ != 0 && buffered_pairs_ >= shard_size_) EmitShard();
    }
  }

  /// Ends one unsharded group (one a-record's candidates); no-op when a
  /// fixed shard_size drives the boundaries.
  void EndGroup() {
    if (shard_size_ == 0) EmitShard();
  }

  void Flush() { EmitShard(); }

 private:
  void EmitShard() {
    if (runs_.empty()) return;
    CandidateShard shard;
    shard.shard_id = next_id_++;
    shard.runs = std::move(runs_);
    runs_ = {};
    buffered_pairs_ = 0;
    emit_(std::move(shard));
  }

  size_t shard_size_;
  const CandidateShardFn& emit_;
  std::vector<PairRun> runs_;
  size_t buffered_pairs_ = 0;
  uint32_t next_id_ = 0;
};

/// Shared driver for the blocked streams: ascending a-record, each
/// record's b-candidates sorted and deduplicated locally (duplicates only
/// arise within one a-record, so local dedup equals the global
/// sort+unique), handed to `consume_run(a, bs)` one a-record at a time.
template <typename ConsumeRun>
void ForEachBlockedRun(const BlockIndex& a, const BlockIndex& b,
                       const ConsumeRun& consume_run) {
  // Invert `a` into per-record lists of b-side collision lists: one
  // b.find() per distinct shared key (exactly what the materializing path
  // pays), O(a-side key occurrences) memory, no pair materialized yet.
  uint32_t max_record = 0;
  for (const auto& [key, a_records] : a) {
    for (uint32_t r : a_records) max_record = std::max(max_record, r);
  }
  std::vector<std::vector<const std::vector<uint32_t>*>> hits_of(
      a.empty() ? 0 : size_t{max_record} + 1);
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    for (uint32_t r : a_records) hits_of[r].push_back(&it->second);
  }

  std::vector<uint32_t> bs;
  for (uint32_t ra = 0; ra < hits_of.size(); ++ra) {
    if (hits_of[ra].empty()) continue;
    bs.clear();
    for (const std::vector<uint32_t>* b_records : hits_of[ra]) {
      bs.insert(bs.end(), b_records->begin(), b_records->end());
    }
    std::sort(bs.begin(), bs.end());
    bs.erase(std::unique(bs.begin(), bs.end()), bs.end());
    consume_run(ra, bs);
  }
}

}  // namespace

void StreamBlockedPairs(const BlockIndex& a, const BlockIndex& b, size_t shard_size,
                        const CandidateShardFn& emit) {
  ShardEmitter shards(shard_size, emit);
  std::vector<CandidatePair> run;
  ForEachBlockedRun(a, b, [&](uint32_t ra, const std::vector<uint32_t>& bs) {
    run.clear();
    run.reserve(bs.size());
    for (uint32_t rb : bs) run.push_back({ra, rb});
    shards.Append(std::move(run));
    run = {};
  });
  shards.Flush();
}

void StreamBlockedPairRuns(const BlockIndex& a, const BlockIndex& b,
                           size_t shard_size, const CandidateShardFn& emit) {
  RunShardEmitter shards(shard_size, emit);
  ForEachBlockedRun(a, b, [&](uint32_t ra, const std::vector<uint32_t>& bs) {
    // Compress the sorted, deduplicated b list into maximal consecutive
    // intervals. Blocked candidates are clustered (whole blocks of
    // adjacent record ids), so runs are usually much shorter than pairs;
    // a degenerate stride-2 list merely degrades to one run per pair.
    size_t i = 0;
    while (i < bs.size()) {
      size_t j = i + 1;
      while (j < bs.size() && bs[j] == bs[j - 1] + 1) ++j;
      shards.Append(ra, bs[i], bs[j - 1] + 1);
      i = j;
    }
    shards.EndGroup();
  });
  shards.Flush();
}

void StreamFullPairRuns(size_t size_a, size_t size_b, size_t shard_size,
                        const CandidateShardFn& emit) {
  if (size_a == 0 || size_b == 0) return;
  RunShardEmitter shards(shard_size, emit);
  for (uint32_t i = 0; i < size_a; ++i) {
    shards.Append(i, 0, static_cast<uint32_t>(size_b));
    shards.EndGroup();
  }
  shards.Flush();
}

void StreamFullPairs(size_t size_a, size_t size_b, size_t shard_size,
                     const CandidateShardFn& emit) {
  if (size_a == 0 || size_b == 0) return;
  if (shard_size == 0) {
    // One shard per a-record, matching ShardEmitter's unsharded semantics.
    uint32_t next_id = 0;
    for (uint32_t i = 0; i < size_a; ++i) {
      CandidateShard shard;
      shard.shard_id = next_id++;
      shard.pairs.reserve(size_b);
      for (uint32_t j = 0; j < size_b; ++j) shard.pairs.push_back({i, j});
      emit(std::move(shard));
    }
    return;
  }
  // The cross product is dense and its shard boundaries are computable, so
  // write pairs straight into the shard buffer — no intermediate run, no
  // per-pair size checks. Shard contents and order are identical to the
  // ShardEmitter path: full shards of `shard_size`, then the remainder.
  uint32_t next_id = 0;
  std::vector<CandidatePair> buf(shard_size);
  CandidatePair* p = buf.data();
  const CandidatePair* end = p + shard_size;
  for (uint32_t i = 0; i < size_a; ++i) {
    uint32_t j = 0;
    while (j < size_b) {
      const size_t chunk =
          std::min<size_t>(size_b - j, static_cast<size_t>(end - p));
      for (size_t k = 0; k < chunk; ++k) {
        p[k] = {i, j + static_cast<uint32_t>(k)};
      }
      p += chunk;
      j += static_cast<uint32_t>(chunk);
      if (p == end) {
        CandidateShard shard;
        shard.shard_id = next_id++;
        shard.pairs = std::move(buf);
        emit(std::move(shard));
        buf.assign(shard_size, CandidatePair{});
        p = buf.data();
        end = p + shard_size;
      }
    }
  }
  if (p != buf.data()) {
    buf.resize(static_cast<size_t>(p - buf.data()));
    CandidateShard shard;
    shard.shard_id = next_id++;
    shard.pairs = std::move(buf);
    emit(std::move(shard));
  }
}

}  // namespace pprl
