#include "blocking/blocking.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "crypto/hash.h"
#include "encoding/phonetic.h"

namespace pprl {

StandardBlocker::StandardBlocker(BlockingKeyFunction key_function)
    : key_function_(std::move(key_function)) {}

BlockIndex StandardBlocker::BuildIndex(const Database& db) const {
  BlockIndex index;
  for (uint32_t i = 0; i < db.records.size(); ++i) {
    for (const std::string& key : key_function_(db.schema, db.records[i])) {
      index[key].push_back(i);
    }
  }
  return index;
}

std::vector<CandidatePair> StandardBlocker::CandidatePairs(const BlockIndex& a,
                                                           const BlockIndex& b) {
  std::vector<CandidatePair> pairs;
  for (const auto& [key, a_records] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    for (uint32_t ra : a_records) {
      for (uint32_t rb : it->second) pairs.push_back({ra, rb});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

BlockingKeyFunction SoundexNameKey(const std::string& secret_key) {
  return [secret_key](const Schema& schema, const Record& record) {
    std::vector<std::string> keys;
    const int last_idx = schema.FieldIndex("last_name");
    const int first_idx = schema.FieldIndex("first_name");
    std::string material = "snk\x1f";
    if (last_idx >= 0 && static_cast<size_t>(last_idx) < record.values.size()) {
      material += Soundex(record.values[static_cast<size_t>(last_idx)]);
    }
    material += '\x1f';
    if (first_idx >= 0 && static_cast<size_t>(first_idx) < record.values.size() &&
        !record.values[static_cast<size_t>(first_idx)].empty()) {
      material += ToLower(record.values[static_cast<size_t>(first_idx)].substr(0, 1));
    }
    keys.push_back(DigestToHex(HmacSha256(secret_key, material)).substr(0, 16));
    return keys;
  };
}

BlockingKeyFunction ExactAttributeKey(const std::string& field_name,
                                      const std::string& secret_key) {
  return [field_name, secret_key](const Schema& schema, const Record& record) {
    std::vector<std::string> keys;
    const int idx = schema.FieldIndex(field_name);
    if (idx >= 0 && static_cast<size_t>(idx) < record.values.size()) {
      const std::string material = "eak\x1f" + field_name + "\x1f" +
                                   NormalizeQid(record.values[static_cast<size_t>(idx)]);
      keys.push_back(DigestToHex(HmacSha256(secret_key, material)).substr(0, 16));
    }
    return keys;
  };
}

SortedNeighborhoodBlocker::SortedNeighborhoodBlocker(BlockingKeyFunction key_function,
                                                     size_t window)
    : key_function_(std::move(key_function)), window_(window < 2 ? 2 : window) {}

std::vector<CandidatePair> SortedNeighborhoodBlocker::CandidatePairs(
    const Database& a, const Database& b) const {
  struct Entry {
    std::string key;
    uint32_t index;
    bool from_a;
  };
  std::vector<Entry> entries;
  entries.reserve(a.records.size() + b.records.size());
  for (uint32_t i = 0; i < a.records.size(); ++i) {
    for (const std::string& key : key_function_(a.schema, a.records[i])) {
      entries.push_back({key, i, true});
    }
  }
  for (uint32_t i = 0; i < b.records.size(); ++i) {
    for (const std::string& key : key_function_(b.schema, b.records[i])) {
      entries.push_back({key, i, false});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.key < y.key; });

  std::set<CandidatePair> pairs;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size() && j < i + window_; ++j) {
      if (entries[i].from_a == entries[j].from_a) continue;
      const Entry& ea = entries[i].from_a ? entries[i] : entries[j];
      const Entry& eb = entries[i].from_a ? entries[j] : entries[i];
      pairs.insert({ea.index, eb.index});
    }
  }
  return std::vector<CandidatePair>(pairs.begin(), pairs.end());
}

std::vector<CandidatePair> FullPairs(size_t size_a, size_t size_b) {
  std::vector<CandidatePair> pairs;
  pairs.reserve(size_a * size_b);
  for (uint32_t i = 0; i < size_a; ++i) {
    for (uint32_t j = 0; j < size_b; ++j) pairs.push_back({i, j});
  }
  return pairs;
}

}  // namespace pprl
