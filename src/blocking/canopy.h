#ifndef PPRL_BLOCKING_CANOPY_H_
#define PPRL_BLOCKING_CANOPY_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "blocking/blocking.h"
#include "encoding/minhash.h"

namespace pprl {

/// Canopy clustering over MinHash signatures (the cheap-distance canopy
/// technique applied to encoded records).
///
/// Records of both databases are thrown into overlapping "canopies" using
/// the inexpensive MinHash Jaccard estimate: a random seed record collects
/// everything within `loose_threshold`; records within `tight_threshold`
/// are removed from the seed pool. Candidate pairs are cross-database pairs
/// sharing a canopy. Unlike exact-key blocking this tolerates fuzzy
/// similarity; unlike LSH it produces variable-radius clusters.
class CanopyBlocker {
 public:
  /// `tight_threshold` must be >= `loose_threshold` (both Jaccard in [0,1]).
  CanopyBlocker(double loose_threshold, double tight_threshold, uint64_t seed);

  /// Builds canopies over the union of both signature sets and returns the
  /// cross-database candidate pairs.
  std::vector<CandidatePair> CandidatePairs(
      const std::vector<MinHashSignature>& a_signatures,
      const std::vector<MinHashSignature>& b_signatures);

  /// Number of canopies formed by the last CandidatePairs call.
  size_t last_num_canopies() const { return last_num_canopies_; }

 private:
  double loose_threshold_;
  double tight_threshold_;
  Rng rng_;
  size_t last_num_canopies_ = 0;
};

}  // namespace pprl

#endif  // PPRL_BLOCKING_CANOPY_H_
