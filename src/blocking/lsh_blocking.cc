#include "blocking/lsh_blocking.h"

#include <cmath>

namespace pprl {

HammingLshBlocker::HammingLshBlocker(size_t filter_bits, size_t num_tables,
                                     size_t bits_per_key, Rng& rng)
    : filter_bits_(filter_bits) {
  positions_.resize(num_tables);
  for (auto& table : positions_) {
    table.reserve(bits_per_key);
    for (size_t i = 0; i < bits_per_key; ++i) {
      table.push_back(static_cast<uint32_t>(rng.NextUint64(filter_bits)));
    }
  }
}

std::vector<std::string> HammingLshBlocker::Keys(const BitVector& bf) const {
  std::vector<std::string> keys;
  keys.reserve(positions_.size());
  for (size_t t = 0; t < positions_.size(); ++t) {
    std::string key = "t" + std::to_string(t) + ":";
    key.reserve(key.size() + positions_[t].size());
    for (uint32_t pos : positions_[t]) key += bf.Get(pos) ? '1' : '0';
    keys.push_back(std::move(key));
  }
  return keys;
}

BlockIndex HammingLshBlocker::BuildIndex(const std::vector<BitVector>& filters) const {
  BlockIndex index;
  for (uint32_t i = 0; i < filters.size(); ++i) {
    for (std::string& key : Keys(filters[i])) {
      index[std::move(key)].push_back(i);
    }
  }
  return index;
}

std::vector<CandidatePair> HammingLshBlocker::CandidatePairs(const BlockIndex& a,
                                                             const BlockIndex& b) {
  return StandardBlocker::CandidatePairs(a, b);
}

double HammingLshBlocker::CollisionProbability(size_t hamming_distance) const {
  if (filter_bits_ == 0 || positions_.empty()) return 0;
  const double agree =
      1.0 - static_cast<double>(hamming_distance) / static_cast<double>(filter_bits_);
  const double per_table = std::pow(agree, static_cast<double>(bits_per_key()));
  return 1.0 - std::pow(1.0 - per_table, static_cast<double>(num_tables()));
}

MinHashLshBlocker::MinHashLshBlocker(size_t bands, size_t rows_per_band)
    : bands_(bands), rows_per_band_(rows_per_band) {}

std::vector<std::string> MinHashLshBlocker::Keys(const MinHashSignature& signature) const {
  std::vector<std::string> keys;
  keys.reserve(bands_);
  for (size_t band = 0; band < bands_; ++band) {
    std::string key = "b" + std::to_string(band) + ":";
    for (size_t r = 0; r < rows_per_band_; ++r) {
      const size_t idx = band * rows_per_band_ + r;
      if (idx >= signature.size()) break;
      key += std::to_string(signature[idx]);
      key += ',';
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

BlockIndex MinHashLshBlocker::BuildIndex(
    const std::vector<MinHashSignature>& signatures) const {
  BlockIndex index;
  for (uint32_t i = 0; i < signatures.size(); ++i) {
    for (std::string& key : Keys(signatures[i])) {
      index[std::move(key)].push_back(i);
    }
  }
  return index;
}

std::vector<CandidatePair> MinHashLshBlocker::CandidatePairs(const BlockIndex& a,
                                                             const BlockIndex& b) {
  return StandardBlocker::CandidatePairs(a, b);
}

double MinHashLshBlocker::CollisionProbability(double jaccard) const {
  const double per_band = std::pow(jaccard, static_cast<double>(rows_per_band_));
  return 1.0 - std::pow(1.0 - per_band, static_cast<double>(bands_));
}

}  // namespace pprl
