#ifndef PPRL_BLOCKING_METABLOCKING_H_
#define PPRL_BLOCKING_METABLOCKING_H_

#include <cstddef>
#include <vector>

#include "blocking/blocking.h"

namespace pprl {

/// Meta-blocking: restructuring a generated block collection so unnecessary
/// comparisons are pruned before matching (survey §3.4 "Meta-blocking",
/// [16, 28]).

/// Block purging: removes every block whose comparison load (|a_block| *
/// |b_block|) exceeds `max_comparisons_per_block`. Oversized blocks stem
/// from frequent key values ("smith") and contribute mostly non-matches.
/// Returns the purged copies of both indexes (keys absent from either side
/// are kept; they cost nothing).
void PurgeBlocks(BlockIndex& a, BlockIndex& b, size_t max_comparisons_per_block);

/// Block filtering: each record keeps only its `keep_fraction` smallest
/// blocks (by that database's block size), dropping it from its largest —
/// least discriminating — blocks.
void FilterBlocks(BlockIndex& index, double keep_fraction);

/// Comparison weighting + pruning (weighted node pruning): candidate pairs
/// are scored by how many blocks they co-occur in (common-blocks scheme);
/// pairs below `min_common_blocks` are pruned. With single-key blocking this
/// is a no-op; with multi-key/LSH blocking it removes chance collisions.
std::vector<CandidatePair> PruneByCommonBlocks(const BlockIndex& a, const BlockIndex& b,
                                               size_t min_common_blocks);

/// Block-size statistics used by the scheduling heuristics of [28].
struct BlockScheduleEntry {
  std::string key;
  size_t comparisons = 0;  ///< |a_block| * |b_block|
};

/// Orders blocks by ascending comparison load — processing cheap,
/// high-precision blocks first lets multi-database pipelines stop early
/// once enough matches are found (block scheduling, [28]).
std::vector<BlockScheduleEntry> ScheduleBlocks(const BlockIndex& a, const BlockIndex& b);

}  // namespace pprl

#endif  // PPRL_BLOCKING_METABLOCKING_H_
