#include "blocking/lsh_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pprl {

namespace {

/// splitmix64 finalizer — full-avalanche mix of a band fingerprint into a
/// table slot. Fingerprints are highly structured (packed filter bits), so
/// the raw value would cluster badly under power-of-two masking.
uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

}  // namespace

uint32_t LshBandIndex::BandTable::Find(uint64_t fp) const {
  if (heads.empty()) return kNoRow;
  const size_t mask = heads.size() - 1;
  size_t i = MixHash(fp) & mask;
  while (heads[i] != kNoRow) {
    if (fingerprints[i] == fp) return heads[i];
    i = (i + 1) & mask;
  }
  return kNoRow;
}

void LshBandIndex::BandTable::Insert(uint64_t fp, uint32_t row) {
  assert(next.size() == row && "rows must be inserted in order");
  next.push_back(kNoRow);
  if (heads.empty() || (used + 1) * 2 > heads.size()) Grow();
  const size_t mask = heads.size() - 1;
  size_t i = MixHash(fp) & mask;
  while (heads[i] != kNoRow) {
    if (fingerprints[i] == fp) {
      next[row] = heads[i];
      heads[i] = row;
      return;
    }
    i = (i + 1) & mask;
  }
  fingerprints[i] = fp;
  heads[i] = row;
  ++used;
}

void LshBandIndex::BandTable::Grow() {
  const size_t capacity = heads.empty() ? 1024 : heads.size() * 2;
  std::vector<uint64_t> old_fps = std::move(fingerprints);
  std::vector<uint32_t> old_heads = std::move(heads);
  fingerprints.assign(capacity, 0);
  heads.assign(capacity, kNoRow);
  const size_t mask = capacity - 1;
  for (size_t s = 0; s < old_heads.size(); ++s) {
    if (old_heads[s] == kNoRow) continue;
    size_t i = MixHash(old_fps[s]) & mask;
    while (heads[i] != kNoRow) i = (i + 1) & mask;
    fingerprints[i] = old_fps[s];
    heads[i] = old_heads[s];
  }
}

LshBandIndex::LshBandIndex(size_t filter_bits, size_t num_tables,
                           size_t bits_per_key, uint64_t seed)
    : rng_(seed),
      blocker_(filter_bits, num_tables, bits_per_key, rng_),
      tables_(num_tables),
      rows_(0, filter_bits),
      band_checksum_(kFnvOffset) {}

uint64_t LshBandIndex::FingerprintWords(const uint64_t* words,
                                        size_t table) const {
  const std::vector<uint32_t>& positions = blocker_.positions()[table];
  if (positions.size() <= 64) {
    // Packed sampled bits: injective, so fingerprint equality IS string-key
    // equality of HammingLshBlocker::Keys for this table.
    uint64_t fp = 0;
    for (size_t i = 0; i < positions.size(); ++i) {
      fp |= ((words[positions[i] >> 6] >> (positions[i] & 63)) & 1) << i;
    }
    return fp;
  }
  uint64_t h = kFnvOffset;
  for (uint32_t pos : positions) {
    h = (h ^ ((words[pos >> 6] >> (pos & 63)) & 1)) * kFnvPrime;
  }
  return h;
}

uint64_t LshBandIndex::BandFingerprint(const BitVector& bf,
                                       size_t table) const {
  assert(bf.size() == filter_bits());
  return FingerprintWords(bf.words().data(), table);
}

void LshBandIndex::IndexRow(uint32_t row) {
  const uint64_t* words = rows_.row(row);
  for (size_t t = 0; t < tables_.size(); ++t) {
    const uint64_t fp = FingerprintWords(words, t);
    tables_[t].Insert(fp, row);
    for (int b = 0; b < 8; ++b) {
      band_checksum_ = (band_checksum_ ^ ((fp >> (8 * b)) & 0xff)) * kFnvPrime;
    }
  }
}

uint32_t LshBandIndex::Append(const BitVector& filter) {
  assert(filter.size() == filter_bits());
  const uint32_t row = static_cast<uint32_t>(rows_.AppendRow(filter));
  IndexRow(row);
  return row;
}

uint32_t LshBandIndex::AppendFrom(const BitMatrix& src, size_t src_row) {
  assert(src.num_bits() == rows_.num_bits());
  const uint32_t row = static_cast<uint32_t>(rows_.AppendRow());
  std::memcpy(rows_.mutable_row(row), src.row(src_row),
              rows_.words_per_row() * sizeof(uint64_t));
  rows_.RecountRow(row);
  IndexRow(row);
  return row;
}

void LshBandIndex::Probe(const BitVector& probe,
                         std::vector<uint32_t>* out) const {
  out->clear();
  uint64_t scanned = 0;
  for (size_t t = 0; t < tables_.size(); ++t) {
    const BandTable& table = tables_[t];
    for (uint32_t row = table.Find(BandFingerprint(probe, t)); row != kNoRow;
         row = table.next[row]) {
      out->push_back(row);
      ++scanned;
    }
  }
  probed_entries_.fetch_add(scanned, std::memory_order_relaxed);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace pprl
