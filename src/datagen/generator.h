#ifndef PPRL_DATAGEN_GENERATOR_H_
#define PPRL_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "datagen/corruptor.h"

namespace pprl {

/// Configuration for the synthetic person-data generator.
struct GeneratorConfig {
  uint64_t seed = 42;
  /// Zipf skew of name/city frequency distributions; 0 makes them uniform.
  double zipf_skew = 1.0;
  /// Birth years are drawn uniformly from [min_birth_year, max_birth_year].
  int min_birth_year = 1935;
  int max_birth_year = 2005;
};

/// Configuration for generating a pair (or set) of overlapping databases for
/// a linkage experiment.
struct LinkageScenarioConfig {
  size_t records_per_database = 1000;
  size_t num_databases = 2;
  /// Fraction of each database's records whose entity also appears in every
  /// other database (the true matches).
  double overlap = 0.5;
  /// Corruption applied to non-first copies of an entity's record.
  CorruptorConfig corruption;
  /// If true the first database is also corrupted (dirty-dirty linkage);
  /// otherwise only databases 2..p are (clean-dirty).
  bool corrupt_all_databases = false;
};

/// GeCo-style synthetic person-data generator [37].
///
/// Produces databases with the standard PPRL evaluation schema
///   first_name, last_name, sex, dob, city, street, postcode, phone
/// using Zipf-skewed lookup tables, so value frequencies mirror real person
/// data (which is what frequency attacks and blocking-skew effects need).
class DataGenerator {
 public:
  explicit DataGenerator(GeneratorConfig config);

  /// The schema all generated databases share.
  static Schema StandardSchema();

  /// Generates `n` clean records with entity ids starting at `first_entity`.
  Database GenerateClean(size_t n, uint64_t first_entity = 0);

  /// Generates a database organised into households: members of one
  /// household share the surname, street address, city, postcode and phone
  /// while keeping individual first names, sexes and birth dates. This
  /// reproduces the family structure of real person databases — the reason
  /// address/surname blocking keys produce heavily skewed blocks and
  /// different people can agree on most QIDs (hard non-matches).
  /// Household sizes are 1 + Binomial-ish around `mean_household_size`.
  Database GenerateHouseholds(size_t num_households, double mean_household_size = 2.6,
                              uint64_t first_entity = 0);

  /// Generates a multi-database linkage scenario: `config.num_databases`
  /// databases that share `overlap * records_per_database` entities, with
  /// duplicates corrupted per `config.corruption`.
  Result<std::vector<Database>> GenerateScenario(const LinkageScenarioConfig& config);

 private:
  Record GenerateRecord(uint64_t record_id, uint64_t entity_id);

  GeneratorConfig config_;
  Rng rng_;
};

}  // namespace pprl

#endif  // PPRL_DATAGEN_GENERATOR_H_
