#ifndef PPRL_DATAGEN_IO_H_
#define PPRL_DATAGEN_IO_H_

#include <string>

#include "common/csv.h"
#include "common/record.h"
#include "common/status.h"

namespace pprl {

/// CSV import/export of databases, so the toolkit links real files, not
/// only generated data.
///
/// The on-disk layout is one header row naming the QID columns, with two
/// optional leading bookkeeping columns:
///   * "id"        — per-database record id (generated if absent)
///   * "entity_id" — ground-truth entity (evaluation only; 0 if absent)
/// All remaining columns become string-typed schema fields unless their
/// name is recognised ("dob" -> date, "sex" -> categorical).

/// Converts a parsed CSV table into a Database.
Result<Database> DatabaseFromCsv(const CsvTable& table);

/// Reads and converts a CSV file.
Result<Database> ReadDatabaseCsv(const std::string& path);

/// Converts a database into a CSV table (id and entity_id included when
/// `include_entity_ids`; omit them for files leaving the evaluation realm).
CsvTable DatabaseToCsv(const Database& db, bool include_entity_ids = true);

/// Writes a database to a CSV file.
Status WriteDatabaseCsv(const std::string& path, const Database& db,
                        bool include_entity_ids = true);

}  // namespace pprl

#endif  // PPRL_DATAGEN_IO_H_
