#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "datagen/lookup_data.h"

namespace pprl {

DataGenerator::DataGenerator(GeneratorConfig config)
    : config_(config), rng_(config.seed) {}

Schema DataGenerator::StandardSchema() {
  return Schema{{
      {"first_name", FieldType::kString},
      {"last_name", FieldType::kString},
      {"sex", FieldType::kCategorical},
      {"dob", FieldType::kDate},
      {"city", FieldType::kString},
      {"street", FieldType::kString},
      {"postcode", FieldType::kString},
      {"phone", FieldType::kString},
  }};
}

namespace {

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

std::string TwoDigits(int v) {
  std::string s = std::to_string(v);
  return s.size() < 2 ? "0" + s : s;
}

}  // namespace

Record DataGenerator::GenerateRecord(uint64_t record_id, uint64_t entity_id) {
  // Lazily built Zipf samplers shared across calls.
  static thread_local double cached_skew = -1;
  static thread_local std::unique_ptr<ZipfDistribution> female, male, last, city, street;
  if (cached_skew != config_.zipf_skew) {
    const double s = config_.zipf_skew;
    female = std::make_unique<ZipfDistribution>(datagen::kNumFemaleFirstNames, s);
    male = std::make_unique<ZipfDistribution>(datagen::kNumMaleFirstNames, s);
    last = std::make_unique<ZipfDistribution>(datagen::kNumLastNames, s);
    city = std::make_unique<ZipfDistribution>(datagen::kNumCities, s);
    street = std::make_unique<ZipfDistribution>(datagen::kNumStreetNames, s);
    cached_skew = s;
  }

  Record r;
  r.id = record_id;
  r.entity_id = entity_id;
  const bool is_female = rng_.NextBool();
  const std::string first_name(
      is_female ? datagen::kFemaleFirstNames[female->Sample(rng_)]
                : datagen::kMaleFirstNames[male->Sample(rng_)]);
  const std::string last_name(datagen::kLastNames[last->Sample(rng_)]);

  const int year = static_cast<int>(
      rng_.NextInt(config_.min_birth_year, config_.max_birth_year));
  const int month = static_cast<int>(rng_.NextInt(1, 12));
  const int day = static_cast<int>(rng_.NextInt(1, DaysInMonth(year, month)));
  const std::string dob =
      std::to_string(year) + "-" + TwoDigits(month) + "-" + TwoDigits(day);

  const std::string house = std::to_string(rng_.NextInt(1, 999));
  const std::string street_name(datagen::kStreetNames[street->Sample(rng_)]);
  const std::string postcode = std::to_string(rng_.NextInt(1000, 9999));
  std::string phone = "04";
  for (int i = 0; i < 8; ++i) phone += static_cast<char>('0' + rng_.NextUint64(10));

  r.values = {first_name,
              last_name,
              is_female ? "f" : "m",
              dob,
              std::string(datagen::kCities[city->Sample(rng_)]),
              house + " " + street_name,
              postcode,
              phone};
  return r;
}

Database DataGenerator::GenerateClean(size_t n, uint64_t first_entity) {
  Database db;
  db.schema = StandardSchema();
  db.records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    db.records.push_back(GenerateRecord(i, first_entity + i));
  }
  return db;
}

Database DataGenerator::GenerateHouseholds(size_t num_households,
                                           double mean_household_size,
                                           uint64_t first_entity) {
  Database db;
  db.schema = StandardSchema();
  uint64_t next_entity = first_entity;
  uint64_t record_id = 0;
  for (size_t h = 0; h < num_households; ++h) {
    // Household head defines the shared fields.
    Record head = GenerateRecord(record_id++, next_entity++);
    db.records.push_back(head);
    // Additional members: geometric-ish tail around the requested mean.
    size_t extra = 0;
    const double p_extra = 1.0 - 1.0 / std::max(1.0, mean_household_size);
    while (extra < 7 && rng_.NextBool(p_extra)) ++extra;
    for (size_t m = 0; m < extra; ++m) {
      Record member = GenerateRecord(record_id++, next_entity++);
      // Shared family fields: last_name, city, street, postcode, phone.
      member.values[1] = head.values[1];
      member.values[4] = head.values[4];
      member.values[5] = head.values[5];
      member.values[6] = head.values[6];
      member.values[7] = head.values[7];
      db.records.push_back(std::move(member));
    }
  }
  return db;
}

Result<std::vector<Database>> DataGenerator::GenerateScenario(
    const LinkageScenarioConfig& config) {
  if (config.num_databases < 2) {
    return Status::InvalidArgument("a linkage scenario needs >= 2 databases");
  }
  if (config.overlap < 0 || config.overlap > 1) {
    return Status::InvalidArgument("overlap must be in [0, 1]");
  }
  const size_t n = config.records_per_database;
  const size_t shared = static_cast<size_t>(static_cast<double>(n) * config.overlap);

  // Entity pool: `shared` entities appear in every database; each database
  // additionally gets (n - shared) entities of its own.
  const Schema schema = StandardSchema();
  std::vector<Record> shared_masters;
  shared_masters.reserve(shared);
  uint64_t next_entity = 0;
  for (size_t i = 0; i < shared; ++i) {
    shared_masters.push_back(GenerateRecord(0, next_entity++));
  }

  Corruptor corruptor(config.corruption, config_.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<Database> out(config.num_databases);
  for (size_t d = 0; d < config.num_databases; ++d) {
    Database& db = out[d];
    db.schema = schema;
    db.records.reserve(n);
    uint64_t record_id = 0;
    for (const Record& master : shared_masters) {
      Record copy = master;
      copy.id = record_id++;
      const bool corrupt = config.corrupt_all_databases || d > 0;
      db.records.push_back(corrupt ? corruptor.Corrupt(schema, copy) : copy);
    }
    for (size_t i = shared; i < n; ++i) {
      Record r = GenerateRecord(record_id++, next_entity++);
      db.records.push_back(std::move(r));
    }
    // Shuffle so shared entities are not a positional prefix.
    rng_.Shuffle(db.records);
    for (size_t i = 0; i < db.records.size(); ++i) db.records[i].id = i;
  }
  return out;
}

}  // namespace pprl
