#ifndef PPRL_DATAGEN_LOOKUP_DATA_H_
#define PPRL_DATAGEN_LOOKUP_DATA_H_

#include <cstddef>
#include <string_view>

namespace pprl::datagen {

/// Embedded lookup tables for the synthetic person-data generator, in
/// descending real-world frequency order so Zipf sampling reproduces the
/// skewed value distributions that frequency attacks exploit.

extern const std::string_view kFemaleFirstNames[];
extern const size_t kNumFemaleFirstNames;

extern const std::string_view kMaleFirstNames[];
extern const size_t kNumMaleFirstNames;

extern const std::string_view kLastNames[];
extern const size_t kNumLastNames;

extern const std::string_view kCities[];
extern const size_t kNumCities;

extern const std::string_view kStreetNames[];
extern const size_t kNumStreetNames;

/// Nickname pairs (canonical, variant) used by the corruptor's name-variation
/// operator.
struct NicknamePair {
  std::string_view canonical;
  std::string_view variant;
};
extern const NicknamePair kNicknames[];
extern const size_t kNumNicknames;

/// OCR confusion pairs (read, misread) used by the OCR corruption operator.
struct OcrPair {
  std::string_view from;
  std::string_view to;
};
extern const OcrPair kOcrConfusions[];
extern const size_t kNumOcrConfusions;

/// QWERTY adjacency for keyboard typos: for a lower-case letter or digit,
/// returns the string of neighbouring keys (empty when unknown).
std::string_view KeyboardNeighbors(char c);

}  // namespace pprl::datagen

#endif  // PPRL_DATAGEN_LOOKUP_DATA_H_
