#include "datagen/lookup_data.h"

namespace pprl::datagen {

const std::string_view kFemaleFirstNames[] = {
    "mary",      "patricia",  "jennifer",  "linda",     "elizabeth", "barbara",
    "susan",     "jessica",   "sarah",     "karen",     "lisa",      "nancy",
    "betty",     "margaret",  "sandra",    "ashley",    "kimberly",  "emily",
    "donna",     "michelle",  "carol",     "amanda",    "dorothy",   "melissa",
    "deborah",   "stephanie", "rebecca",   "sharon",    "laura",     "cynthia",
    "kathleen",  "amy",       "angela",    "shirley",   "anna",      "brenda",
    "pamela",    "emma",      "nicole",    "helen",     "samantha",  "katherine",
    "christine", "debra",     "rachel",    "carolyn",   "janet",     "catherine",
    "maria",     "heather",   "diane",     "ruth",      "julie",     "olivia",
    "joyce",     "virginia",  "victoria",  "kelly",     "lauren",    "christina",
    "joan",      "evelyn",    "judith",    "megan",     "andrea",    "cheryl",
    "hannah",    "jacqueline", "martha",   "gloria",    "teresa",    "ann",
    "sara",      "madison",   "frances",   "kathryn",   "janice",    "jean",
    "abigail",   "alice",     "julia",     "judy",      "sophia",    "grace",
    "denise",    "amber",     "doris",     "marilyn",   "danielle",  "beverly",
    "isabella",  "theresa",   "diana",     "natalie",   "brittany",  "charlotte",
    "marie",     "kayla",     "alexis",    "lori",
};
const size_t kNumFemaleFirstNames = sizeof(kFemaleFirstNames) / sizeof(kFemaleFirstNames[0]);

const std::string_view kMaleFirstNames[] = {
    "james",    "robert",   "john",     "michael",  "david",    "william",
    "richard",  "joseph",   "thomas",   "charles",  "christopher", "daniel",
    "matthew",  "anthony",  "mark",     "donald",   "steven",   "paul",
    "andrew",   "joshua",   "kenneth",  "kevin",    "brian",    "george",
    "timothy",  "ronald",   "edward",   "jason",    "jeffrey",  "ryan",
    "jacob",    "gary",     "nicholas", "eric",     "jonathan", "stephen",
    "larry",    "justin",   "scott",    "brandon",  "benjamin", "samuel",
    "gregory",  "alexander", "frank",   "patrick",  "raymond",  "jack",
    "dennis",   "jerry",    "tyler",    "aaron",    "jose",     "adam",
    "nathan",   "henry",    "douglas",  "zachary",  "peter",    "kyle",
    "ethan",    "walter",   "noah",     "jeremy",   "christian", "keith",
    "roger",    "terry",    "gerald",   "harold",   "sean",     "austin",
    "carl",     "arthur",   "lawrence", "dylan",    "jesse",    "jordan",
    "bryan",    "billy",    "joe",      "bruce",    "gabriel",  "logan",
    "albert",   "willie",   "alan",     "juan",     "wayne",    "elijah",
    "randy",    "roy",      "vincent",  "ralph",    "eugene",   "russell",
    "bobby",    "mason",    "philip",   "louis",
};
const size_t kNumMaleFirstNames = sizeof(kMaleFirstNames) / sizeof(kMaleFirstNames[0]);

const std::string_view kLastNames[] = {
    "smith",     "johnson",  "williams", "brown",    "jones",    "garcia",
    "miller",    "davis",    "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez",  "wilson",   "anderson", "thomas",   "taylor",   "moore",
    "jackson",   "martin",   "lee",      "perez",    "thompson", "white",
    "harris",    "sanchez",  "clark",    "ramirez",  "lewis",    "robinson",
    "walker",    "young",    "allen",    "king",     "wright",   "scott",
    "torres",    "nguyen",   "hill",     "flores",   "green",    "adams",
    "nelson",    "baker",    "hall",     "rivera",   "campbell", "mitchell",
    "carter",    "roberts",  "gomez",    "phillips", "evans",    "turner",
    "diaz",      "parker",   "cruz",     "edwards",  "collins",  "reyes",
    "stewart",   "morris",   "morales",  "murphy",   "cook",     "rogers",
    "gutierrez", "ortiz",    "morgan",   "cooper",   "peterson", "bailey",
    "reed",      "kelly",    "howard",   "ramos",    "kim",      "cox",
    "ward",      "richardson", "watson", "brooks",   "chavez",   "wood",
    "james",     "bennett",  "gray",     "mendoza",  "ruiz",     "hughes",
    "price",     "alvarez",  "castillo", "sanders",  "patel",    "myers",
    "long",      "ross",     "foster",   "jimenez",
};
const size_t kNumLastNames = sizeof(kLastNames) / sizeof(kLastNames[0]);

const std::string_view kCities[] = {
    "springfield", "riverton",   "fairview",   "greenville", "bristol",
    "clinton",     "franklin",   "salem",      "madison",    "georgetown",
    "arlington",   "ashland",    "burlington", "manchester", "oxford",
    "clayton",     "milton",     "dover",      "newport",    "hudson",
    "kingston",    "lexington",  "milford",    "winchester", "oakland",
    "jackson",     "auburn",     "dayton",     "lancaster",  "monroe",
    "glendale",    "centerville", "hamilton",  "aurora",     "florence",
    "lebanon",     "portland",   "richmond",   "danville",   "hillsboro",
    "brookfield",  "camden",     "chester",    "columbia",   "dallas",
    "eastwood",    "edgewater",  "elmwood",    "everett",    "freeport",
};
const size_t kNumCities = sizeof(kCities) / sizeof(kCities[0]);

const std::string_view kStreetNames[] = {
    "main st",    "oak ave",    "park rd",    "maple dr",    "cedar ln",
    "elm st",     "pine st",    "washington ave", "lake rd", "hill st",
    "church st",  "high st",    "school rd",  "mill ln",     "river rd",
    "spring st",  "ridge ave",  "valley dr",  "forest ln",   "meadow ct",
    "sunset blvd", "broadway",  "market st",  "union st",    "franklin ave",
    "highland ave", "prospect st", "grove st", "chestnut st", "walnut st",
};
const size_t kNumStreetNames = sizeof(kStreetNames) / sizeof(kStreetNames[0]);

const NicknamePair kNicknames[] = {
    {"william", "bill"},    {"william", "will"},    {"robert", "bob"},
    {"robert", "rob"},      {"richard", "dick"},    {"richard", "rick"},
    {"james", "jim"},       {"james", "jimmy"},     {"john", "jack"},
    {"michael", "mike"},    {"christopher", "chris"}, {"joseph", "joe"},
    {"thomas", "tom"},      {"charles", "chuck"},   {"charles", "charlie"},
    {"daniel", "dan"},      {"matthew", "matt"},    {"anthony", "tony"},
    {"donald", "don"},      {"steven", "steve"},    {"andrew", "andy"},
    {"joshua", "josh"},     {"kenneth", "ken"},     {"timothy", "tim"},
    {"edward", "ed"},       {"edward", "ted"},      {"jeffrey", "jeff"},
    {"nicholas", "nick"},   {"jonathan", "jon"},    {"stephen", "steve"},
    {"benjamin", "ben"},    {"samuel", "sam"},      {"gregory", "greg"},
    {"alexander", "alex"},  {"patrick", "pat"},     {"raymond", "ray"},
    {"elizabeth", "liz"},   {"elizabeth", "beth"},  {"elizabeth", "betty"},
    {"jennifer", "jen"},    {"jennifer", "jenny"},  {"patricia", "pat"},
    {"patricia", "patty"},  {"margaret", "maggie"}, {"margaret", "peggy"},
    {"barbara", "barb"},    {"susan", "sue"},       {"deborah", "debbie"},
    {"rebecca", "becky"},   {"kathleen", "kathy"},  {"katherine", "kate"},
    {"katherine", "katie"}, {"christine", "chris"}, {"jacqueline", "jackie"},
    {"victoria", "vicky"},  {"kimberly", "kim"},    {"samantha", "sam"},
    {"abigail", "abby"},    {"sandra", "sandy"},    {"pamela", "pam"},
};
const size_t kNumNicknames = sizeof(kNicknames) / sizeof(kNicknames[0]);

const OcrPair kOcrConfusions[] = {
    {"o", "0"}, {"0", "o"}, {"l", "1"}, {"1", "l"}, {"i", "1"}, {"s", "5"},
    {"5", "s"}, {"b", "6"}, {"g", "9"}, {"z", "2"}, {"rn", "m"}, {"m", "rn"},
    {"cl", "d"}, {"d", "cl"}, {"vv", "w"}, {"w", "vv"}, {"e", "c"}, {"c", "e"},
    {"u", "v"}, {"v", "u"}, {"nn", "m"}, {"h", "b"},
};
const size_t kNumOcrConfusions = sizeof(kOcrConfusions) / sizeof(kOcrConfusions[0]);

std::string_view KeyboardNeighbors(char c) {
  switch (c) {
    case 'q': return "wa";
    case 'w': return "qes";
    case 'e': return "wrd";
    case 'r': return "etf";
    case 't': return "ryg";
    case 'y': return "tuh";
    case 'u': return "yij";
    case 'i': return "uok";
    case 'o': return "ipl";
    case 'p': return "ol";
    case 'a': return "qsz";
    case 's': return "awdx";
    case 'd': return "sefc";
    case 'f': return "drgv";
    case 'g': return "fthb";
    case 'h': return "gyjn";
    case 'j': return "hukm";
    case 'k': return "jilm";
    case 'l': return "kop";
    case 'z': return "asx";
    case 'x': return "zsdc";
    case 'c': return "xdfv";
    case 'v': return "cfgb";
    case 'b': return "vghn";
    case 'n': return "bhjm";
    case 'm': return "njk";
    case '0': return "19";
    case '1': return "02";
    case '2': return "13";
    case '3': return "24";
    case '4': return "35";
    case '5': return "46";
    case '6': return "57";
    case '7': return "68";
    case '8': return "79";
    case '9': return "80";
    default: return "";
  }
}

}  // namespace pprl::datagen
