#ifndef PPRL_DATAGEN_CORRUPTOR_H_
#define PPRL_DATAGEN_CORRUPTOR_H_

#include <string>

#include "common/random.h"
#include "common/record.h"

namespace pprl {

/// The corruption operators of a GeCo-style data corruptor [37]. Each takes
/// a clean value and returns a realistically dirtied variant; which fields
/// they apply to is decided by the `Corruptor` driver.
namespace corruption {

/// One keyboard typo: substitution with an adjacent key, insertion,
/// deletion, or transposition of neighbouring characters.
std::string KeyboardTypo(const std::string& value, Rng& rng);

/// One OCR confusion ("m" -> "rn", "o" -> "0", ...). Falls back to a typo
/// when no confusable substring occurs.
std::string OcrError(const std::string& value, Rng& rng);

/// A phonetic respelling (sound-preserving edit such as "ph" -> "f",
/// doubling/undoubling letters, vowel swaps).
std::string PhoneticVariation(const std::string& value, Rng& rng);

/// Replaces a first name by a known nickname (or the reverse); returns the
/// input unchanged when no nickname is known.
std::string NicknameVariation(const std::string& value, Rng& rng);

/// Perturbs an ISO date by one of: day +-1..3, month +-1, day/month swap
/// (when valid), or year +-1.
std::string DateError(const std::string& iso_date, Rng& rng);

}  // namespace corruption

/// Per-record corruption policy.
struct CorruptorConfig {
  /// Average number of corruption operations applied to a duplicate record.
  /// The actual count is Poisson-like: each of `max_corruptions_per_record`
  /// trials fires with probability mean/max.
  double mean_corruptions = 2.0;
  size_t max_corruptions_per_record = 5;
  /// Probability that a corruption hitting a field clears it entirely
  /// (missing value), as dirty real-world data does.
  double missing_value_prob = 0.1;
  /// Probability of swapping first and last name when both exist.
  double name_swap_prob = 0.05;
};

/// Applies realistic corruption to records under a schema with the standard
/// generator fields (first_name, last_name, sex, dob, city, ...).
class Corruptor {
 public:
  Corruptor(CorruptorConfig config, uint64_t seed);

  /// Returns a corrupted copy of `record`; `schema` tells the corruptor the
  /// type of each field.
  Record Corrupt(const Schema& schema, const Record& record);

  /// Applies exactly `num_ops` corruption operations (for parameter sweeps
  /// that control dirtiness exactly).
  Record CorruptExactly(const Schema& schema, const Record& record, size_t num_ops);

 private:
  void ApplyOneCorruption(const Schema& schema, Record& record);

  CorruptorConfig config_;
  Rng rng_;
};

}  // namespace pprl

#endif  // PPRL_DATAGEN_CORRUPTOR_H_
