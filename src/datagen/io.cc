#include "datagen/io.h"

#include <cstdlib>

#include "common/strings.h"
#include "io/ingest.h"

namespace pprl {

Result<Database> DatabaseFromCsv(const CsvTable& table) {
  const int id_col = table.ColumnIndex("id");
  const int entity_col = table.ColumnIndex("entity_id");

  Database db;
  for (size_t c = 0; c < table.header.size(); ++c) {
    if (static_cast<int>(c) == id_col || static_cast<int>(c) == entity_col) continue;
    db.schema.fields.push_back(
        {table.header[c], GuessFieldTypeFromName(table.header[c])});
  }
  if (db.schema.fields.empty()) {
    return Status::InvalidArgument("CSV has no QID columns");
  }

  db.records.reserve(table.rows.size());
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    Record record;
    record.id = r;
    if (id_col >= 0 && IsInteger(row[static_cast<size_t>(id_col)])) {
      record.id = static_cast<uint64_t>(
          std::strtoull(row[static_cast<size_t>(id_col)].c_str(), nullptr, 10));
    }
    if (entity_col >= 0 && IsInteger(row[static_cast<size_t>(entity_col)])) {
      record.entity_id = static_cast<uint64_t>(
          std::strtoull(row[static_cast<size_t>(entity_col)].c_str(), nullptr, 10));
    }
    record.values.reserve(db.schema.size());
    for (size_t c = 0; c < table.header.size(); ++c) {
      if (static_cast<int>(c) == id_col || static_cast<int>(c) == entity_col) continue;
      record.values.push_back(row[c]);
    }
    db.records.push_back(std::move(record));
  }
  return db;
}

Result<Database> ReadDatabaseCsv(const std::string& path) {
  // The streaming reader parses the identical dialect and applies the
  // identical schema/bookkeeping rules as DatabaseFromCsv, one buffered
  // window at a time (io/ingest.h); datagen_io_test holds the two paths to
  // identical results.
  return io::ReadDatabaseCsvStream(path);
}

CsvTable DatabaseToCsv(const Database& db, bool include_entity_ids) {
  CsvTable table;
  if (include_entity_ids) {
    table.header = {"id", "entity_id"};
  } else {
    table.header = {"id"};
  }
  for (const FieldSpec& field : db.schema.fields) table.header.push_back(field.name);
  table.rows.reserve(db.records.size());
  for (const Record& record : db.records) {
    std::vector<std::string> row;
    row.push_back(std::to_string(record.id));
    if (include_entity_ids) row.push_back(std::to_string(record.entity_id));
    for (size_t c = 0; c < db.schema.size(); ++c) {
      row.push_back(c < record.values.size() ? record.values[c] : "");
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Status WriteDatabaseCsv(const std::string& path, const Database& db,
                        bool include_entity_ids) {
  return WriteCsvFile(path, DatabaseToCsv(db, include_entity_ids));
}

}  // namespace pprl
