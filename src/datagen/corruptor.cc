#include "datagen/corruptor.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "datagen/lookup_data.h"
#include "encoding/numeric_encoding.h"

namespace pprl {

namespace corruption {

std::string KeyboardTypo(const std::string& value, Rng& rng) {
  if (value.empty()) return value;
  std::string out = value;
  const size_t pos = rng.NextUint64(out.size());
  switch (rng.NextUint64(4)) {
    case 0: {  // adjacent-key substitution
      const std::string_view neighbors = datagen::KeyboardNeighbors(out[pos]);
      if (!neighbors.empty()) {
        out[pos] = neighbors[rng.NextUint64(neighbors.size())];
      } else {
        out[pos] = static_cast<char>('a' + rng.NextUint64(26));
      }
      break;
    }
    case 1: {  // insertion of an adjacent key
      const std::string_view neighbors = datagen::KeyboardNeighbors(out[pos]);
      const char inserted = neighbors.empty()
                                ? static_cast<char>('a' + rng.NextUint64(26))
                                : neighbors[rng.NextUint64(neighbors.size())];
      out.insert(out.begin() + static_cast<long>(pos), inserted);
      break;
    }
    case 2:  // deletion
      out.erase(out.begin() + static_cast<long>(pos));
      break;
    default:  // transposition
      if (pos + 1 < out.size()) {
        std::swap(out[pos], out[pos + 1]);
      } else if (out.size() >= 2) {
        std::swap(out[out.size() - 2], out[out.size() - 1]);
      }
      break;
  }
  return out;
}

std::string OcrError(const std::string& value, Rng& rng) {
  // Collect applicable confusions, then apply one at a random site.
  std::vector<std::pair<size_t, size_t>> sites;  // (position, confusion index)
  for (size_t c = 0; c < datagen::kNumOcrConfusions; ++c) {
    const auto& pair = datagen::kOcrConfusions[c];
    size_t pos = value.find(pair.from);
    while (pos != std::string::npos) {
      sites.emplace_back(pos, c);
      pos = value.find(pair.from, pos + 1);
    }
  }
  if (sites.empty()) return KeyboardTypo(value, rng);
  const auto [pos, c] = sites[rng.NextUint64(sites.size())];
  const auto& pair = datagen::kOcrConfusions[c];
  std::string out = value;
  out.replace(pos, pair.from.size(), pair.to);
  return out;
}

std::string PhoneticVariation(const std::string& value, Rng& rng) {
  // Sound-preserving rewrite rules, applied once at a random eligible site.
  static constexpr std::pair<std::string_view, std::string_view> kRules[] = {
      {"ph", "f"},  {"f", "ph"},  {"c", "k"},   {"k", "c"},   {"z", "s"},
      {"s", "z"},   {"ie", "ei"}, {"ei", "ie"}, {"y", "i"},   {"i", "y"},
      {"ll", "l"},  {"l", "ll"},  {"nn", "n"},  {"tt", "t"},  {"t", "tt"},
      {"mm", "m"},  {"ou", "u"},  {"gh", ""},   {"ck", "k"},  {"x", "ks"},
  };
  std::vector<std::pair<size_t, size_t>> sites;
  for (size_t r = 0; r < sizeof(kRules) / sizeof(kRules[0]); ++r) {
    size_t pos = value.find(kRules[r].first);
    while (pos != std::string::npos) {
      sites.emplace_back(pos, r);
      pos = value.find(kRules[r].first, pos + 1);
    }
  }
  if (sites.empty()) return KeyboardTypo(value, rng);
  const auto [pos, r] = sites[rng.NextUint64(sites.size())];
  std::string out = value;
  out.replace(pos, kRules[r].first.size(), kRules[r].second);
  if (out.empty()) return value;  // "gh" deletion could empty a tiny string
  return out;
}

std::string NicknameVariation(const std::string& value, Rng& rng) {
  std::vector<std::string_view> options;
  for (size_t i = 0; i < datagen::kNumNicknames; ++i) {
    if (datagen::kNicknames[i].canonical == value) {
      options.push_back(datagen::kNicknames[i].variant);
    } else if (datagen::kNicknames[i].variant == value) {
      options.push_back(datagen::kNicknames[i].canonical);
    }
  }
  if (options.empty()) return value;
  return std::string(options[rng.NextUint64(options.size())]);
}

namespace {

std::string FormatIsoDate(int64_t days_since_epoch) {
  // Inverse of DaysSinceEpoch (civil_from_days).
  int64_t z = days_since_epoch + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint64_t doe = static_cast<uint64_t>(z - era * 146097);
  const uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint64_t mp = (5 * doy + 2) / 153;
  const uint64_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint64_t m = mp < 10 ? mp + 3 : mp - 9;
  const int64_t year = y + (m <= 2 ? 1 : 0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", static_cast<int>(year),
                static_cast<unsigned>(m), static_cast<unsigned>(d));
  return buf;
}

}  // namespace

std::string DateError(const std::string& iso_date, Rng& rng) {
  auto days = DaysSinceEpoch(iso_date);
  if (!days.ok()) return iso_date;
  switch (rng.NextUint64(4)) {
    case 0:  // day off by 1..3
      return FormatIsoDate(days.value() + rng.NextInt(1, 3) * (rng.NextBool() ? 1 : -1));
    case 1:  // month off by one (approximately 30 days)
      return FormatIsoDate(days.value() + (rng.NextBool() ? 30 : -30));
    case 2: {  // day/month swap when it yields a valid date
      const std::string swapped =
          iso_date.substr(0, 5) + iso_date.substr(8, 2) + "-" + iso_date.substr(5, 2);
      if (DaysSinceEpoch(swapped).ok() && swapped.substr(5, 2) <= "12") return swapped;
      return FormatIsoDate(days.value() + 1);
    }
    default:  // year off by one
      return FormatIsoDate(days.value() + (rng.NextBool() ? 365 : -365));
  }
}

}  // namespace corruption

Corruptor::Corruptor(CorruptorConfig config, uint64_t seed)
    : config_(config), rng_(seed) {}

void Corruptor::ApplyOneCorruption(const Schema& schema, Record& record) {
  if (record.values.empty()) return;
  // Pick a non-empty field, preferring QID fields over id-like ones.
  size_t field = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    field = rng_.NextUint64(record.values.size());
    if (!record.values[field].empty()) break;
  }
  std::string& value = record.values[field];
  if (value.empty()) return;

  if (rng_.NextBool(config_.missing_value_prob)) {
    value.clear();
    return;
  }

  const FieldType type = field < schema.fields.size() ? schema.fields[field].type
                                                      : FieldType::kString;
  switch (type) {
    case FieldType::kDate:
      value = corruption::DateError(value, rng_);
      break;
    case FieldType::kNumeric: {
      value = corruption::KeyboardTypo(value, rng_);
      break;
    }
    case FieldType::kCategorical:
      // Categorical errors flip to a missing value (clearing is realistic
      // for sex/state codes).
      value.clear();
      break;
    case FieldType::kString: {
      switch (rng_.NextUint64(4)) {
        case 0:
          value = corruption::KeyboardTypo(value, rng_);
          break;
        case 1:
          value = corruption::OcrError(value, rng_);
          break;
        case 2:
          value = corruption::PhoneticVariation(value, rng_);
          break;
        default: {
          const std::string varied = corruption::NicknameVariation(value, rng_);
          value = varied == value ? corruption::KeyboardTypo(value, rng_) : varied;
          break;
        }
      }
      break;
    }
  }
}

Record Corruptor::Corrupt(const Schema& schema, const Record& record) {
  Record out = record;
  // Optional full-field swap of first and last name.
  const int first_idx = schema.FieldIndex("first_name");
  const int last_idx = schema.FieldIndex("last_name");
  if (first_idx >= 0 && last_idx >= 0 && rng_.NextBool(config_.name_swap_prob)) {
    std::swap(out.values[static_cast<size_t>(first_idx)],
              out.values[static_cast<size_t>(last_idx)]);
  }
  const double per_trial = config_.max_corruptions_per_record == 0
                               ? 0
                               : config_.mean_corruptions /
                                     static_cast<double>(config_.max_corruptions_per_record);
  for (size_t i = 0; i < config_.max_corruptions_per_record; ++i) {
    if (rng_.NextBool(std::min(1.0, per_trial))) ApplyOneCorruption(schema, out);
  }
  return out;
}

Record Corruptor::CorruptExactly(const Schema& schema, const Record& record,
                                 size_t num_ops) {
  Record out = record;
  for (size_t i = 0; i < num_ops; ++i) ApplyOneCorruption(schema, out);
  return out;
}

}  // namespace pprl
