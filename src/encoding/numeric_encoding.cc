#include "encoding/numeric_encoding.h"

#include <cmath>
#include <cstdlib>

namespace pprl {

Result<std::vector<std::string>> NumericNeighborhoodTokens(const std::string& value,
                                                           double step,
                                                           size_t num_neighbors) {
  if (step <= 0) return Status::InvalidArgument("numeric step must be positive");
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || (end != nullptr && *end != '\0')) {
    return Status::InvalidArgument("not a numeric value: '" + value + "'");
  }
  // Snap to the step grid so neighbouring values produce identical tokens.
  const int64_t center = static_cast<int64_t>(std::llround(v / step));
  std::vector<std::string> tokens;
  tokens.reserve(2 * num_neighbors + 1);
  for (int64_t d = -static_cast<int64_t>(num_neighbors);
       d <= static_cast<int64_t>(num_neighbors); ++d) {
    tokens.push_back("n" + std::to_string(center + d));
  }
  return tokens;
}

double ExpectedNumericDice(double a, double b, double step, size_t num_neighbors) {
  if (step <= 0) return 0;
  const int64_t ca = static_cast<int64_t>(std::llround(a / step));
  const int64_t cb = static_cast<int64_t>(std::llround(b / step));
  const int64_t width = 2 * static_cast<int64_t>(num_neighbors) + 1;
  const int64_t gap = std::llabs(ca - cb);
  const int64_t overlap = std::max<int64_t>(0, width - gap);
  return static_cast<double>(2 * overlap) / static_cast<double>(2 * width);
}

Result<int64_t> DaysSinceEpoch(const std::string& iso_date) {
  if (iso_date.size() != 10 || iso_date[4] != '-' || iso_date[7] != '-') {
    return Status::InvalidArgument("date must be YYYY-MM-DD: '" + iso_date + "'");
  }
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (iso_date[i] < '0' || iso_date[i] > '9') {
      return Status::InvalidArgument("date must be YYYY-MM-DD: '" + iso_date + "'");
    }
  }
  const int y = std::stoi(iso_date.substr(0, 4));
  const int m = std::stoi(iso_date.substr(5, 2));
  const int d = std::stoi(iso_date.substr(8, 2));
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("date out of range: '" + iso_date + "'");
  }
  // Howard Hinnant's days_from_civil algorithm (proleptic Gregorian).
  const int yy = y - (m <= 2 ? 1 : 0);
  const int era = (yy >= 0 ? yy : yy - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(yy - era * 400);
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

Result<std::vector<std::string>> DateNeighborhoodTokens(const std::string& iso_date,
                                                        const DateEncodingParams& params) {
  auto days = DaysSinceEpoch(iso_date);
  if (!days.ok()) return days.status();
  std::vector<std::string> tokens;
  tokens.reserve(2 * params.num_neighbors + 1);
  for (int64_t d = -static_cast<int64_t>(params.num_neighbors);
       d <= static_cast<int64_t>(params.num_neighbors); ++d) {
    tokens.push_back("d" + std::to_string(days.value() + d));
  }
  return tokens;
}

}  // namespace pprl
