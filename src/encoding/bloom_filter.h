#ifndef PPRL_ENCODING_BLOOM_FILTER_H_
#define PPRL_ENCODING_BLOOM_FILTER_H_

#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/record.h"
#include "common/status.h"
#include "common/strings.h"

namespace pprl {

/// How token -> bit positions are derived.
enum class BloomHashScheme {
  /// Classic double hashing h_j = MD5(t) + j * SHA1(t) mod l [33]. Fast but
  /// famously attackable when unkeyed.
  kDoubleHashing,
  /// k positions from HMAC-SHA256(secret_key, token || j): the keyed variant
  /// that defeats dictionary attacks as long as the key stays secret.
  kKeyedHmac,
};

/// Parameters of a Bloom-filter encoding (Figure 2 of the survey).
struct BloomFilterParams {
  size_t num_bits = 1000;        ///< l, the filter length
  size_t num_hashes = 30;        ///< k, hash functions per token
  BloomHashScheme scheme = BloomHashScheme::kDoubleHashing;
  std::string secret_key;        ///< required for kKeyedHmac

  /// Validates the parameter combination.
  Status Validate() const;
};

/// Encodes token sets into Bloom filters.
///
/// This is the survey's flagship probabilistic privacy technology (§3.4,
/// Figure 2 left): the q-gram set of a string QID is hash-mapped into a bit
/// array, and Dice similarity on the bit arrays approximates Dice similarity
/// on the q-gram sets.
class BloomFilterEncoder {
 public:
  explicit BloomFilterEncoder(BloomFilterParams params);

  /// Maps an explicit token set into a filter.
  BitVector EncodeTokens(const std::vector<std::string>& tokens) const;

  /// Convenience: q-gram tokenisation (after QID normalisation) followed by
  /// EncodeTokens.
  BitVector EncodeString(const std::string& value, const QGramOptions& qgrams = {}) const;

  /// Bit positions a single token maps to (exposed for the cryptanalysis
  /// attack module, which needs the same mapping the encoder uses).
  std::vector<uint32_t> TokenPositions(const std::string& token) const;

  const BloomFilterParams& params() const { return params_; }

 private:
  BloomFilterParams params_;
};

/// Per-field configuration of a record-level encoding.
struct ClkFieldConfig {
  std::string field_name;
  /// Hash functions used for this field's tokens; fields with higher
  /// discriminating power get more (weighted CLK).
  size_t num_hashes = 20;
  /// q-gram length for string fields; ignored for numeric fields.
  size_t q = 2;
  /// For numeric fields: tokens are generated for value, value +- step, ...
  /// (see NumericNeighborhoodTokens). 0 marks the field as a string field.
  double numeric_step = 0;
  size_t numeric_neighbors = 0;
};

/// Cryptographic Long-term Key (CLK): all QIDs of a record hashed into one
/// filter, the standard record-level encoding of Schnell et al. [33].
class ClkEncoder {
 public:
  /// `params.num_hashes` is ignored; per-field counts come from `fields`.
  ClkEncoder(BloomFilterParams params, std::vector<ClkFieldConfig> fields);

  /// Encodes the configured fields of `record` under `schema` into one CLK.
  /// Fields missing from the schema are reported as InvalidArgument.
  Result<BitVector> Encode(const Schema& schema, const Record& record) const;

  /// Encodes every record of `db`; stops at the first error.
  Result<std::vector<BitVector>> EncodeDatabase(const Database& db) const;

  const BloomFilterParams& params() const { return params_; }
  const std::vector<ClkFieldConfig>& fields() const { return fields_; }

 private:
  BloomFilterParams params_;
  std::vector<ClkFieldConfig> fields_;
};

}  // namespace pprl

#endif  // PPRL_ENCODING_BLOOM_FILTER_H_
