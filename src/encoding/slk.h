#ifndef PPRL_ENCODING_SLK_H_
#define PPRL_ENCODING_SLK_H_

#include <string>

#include "common/status.h"

namespace pprl {

/// Inputs to the statistical linkage key.
struct SlkInput {
  std::string first_name;
  std::string last_name;
  std::string dob;   ///< ISO "YYYY-MM-DD"
  std::string sex;   ///< "m"/"f" (case-insensitive; first letter used)
};

/// SLK-581, the statistical linkage key of the Australian Institute of
/// Health and Welfare [31]: letters 2+3 of the first name, letters 2,3,5 of
/// the surname, the full date of birth (DDMMYYYY), and a sex digit.
/// Missing letters are replaced by '2' per the AIHW specification.
///
/// The survey cites [31] to show SLK-based linkage has limited privacy
/// protection and poor sensitivity; experiment E12 quantifies both against
/// Bloom-filter linkage.
Result<std::string> Slk581(const SlkInput& input);

/// SLK-581 followed by keyed hashing (HMAC-SHA256, hex), the usual way the
/// key is actually exchanged between organisations.
Result<std::string> HashedSlk581(const SlkInput& input, const std::string& secret_key);

}  // namespace pprl

#endif  // PPRL_ENCODING_SLK_H_
