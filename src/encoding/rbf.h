#ifndef PPRL_ENCODING_RBF_H_
#define PPRL_ENCODING_RBF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/record.h"
#include "common/status.h"
#include "encoding/bloom_filter.h"

namespace pprl {

/// One field's contribution to a record-level Bloom filter.
struct RbfFieldConfig {
  std::string field_name;
  /// Length of this field's intermediate field-level filter.
  size_t field_bits = 500;
  /// Hash functions for this field's tokens.
  size_t num_hashes = 15;
  /// Sampling weight: the fraction of output bits drawn from this field is
  /// weight / sum(weights). Durham's RBF weights fields by discriminating
  /// power (e.g. Fellegi-Sunter agreement weights).
  double weight = 1.0;
  /// q-gram length for string fields.
  size_t q = 2;
};

/// Parameters of a record-level Bloom filter encoding.
struct RbfParams {
  size_t output_bits = 1000;
  /// Seed of the shared bit-sampling permutation. All parties must use the
  /// same seed (it is part of the shared secret).
  uint64_t sampling_seed = 7;
  BloomHashScheme scheme = BloomHashScheme::kDoubleHashing;
  std::string secret_key;
};

/// Record-level Bloom filter (RBF) of Durham [12]: each QID is first
/// encoded into its own field-level filter, then the record filter is
/// assembled by sampling bits from the field filters in proportion to
/// per-field weights, under a keyed permutation shared by the parties.
///
/// Compared with the CLK (all fields ORed into one filter), the RBF gives
/// exact control over each field's influence on the similarity and hides
/// field boundaries from an attacker who knows the schema.
class RbfEncoder {
 public:
  /// Validates and freezes the sampling layout. Fails on empty configs,
  /// zero weights, or an unkeyed scheme with a missing key.
  static Result<RbfEncoder> Create(RbfParams params, std::vector<RbfFieldConfig> fields);

  /// Encodes one record under `schema`.
  Result<BitVector> Encode(const Schema& schema, const Record& record) const;

  /// Encodes a whole database; stops at the first error.
  Result<std::vector<BitVector>> EncodeDatabase(const Database& db) const;

  /// Number of output bits drawn from field `i` (testing/introspection).
  size_t BitsSampledFrom(size_t field_index) const;

  const RbfParams& params() const { return params_; }

 private:
  struct SampledBit {
    uint32_t field = 0;     ///< index into fields_
    uint32_t position = 0;  ///< bit position within that field's filter
  };

  RbfEncoder(RbfParams params, std::vector<RbfFieldConfig> fields,
             std::vector<SampledBit> layout);

  RbfParams params_;
  std::vector<RbfFieldConfig> fields_;
  /// layout_[i] tells which (field, bit) feeds output bit i.
  std::vector<SampledBit> layout_;
};

}  // namespace pprl

#endif  // PPRL_ENCODING_RBF_H_
