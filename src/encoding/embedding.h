#ifndef PPRL_ENCODING_EMBEDDING_H_
#define PPRL_ENCODING_EMBEDDING_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace pprl {

/// Reference-set string embedding into a metric space.
///
/// The embedding branch of the survey's privacy-technology taxonomy (§3.4,
/// [32, 17]): each party maps its strings to vectors of (contracted) edit
/// distances to a shared random reference set, so linkage can run on
/// vectors without exchanging the strings themselves. Lipschitz embeddings
/// of this form are contractive: the L-infinity distance between two
/// embedded vectors lower-bounds the true edit distance, which makes the
/// embedding usable for threshold filtering with no false dismissals.
class StringEmbedder {
 public:
  /// Builds a reference set of `dimensions` random strings of length
  /// `reference_length` drawn from lower-case letters using `rng`. Both
  /// parties must construct this from a shared seed. `dimensions` must be
  /// > 0.
  static Result<StringEmbedder> Create(size_t dimensions, size_t reference_length,
                                       Rng& rng);

  /// Builds the embedder from an explicit reference set (e.g. frequent names
  /// agreed between parties).
  explicit StringEmbedder(std::vector<std::string> reference_set);

  /// Embeds `value`: component i is the edit distance to reference string i.
  std::vector<double> Embed(const std::string& value) const;

  size_t dimensions() const { return reference_set_.size(); }
  const std::vector<std::string>& reference_set() const { return reference_set_; }

  /// L-infinity distance between two embedded vectors; contractive bound on
  /// the edit distance of the originals.
  static double ChebyshevDistance(const std::vector<double>& a,
                                  const std::vector<double>& b);

  /// Euclidean distance between embedded vectors (the similarity used by
  /// [32]'s matching step).
  static double EuclideanDistance(const std::vector<double>& a,
                                  const std::vector<double>& b);

 private:
  std::vector<std::string> reference_set_;
};

}  // namespace pprl

#endif  // PPRL_ENCODING_EMBEDDING_H_
