#include "encoding/slk.h"

#include <cctype>

#include "common/strings.h"
#include "crypto/hash.h"

namespace pprl {

namespace {

/// Letter at 1-based position `pos` of the cleaned name, or '2' when the
/// name is too short (AIHW rule for missing characters).
char LetterAt(const std::string& cleaned, size_t pos) {
  if (pos == 0 || pos > cleaned.size()) return '2';
  return cleaned[pos - 1];
}

std::string CleanedUpper(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

}  // namespace

Result<std::string> Slk581(const SlkInput& input) {
  if (input.dob.size() != 10 || input.dob[4] != '-' || input.dob[7] != '-') {
    return Status::InvalidArgument("SLK-581 needs a YYYY-MM-DD date of birth");
  }
  const std::string first = CleanedUpper(input.first_name);
  const std::string last = CleanedUpper(input.last_name);

  std::string key;
  key += LetterAt(last, 2);
  key += LetterAt(last, 3);
  key += LetterAt(last, 5);
  key += LetterAt(first, 2);
  key += LetterAt(first, 3);
  // DDMMYYYY
  key += input.dob.substr(8, 2);
  key += input.dob.substr(5, 2);
  key += input.dob.substr(0, 4);
  // Sex digit: 1 = male, 2 = female, 9 = unknown.
  char sex = '9';
  if (!input.sex.empty()) {
    const char s = static_cast<char>(std::tolower(static_cast<unsigned char>(input.sex[0])));
    if (s == 'm') sex = '1';
    if (s == 'f') sex = '2';
  }
  key += sex;
  return key;
}

Result<std::string> HashedSlk581(const SlkInput& input, const std::string& secret_key) {
  auto key = Slk581(input);
  if (!key.ok()) return key.status();
  return DigestToHex(HmacSha256(secret_key, key.value()));
}

}  // namespace pprl
