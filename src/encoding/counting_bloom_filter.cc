#include "encoding/counting_bloom_filter.h"

namespace pprl {

CountingBloomFilter::CountingBloomFilter(size_t num_positions)
    : counts_(num_positions, 0) {}

CountingBloomFilter CountingBloomFilter::FromBitVector(const BitVector& bits) {
  CountingBloomFilter cbf(bits.size());
  for (uint32_t pos : bits.SetPositions()) cbf.counts_[pos] = 1;
  return cbf;
}

Status CountingBloomFilter::Add(const CountingBloomFilter& other) {
  if (other.size() != size()) {
    return Status::InvalidArgument("CBF size mismatch in Add");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  return Status::OK();
}

Status CountingBloomFilter::Add(const BitVector& bits) {
  if (bits.size() != size()) {
    return Status::InvalidArgument("CBF/BitVector size mismatch in Add");
  }
  for (uint32_t pos : bits.SetPositions()) ++counts_[pos];
  return Status::OK();
}

size_t CountingBloomFilter::PositionsWithCount(uint32_t value) const {
  size_t n = 0;
  for (uint32_t c : counts_) {
    if (c == value) ++n;
  }
  return n;
}

size_t CountingBloomFilter::PositionsWithCountAtLeast(uint32_t value) const {
  size_t n = 0;
  for (uint32_t c : counts_) {
    if (c >= value) ++n;
  }
  return n;
}

double CountingBloomFilter::MultiPartyDice(size_t num_parties) const {
  if (num_parties == 0) return 0;
  uint64_t total = 0;
  size_t common = 0;
  for (uint32_t c : counts_) {
    total += c;
    if (c == num_parties) ++common;
  }
  if (total == 0) return 0;
  return static_cast<double>(num_parties) * static_cast<double>(common) /
         static_cast<double>(total);
}

}  // namespace pprl
