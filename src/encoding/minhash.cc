#include "encoding/minhash.h"

#include <limits>

#include "common/random.h"
#include "crypto/hash.h"

namespace pprl {

MinHasher::MinHasher(size_t num_hashes, uint64_t seed)
    : num_hashes_(num_hashes), base_seed_(seed) {
  Rng rng(seed);
  mult_.reserve(num_hashes);
  add_.reserve(num_hashes);
  for (size_t i = 0; i < num_hashes; ++i) {
    mult_.push_back(rng.NextUint64() | 1);  // odd multiplier is invertible mod 2^64
    add_.push_back(rng.NextUint64());
  }
}

MinHashSignature MinHasher::Sign(const std::vector<std::string>& tokens) const {
  MinHashSignature sig(num_hashes_, std::numeric_limits<uint64_t>::max());
  const TabulationHash base(base_seed_);
  for (const std::string& token : tokens) {
    const uint64_t h = base.Hash(token);
    for (size_t i = 0; i < num_hashes_; ++i) {
      const uint64_t hi = mult_[i] * h + add_[i];
      if (hi < sig[i]) sig[i] = hi;
    }
  }
  return sig;
}

double MinHasher::EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b) {
  if (a.size() != b.size() || a.empty()) return 0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace pprl
