#include "encoding/bloom_filter.h"

#include "crypto/hash.h"
#include "encoding/numeric_encoding.h"

namespace pprl {

Status BloomFilterParams::Validate() const {
  if (num_bits == 0) return Status::InvalidArgument("num_bits must be > 0");
  if (num_hashes == 0) return Status::InvalidArgument("num_hashes must be > 0");
  if (scheme == BloomHashScheme::kKeyedHmac && secret_key.empty()) {
    return Status::InvalidArgument("keyed HMAC scheme requires a secret key");
  }
  return Status::OK();
}

BloomFilterEncoder::BloomFilterEncoder(BloomFilterParams params)
    : params_(std::move(params)) {}

std::vector<uint32_t> BloomFilterEncoder::TokenPositions(const std::string& token) const {
  std::vector<uint32_t> positions;
  positions.reserve(params_.num_hashes);
  const uint64_t l = params_.num_bits;
  switch (params_.scheme) {
    case BloomHashScheme::kDoubleHashing: {
      const uint64_t h1 = DigestToUint64(Md5(token));
      const uint64_t h2 = DigestToUint64(Sha1(token));
      for (size_t j = 0; j < params_.num_hashes; ++j) {
        positions.push_back(static_cast<uint32_t>((h1 + j * h2) % l));
      }
      break;
    }
    case BloomHashScheme::kKeyedHmac: {
      for (size_t j = 0; j < params_.num_hashes; ++j) {
        const auto mac = HmacSha256(params_.secret_key, token + "\x1f" + std::to_string(j));
        positions.push_back(static_cast<uint32_t>(DigestToUint64(mac) % l));
      }
      break;
    }
  }
  return positions;
}

BitVector BloomFilterEncoder::EncodeTokens(const std::vector<std::string>& tokens) const {
  BitVector filter(params_.num_bits);
  for (const std::string& token : tokens) {
    for (uint32_t pos : TokenPositions(token)) filter.Set(pos);
  }
  return filter;
}

BitVector BloomFilterEncoder::EncodeString(const std::string& value,
                                           const QGramOptions& qgrams) const {
  return EncodeTokens(QGrams(NormalizeQid(value), qgrams));
}

ClkEncoder::ClkEncoder(BloomFilterParams params, std::vector<ClkFieldConfig> fields)
    : params_(std::move(params)), fields_(std::move(fields)) {}

Result<BitVector> ClkEncoder::Encode(const Schema& schema, const Record& record) const {
  PPRL_RETURN_IF_ERROR(params_.Validate());
  BitVector clk(params_.num_bits);
  for (const ClkFieldConfig& field : fields_) {
    const int idx = schema.FieldIndex(field.field_name);
    if (idx < 0) {
      return Status::InvalidArgument("CLK field '" + field.field_name +
                                     "' not in schema");
    }
    if (static_cast<size_t>(idx) >= record.values.size()) {
      return Status::InvalidArgument("record has no value for field '" +
                                     field.field_name + "'");
    }
    const std::string& raw = record.values[static_cast<size_t>(idx)];
    std::vector<std::string> tokens;
    if (field.numeric_step > 0) {
      auto numeric_tokens = NumericNeighborhoodTokens(raw, field.numeric_step,
                                                      field.numeric_neighbors);
      if (!numeric_tokens.ok()) return numeric_tokens.status();
      tokens = std::move(numeric_tokens).value();
    } else {
      QGramOptions opts;
      opts.q = field.q;
      tokens = QGrams(NormalizeQid(raw), opts);
    }
    // Field-distinct tokens: prefix with the field name so "jo" in a first
    // name and "jo" in a surname map to different positions.
    BloomFilterParams field_params = params_;
    field_params.num_hashes = field.num_hashes;
    const BloomFilterEncoder encoder(field_params);
    for (std::string& token : tokens) token = field.field_name + "\x1e" + token;
    clk |= encoder.EncodeTokens(tokens);
  }
  return clk;
}

Result<std::vector<BitVector>> ClkEncoder::EncodeDatabase(const Database& db) const {
  std::vector<BitVector> out;
  out.reserve(db.records.size());
  for (const Record& record : db.records) {
    auto encoded = Encode(db.schema, record);
    if (!encoded.ok()) return encoded.status();
    out.push_back(std::move(encoded).value());
  }
  return out;
}

}  // namespace pprl
