#ifndef PPRL_ENCODING_CLK_IO_H_
#define PPRL_ENCODING_CLK_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "common/bitvector.h"
#include "common/status.h"

namespace pprl {

/// Interchange format for encoded databases (the artefact a database owner
/// actually ships to a linkage unit): a CSV with columns
///   id, bits, clk
/// where `clk` is the base64-encoded little-endian byte serialisation of
/// the filter and `bits` its exact bit length. No quasi-identifiers leave
/// the owner — this is the file-level equivalent of the clkhash/anonlink
/// workflow.

/// An encoded database ready for file exchange.
struct EncodedDatabase {
  std::vector<uint64_t> ids;
  std::vector<BitVector> filters;

  size_t size() const { return filters.size(); }
};

/// The batch-layout twin of `EncodedDatabase`: the same ids, with the
/// filters packed as contiguous `BitMatrix` rows instead of one heap
/// allocation per record. This is the type the streaming ingest path
/// (io/ingest.h) produces, the PCLK shard format (io/pclk.h) stores, and
/// the comparison kernels consume — a million-record shipment never has
/// to exist as a million `BitVector`s.
struct EncodedShard {
  std::vector<uint64_t> ids;
  BitMatrix bits;

  size_t size() const { return bits.num_rows(); }
};

/// Packs per-record filters into the batch layout (lossless).
EncodedShard ShardFromEncodedDatabase(const EncodedDatabase& encoded);

/// Unpacks back into per-record filters; inverse of ShardFromEncodedDatabase.
EncodedDatabase EncodedDatabaseFromShard(const EncodedShard& shard);

/// Serialises a filter to its byte form (little-endian, bit 0 = LSB of
/// byte 0; trailing bits zero).
std::vector<uint8_t> BitVectorToBytes(const BitVector& bv);

/// Inverse of BitVectorToBytes; `num_bits` trims the final byte.
Result<BitVector> BitVectorFromBytes(const std::vector<uint8_t>& bytes, size_t num_bits);

/// Writes an encoded database to `path`. `ids` and `filters` must have the
/// same length and all filters one common bit length.
Status WriteEncodedDatabase(const std::string& path, const EncodedDatabase& encoded);

/// Reads an encoded database written by WriteEncodedDatabase.
Result<EncodedDatabase> ReadEncodedDatabase(const std::string& path);

}  // namespace pprl

#endif  // PPRL_ENCODING_CLK_IO_H_
