#include "encoding/clk_io.h"

#include <cstdlib>

#include "common/base64.h"
#include "common/csv.h"
#include "common/strings.h"

namespace pprl {

EncodedShard ShardFromEncodedDatabase(const EncodedDatabase& encoded) {
  EncodedShard shard;
  shard.ids = encoded.ids;
  shard.bits = BitMatrix::FromVectors(encoded.filters);
  return shard;
}

EncodedDatabase EncodedDatabaseFromShard(const EncodedShard& shard) {
  EncodedDatabase encoded;
  encoded.ids = shard.ids;
  encoded.filters = shard.bits.ToVectors();
  return encoded;
}

std::vector<uint8_t> BitVectorToBytes(const BitVector& bv) {
  std::vector<uint8_t> out((bv.size() + 7) / 8, 0);
  for (uint32_t pos : bv.SetPositions()) {
    out[pos / 8] |= static_cast<uint8_t>(1u << (pos % 8));
  }
  return out;
}

Result<BitVector> BitVectorFromBytes(const std::vector<uint8_t>& bytes,
                                     size_t num_bits) {
  if (bytes.size() * 8 < num_bits) {
    return Status::InvalidArgument("byte buffer shorter than declared bit length");
  }
  BitVector bv(num_bits);
  for (size_t i = 0; i < num_bits; ++i) {
    if ((bytes[i / 8] >> (i % 8)) & 1u) bv.Set(i);
  }
  return bv;
}

Status WriteEncodedDatabase(const std::string& path, const EncodedDatabase& encoded) {
  if (encoded.ids.size() != encoded.filters.size()) {
    return Status::InvalidArgument("ids and filters must have equal length");
  }
  CsvTable table;
  table.header = {"id", "bits", "clk"};
  table.rows.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (!encoded.filters.empty() &&
        encoded.filters[i].size() != encoded.filters[0].size()) {
      return Status::InvalidArgument("all filters must share one bit length");
    }
    table.rows.push_back({std::to_string(encoded.ids[i]),
                          std::to_string(encoded.filters[i].size()),
                          Base64Encode(BitVectorToBytes(encoded.filters[i]))});
  }
  return WriteCsvFile(path, table);
}

Result<EncodedDatabase> ReadEncodedDatabase(const std::string& path) {
  auto table = ReadCsvFile(path);
  if (!table.ok()) return table.status();
  const int id_col = table->ColumnIndex("id");
  const int bits_col = table->ColumnIndex("bits");
  const int clk_col = table->ColumnIndex("clk");
  if (id_col < 0 || bits_col < 0 || clk_col < 0) {
    return Status::InvalidArgument("encoded file needs id, bits, clk columns");
  }
  EncodedDatabase out;
  out.ids.reserve(table->rows.size());
  out.filters.reserve(table->rows.size());
  for (size_t r = 0; r < table->rows.size(); ++r) {
    const auto& row = table->rows[r];
    if (!IsInteger(row[static_cast<size_t>(id_col)]) ||
        !IsInteger(row[static_cast<size_t>(bits_col)])) {
      return Status::InvalidArgument("bad id/bits in row " + std::to_string(r));
    }
    auto bytes = Base64Decode(row[static_cast<size_t>(clk_col)]);
    if (!bytes.ok()) return bytes.status();
    const size_t bits = static_cast<size_t>(
        std::strtoull(row[static_cast<size_t>(bits_col)].c_str(), nullptr, 10));
    auto filter = BitVectorFromBytes(bytes.value(), bits);
    if (!filter.ok()) return filter.status();
    if (!out.filters.empty() && filter->size() != out.filters[0].size()) {
      return Status::InvalidArgument("inconsistent filter lengths in encoded file");
    }
    out.ids.push_back(static_cast<uint64_t>(
        std::strtoull(row[static_cast<size_t>(id_col)].c_str(), nullptr, 10)));
    out.filters.push_back(std::move(filter).value());
  }
  return out;
}

}  // namespace pprl
