#include "encoding/rbf.h"

#include "common/random.h"
#include "common/strings.h"

namespace pprl {

Result<RbfEncoder> RbfEncoder::Create(RbfParams params,
                                      std::vector<RbfFieldConfig> fields) {
  if (fields.empty()) return Status::InvalidArgument("RBF needs at least one field");
  if (params.output_bits == 0) {
    return Status::InvalidArgument("RBF output length must be > 0");
  }
  if (params.scheme == BloomHashScheme::kKeyedHmac && params.secret_key.empty()) {
    return Status::InvalidArgument("keyed RBF requires a secret key");
  }
  double total_weight = 0;
  for (const auto& field : fields) {
    if (field.weight <= 0) {
      return Status::InvalidArgument("RBF field weight must be positive: " +
                                     field.field_name);
    }
    if (field.field_bits == 0 || field.num_hashes == 0) {
      return Status::InvalidArgument("RBF field parameters must be positive: " +
                                     field.field_name);
    }
    total_weight += field.weight;
  }

  // Deterministic sampling layout: output bit i draws from a field chosen
  // by weight, at a uniform position of that field's filter. Both parties
  // derive the identical layout from the shared seed.
  Rng rng(params.sampling_seed);
  std::vector<SampledBit> layout;
  layout.reserve(params.output_bits);
  for (size_t i = 0; i < params.output_bits; ++i) {
    double pick = rng.NextDouble() * total_weight;
    uint32_t field = 0;
    for (size_t f = 0; f < fields.size(); ++f) {
      pick -= fields[f].weight;
      if (pick <= 0) {
        field = static_cast<uint32_t>(f);
        break;
      }
      if (f + 1 == fields.size()) field = static_cast<uint32_t>(f);
    }
    const uint32_t position =
        static_cast<uint32_t>(rng.NextUint64(fields[field].field_bits));
    layout.push_back({field, position});
  }
  return RbfEncoder(std::move(params), std::move(fields), std::move(layout));
}

RbfEncoder::RbfEncoder(RbfParams params, std::vector<RbfFieldConfig> fields,
                       std::vector<SampledBit> layout)
    : params_(std::move(params)),
      fields_(std::move(fields)),
      layout_(std::move(layout)) {}

size_t RbfEncoder::BitsSampledFrom(size_t field_index) const {
  size_t count = 0;
  for (const SampledBit& bit : layout_) {
    if (bit.field == field_index) ++count;
  }
  return count;
}

Result<BitVector> RbfEncoder::Encode(const Schema& schema, const Record& record) const {
  // Field-level filters first.
  std::vector<BitVector> field_filters;
  field_filters.reserve(fields_.size());
  for (const RbfFieldConfig& field : fields_) {
    const int idx = schema.FieldIndex(field.field_name);
    if (idx < 0) {
      return Status::InvalidArgument("RBF field '" + field.field_name +
                                     "' not in schema");
    }
    if (static_cast<size_t>(idx) >= record.values.size()) {
      return Status::InvalidArgument("record has no value for '" + field.field_name +
                                     "'");
    }
    BloomFilterParams bf;
    bf.num_bits = field.field_bits;
    bf.num_hashes = field.num_hashes;
    bf.scheme = params_.scheme;
    bf.secret_key = params_.secret_key;
    const BloomFilterEncoder encoder(bf);
    QGramOptions opts;
    opts.q = field.q;
    std::vector<std::string> tokens =
        QGrams(NormalizeQid(record.values[static_cast<size_t>(idx)]), opts);
    for (std::string& token : tokens) token = field.field_name + "\x1e" + token;
    field_filters.push_back(encoder.EncodeTokens(tokens));
  }

  // Assemble the record filter from the sampling layout.
  BitVector out(params_.output_bits);
  for (size_t i = 0; i < layout_.size(); ++i) {
    const SampledBit& bit = layout_[i];
    if (field_filters[bit.field].Get(bit.position)) out.Set(i);
  }
  return out;
}

Result<std::vector<BitVector>> RbfEncoder::EncodeDatabase(const Database& db) const {
  std::vector<BitVector> out;
  out.reserve(db.records.size());
  for (const Record& record : db.records) {
    auto encoded = Encode(db.schema, record);
    if (!encoded.ok()) return encoded.status();
    out.push_back(std::move(encoded).value());
  }
  return out;
}

}  // namespace pprl
