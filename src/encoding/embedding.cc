#include "encoding/embedding.h"

#include <algorithm>
#include <cmath>

#include "crypto/secure_edit_distance.h"

namespace pprl {

Result<StringEmbedder> StringEmbedder::Create(size_t dimensions, size_t reference_length,
                                              Rng& rng) {
  if (dimensions == 0) return Status::InvalidArgument("dimensions must be > 0");
  if (reference_length == 0) {
    return Status::InvalidArgument("reference_length must be > 0");
  }
  std::vector<std::string> refs;
  refs.reserve(dimensions);
  for (size_t i = 0; i < dimensions; ++i) {
    std::string ref;
    ref.reserve(reference_length);
    for (size_t j = 0; j < reference_length; ++j) {
      ref += static_cast<char>('a' + rng.NextUint64(26));
    }
    refs.push_back(std::move(ref));
  }
  return StringEmbedder(std::move(refs));
}

StringEmbedder::StringEmbedder(std::vector<std::string> reference_set)
    : reference_set_(std::move(reference_set)) {}

std::vector<double> StringEmbedder::Embed(const std::string& value) const {
  std::vector<double> out;
  out.reserve(reference_set_.size());
  for (const std::string& ref : reference_set_) {
    out.push_back(static_cast<double>(PlainEditDistance(value, ref)));
  }
  return out;
}

double StringEmbedder::ChebyshevDistance(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  double max_diff = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

double StringEmbedder::EuclideanDistance(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  double sum = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    sum += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(sum);
}

}  // namespace pprl
