#ifndef PPRL_ENCODING_MINHASH_H_
#define PPRL_ENCODING_MINHASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pprl {

/// A MinHash signature: one 64-bit minimum per hash function.
using MinHashSignature = std::vector<uint64_t>;

/// MinHash signatures over token sets.
///
/// E[fraction of agreeing components] equals the Jaccard similarity of the
/// token sets, which is what MinHash-LSH blocking (survey §3.4 "Blocking",
/// randomized LSH methods [12, 18]) exploits: banding the signature gives a
/// blocking scheme with provable recall for similar pairs.
class MinHasher {
 public:
  /// `num_hashes` independent tabulation-hash functions seeded from `seed`.
  MinHasher(size_t num_hashes, uint64_t seed);

  /// Signature of a token set (order and duplicates do not matter).
  MinHashSignature Sign(const std::vector<std::string>& tokens) const;

  size_t num_hashes() const { return num_hashes_; }

  /// Fraction of agreeing components, the unbiased Jaccard estimate.
  static double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b);

 private:
  size_t num_hashes_;
  // Pairwise-independent mixing: h_i(x) = a_i * base(x) + b_i over 2^64.
  std::vector<uint64_t> mult_;
  std::vector<uint64_t> add_;
  uint64_t base_seed_;
};

}  // namespace pprl

#endif  // PPRL_ENCODING_MINHASH_H_
