#ifndef PPRL_ENCODING_COUNTING_BLOOM_FILTER_H_
#define PPRL_ENCODING_COUNTING_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"

namespace pprl {

/// A Bloom filter with per-position counters.
///
/// Summing the Bloom filters of p parties position-wise yields a counting
/// Bloom filter from which the p-wise intersection (positions with count p)
/// and the per-party set sizes can be read — the basis of the multi-party
/// protocol of Vatsalan, Christen & Rahm [42], where the summation itself is
/// done securely so no party sees another's individual filter.
class CountingBloomFilter {
 public:
  /// All-zero counters of the given length.
  explicit CountingBloomFilter(size_t num_positions = 0);

  /// Builds a CBF from one bit vector (counts are 0/1).
  static CountingBloomFilter FromBitVector(const BitVector& bits);

  size_t size() const { return counts_.size(); }
  uint32_t Count(size_t pos) const { return counts_[pos]; }

  /// Position-wise addition. Sizes must match.
  Status Add(const CountingBloomFilter& other);

  /// Position-wise addition of a plain Bloom filter. Sizes must match.
  Status Add(const BitVector& bits);

  /// Number of positions whose count is exactly `value`.
  size_t PositionsWithCount(uint32_t value) const;

  /// Number of positions whose count is at least `value`.
  size_t PositionsWithCountAtLeast(uint32_t value) const;

  /// Dice similarity across p parties computed from the summed filter:
  ///   p * |positions with count == p| / sum of all counts.
  /// `num_parties` must be >= 1 and the CBF must be the sum of exactly that
  /// many Bloom filters for the result to be meaningful.
  double MultiPartyDice(size_t num_parties) const;

  const std::vector<uint32_t>& counts() const { return counts_; }

 private:
  std::vector<uint32_t> counts_;
};

}  // namespace pprl

#endif  // PPRL_ENCODING_COUNTING_BLOOM_FILTER_H_
