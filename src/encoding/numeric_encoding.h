#ifndef PPRL_ENCODING_NUMERIC_ENCODING_H_
#define PPRL_ENCODING_NUMERIC_ENCODING_H_

#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"

namespace pprl {

/// Tokens for the numeric-neighbourhood Bloom-filter encoding of Vatsalan &
/// Christen [40] (Figure 2, right).
///
/// A numeric value v is represented by the token multiset
///   { round(v - n*step), ..., round(v), ..., round(v + n*step) },
/// so two values within n*step of each other share tokens in proportion to
/// their closeness, and the Dice similarity of the resulting Bloom filters
/// decays linearly with absolute difference.
///
/// `value` must parse as a floating-point number; `step` must be positive.
Result<std::vector<std::string>> NumericNeighborhoodTokens(const std::string& value,
                                                           double step,
                                                           size_t num_neighbors);

/// Expected Dice similarity of two neighbourhood encodings for values `a` and
/// `b` (the analytic curve the E2 benchmark checks the measured one against).
double ExpectedNumericDice(double a, double b, double step, size_t num_neighbors);

/// Parameters for encoding dates as neighbourhoods in day space.
struct DateEncodingParams {
  size_t num_neighbors = 15;  ///< +- days included
};

/// Encodes an ISO "YYYY-MM-DD" date as day-number neighbourhood tokens, so
/// near-miss birth dates (typos of one day/month) still overlap.
Result<std::vector<std::string>> DateNeighborhoodTokens(const std::string& iso_date,
                                                        const DateEncodingParams& params);

/// Days since 1970-01-01 for an ISO date (proleptic Gregorian); rejects
/// malformed input.
Result<int64_t> DaysSinceEpoch(const std::string& iso_date);

}  // namespace pprl

#endif  // PPRL_ENCODING_NUMERIC_ENCODING_H_
