#ifndef PPRL_ENCODING_PHONETIC_H_
#define PPRL_ENCODING_PHONETIC_H_

#include <string>
#include <string_view>

namespace pprl {

/// Phonetic encodings used as (privacy-friendlier) blocking keys: records
/// whose names sound alike land in the same block even under spelling
/// variations, which is what standard blocking on QIDs needs to survive the
/// dirty data the survey's veracity challenge describes.

/// American Soundex: one letter + three digits ("Robert" -> "R163").
/// Non-alphabetic input yields "Z000".
std::string Soundex(std::string_view name);

/// NYSIIS (New York State Identification and Intelligence System), the
/// standard refinement of Soundex for person names. Returns an upper-case
/// code of at most 6 characters; empty input yields "".
std::string Nysiis(std::string_view name);

/// A compact Metaphone variant: consonant-skeleton code of up to
/// `max_length` characters capturing English pronunciation classes.
std::string Metaphone(std::string_view name, size_t max_length = 6);

}  // namespace pprl

#endif  // PPRL_ENCODING_PHONETIC_H_
