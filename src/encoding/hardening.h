#ifndef PPRL_ENCODING_HARDENING_H_
#define PPRL_ENCODING_HARDENING_H_

#include <cstdint>
#include <string>

#include "common/bitvector.h"
#include "common/random.h"

namespace pprl {

/// Bloom-filter hardening techniques.
///
/// The survey (§5.3) notes that plain Bloom filters are vulnerable to
/// frequency and cryptanalysis attacks [7, 23] and that encodings must be
/// hardened [33]. Each function below is one published hardening; the E7
/// benchmark measures how much each degrades the attacks from
/// `pprl::privacy` and what it costs in linkage quality.

/// Balancing: append the bitwise complement, then apply a keyed permutation.
/// Every balanced filter has exactly 50% ones, removing the Hamming-weight
/// signal frequency attacks use. Output length is 2x the input.
BitVector Balance(const BitVector& bf, uint64_t permutation_key);

/// XOR-folding: XOR the first half onto the second, halving the length and
/// breaking the alignment between bit positions and q-grams. Input length
/// must be even.
BitVector XorFold(const BitVector& bf);

/// Rule-90 hardening: each output bit is the XOR of its two neighbours
/// (cyclic), diffusing each q-gram's positions across the filter.
BitVector Rule90(const BitVector& bf);

/// BLIP (permanent randomized response): flips every bit independently with
/// probability `flip_prob`, giving differential-privacy-style plausible
/// deniability per bit. `flip_prob` in [0, 0.5).
BitVector Blip(const BitVector& bf, double flip_prob, Rng& rng);

/// Epsilon of the per-bit randomized response: ln((1-f)/f).
double BlipEpsilon(double flip_prob);

/// Salting: returns the per-record salt to append to every token before
/// hashing, derived from a stable attribute value (e.g. year of birth).
/// Records with differing salt values share no hash mapping, which destroys
/// cross-record frequency alignment at the cost of missing matches whose
/// salt attribute was recorded inconsistently.
std::string RecordSalt(const std::string& stable_attribute_value,
                       const std::string& secret_key);

}  // namespace pprl

#endif  // PPRL_ENCODING_HARDENING_H_
