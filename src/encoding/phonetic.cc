#include "encoding/phonetic.h"

#include <cctype>

#include "common/strings.h"

namespace pprl {

namespace {

/// Keeps only ASCII letters, upper-cased.
std::string CleanName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

char SoundexDigit(char c) {
  switch (c) {
    case 'B':
    case 'F':
    case 'P':
    case 'V':
      return '1';
    case 'C':
    case 'G':
    case 'J':
    case 'K':
    case 'Q':
    case 'S':
    case 'X':
    case 'Z':
      return '2';
    case 'D':
    case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M':
    case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';  // vowels, H, W, Y
  }
}

bool IsVowel(char c) { return c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U'; }

void ReplacePrefix(std::string& s, std::string_view from, std::string_view to) {
  if (s.rfind(from, 0) == 0) s = std::string(to) + s.substr(from.size());
}

void ReplaceSuffix(std::string& s, std::string_view from, std::string_view to) {
  if (s.size() >= from.size() && s.compare(s.size() - from.size(), from.size(), from) == 0) {
    s = s.substr(0, s.size() - from.size()) + std::string(to);
  }
}

}  // namespace

std::string Soundex(std::string_view name) {
  const std::string clean = CleanName(name);
  if (clean.empty()) return "Z000";
  std::string code(1, clean[0]);
  char prev_digit = SoundexDigit(clean[0]);
  for (size_t i = 1; i < clean.size() && code.size() < 4; ++i) {
    const char c = clean[i];
    const char digit = SoundexDigit(c);
    if (digit != '0' && digit != prev_digit) code += digit;
    // H and W are transparent: they do not reset the previous digit.
    if (c != 'H' && c != 'W') prev_digit = digit;
  }
  while (code.size() < 4) code += '0';
  return code;
}

std::string Nysiis(std::string_view name) {
  std::string s = CleanName(name);
  if (s.empty()) return "";

  // Prefix transcodings.
  ReplacePrefix(s, "MAC", "MCC");
  ReplacePrefix(s, "KN", "NN");
  ReplacePrefix(s, "K", "C");
  ReplacePrefix(s, "PH", "FF");
  ReplacePrefix(s, "PF", "FF");
  ReplacePrefix(s, "SCH", "SSS");
  // Suffix transcodings.
  ReplaceSuffix(s, "EE", "Y");
  ReplaceSuffix(s, "IE", "Y");
  for (const char* suffix : {"DT", "RT", "RD", "NT", "ND"}) {
    ReplaceSuffix(s, suffix, "D");
  }

  std::string key(1, s[0]);
  std::string prev(1, s[0]);
  size_t i = 1;
  while (i < s.size()) {
    std::string cur(1, s[i]);
    size_t advance = 1;
    if (s.compare(i, 2, "EV") == 0) {
      cur = "AF";
      advance = 2;
    } else if (IsVowel(s[i]) || s[i] == 'Y') {
      // Y is treated as a vowel so spelling variants (Smith/Smyth,
      // Brian/Bryan) converge, matching NYSIIS's intent for person names.
      cur = "A";
    } else if (s[i] == 'Q') {
      cur = "G";
    } else if (s[i] == 'Z') {
      cur = "S";
    } else if (s[i] == 'M') {
      cur = "N";
    } else if (s.compare(i, 2, "KN") == 0) {
      cur = "N";
      advance = 2;
    } else if (s[i] == 'K') {
      cur = "C";
    } else if (s.compare(i, 3, "SCH") == 0) {
      cur = "SSS";
      advance = 3;
    } else if (s.compare(i, 2, "PH") == 0) {
      cur = "FF";
      advance = 2;
    } else if (s[i] == 'H' &&
               (!IsVowel(s[i - 1]) || (i + 1 < s.size() && !IsVowel(s[i + 1])))) {
      cur = prev;
    } else if (s[i] == 'W' && IsVowel(s[i - 1])) {
      cur = prev;
    }
    if (!cur.empty() && cur != prev) key += cur;
    prev = cur;
    i += advance;
  }

  // Trailing-S and AY/A cleanup.
  if (key.size() > 1 && key.back() == 'S') key.pop_back();
  if (key.size() > 2 && key.compare(key.size() - 2, 2, "AY") == 0) {
    key = key.substr(0, key.size() - 2) + "Y";
  }
  if (key.size() > 1 && key.back() == 'A') key.pop_back();
  if (key.size() > 6) key = key.substr(0, 6);
  return key;
}

std::string Metaphone(std::string_view name, size_t max_length) {
  std::string s = CleanName(name);
  if (s.empty()) return "";

  // Initial-letter exceptions.
  ReplacePrefix(s, "KN", "N");
  ReplacePrefix(s, "GN", "N");
  ReplacePrefix(s, "PN", "N");
  ReplacePrefix(s, "WR", "R");
  ReplacePrefix(s, "X", "S");

  std::string code;
  for (size_t i = 0; i < s.size() && code.size() < max_length; ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    // Skip doubled letters except C.
    if (i > 0 && c == s[i - 1] && c != 'C') continue;
    switch (c) {
      case 'A':
      case 'E':
      case 'I':
      case 'O':
      case 'U':
        if (i == 0) code += c;  // vowels kept only at the start
        break;
      case 'B':
        // Silent terminal B after M (e.g. "LAMB").
        if (!(i + 1 == s.size() && i > 0 && s[i - 1] == 'M')) code += 'B';
        break;
      case 'C':
        if (next == 'H') {
          code += 'X';  // CH -> X ("church")
          ++i;
        } else if (next == 'I' || next == 'E' || next == 'Y') {
          code += 'S';
        } else {
          code += 'K';
        }
        break;
      case 'D':
        if (next == 'G' && i + 2 < s.size() &&
            (s[i + 2] == 'E' || s[i + 2] == 'I' || s[i + 2] == 'Y')) {
          code += 'J';
          ++i;
        } else {
          code += 'T';
        }
        break;
      case 'G':
        if (next == 'H' && (i + 2 >= s.size() || !IsVowel(s[i + 2]))) {
          ++i;  // silent GH: consume the H too ("wright", "night")
          break;
        }
        if (next == 'N') break;  // silent GN
        if (next == 'I' || next == 'E' || next == 'Y') {
          code += 'J';
        } else {
          code += 'K';
        }
        break;
      case 'H':
        if (i > 0 && IsVowel(s[i - 1]) && !IsVowel(next)) break;  // silent H
        code += 'H';
        break;
      case 'K':
        if (i > 0 && s[i - 1] == 'C') break;  // CK -> K already emitted
        code += 'K';
        break;
      case 'P':
        if (next == 'H') {
          code += 'F';
          ++i;
        } else {
          code += 'P';
        }
        break;
      case 'Q':
        code += 'K';
        break;
      case 'S':
        if (next == 'H') {
          code += 'X';
          ++i;
        } else if (next == 'I' && i + 2 < s.size() &&
                   (s[i + 2] == 'O' || s[i + 2] == 'A')) {
          code += 'X';  // -SIO-, -SIA-
        } else {
          code += 'S';
        }
        break;
      case 'T':
        if (next == 'H') {
          code += '0';  // theta
          ++i;
        } else if (next == 'I' && i + 2 < s.size() &&
                   (s[i + 2] == 'O' || s[i + 2] == 'A')) {
          code += 'X';
        } else {
          code += 'T';
        }
        break;
      case 'V':
        code += 'F';
        break;
      case 'W':
      case 'Y':
        if (IsVowel(next)) code += c;  // kept only before a vowel
        break;
      case 'X':
        code += "KS";
        break;
      case 'Z':
        code += 'S';
        break;
      default:
        code += c;  // F, J, L, M, N, R pass through
        break;
    }
  }
  if (code.size() > max_length) code = code.substr(0, max_length);
  return code;
}

}  // namespace pprl
