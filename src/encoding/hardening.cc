#include "encoding/hardening.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "crypto/hash.h"

namespace pprl {

BitVector Balance(const BitVector& bf, uint64_t permutation_key) {
  const size_t l = bf.size();
  BitVector doubled(2 * l);
  for (size_t i = 0; i < l; ++i) {
    if (bf.Get(i)) {
      doubled.Set(i);
    } else {
      doubled.Set(l + i);  // complement half
    }
  }
  // Keyed Fisher-Yates permutation of the doubled filter.
  std::vector<uint32_t> perm(2 * l);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(permutation_key);
  rng.Shuffle(perm);
  BitVector out(2 * l);
  for (size_t i = 0; i < 2 * l; ++i) {
    if (doubled.Get(perm[i])) out.Set(i);
  }
  return out;
}

BitVector XorFold(const BitVector& bf) {
  assert(bf.size() % 2 == 0);
  const size_t half = bf.size() / 2;
  BitVector out(half);
  for (size_t i = 0; i < half; ++i) {
    if (bf.Get(i) != bf.Get(half + i)) out.Set(i);
  }
  return out;
}

BitVector Rule90(const BitVector& bf) {
  const size_t l = bf.size();
  BitVector out(l);
  if (l == 0) return out;
  for (size_t i = 0; i < l; ++i) {
    const bool left = bf.Get((i + l - 1) % l);
    const bool right = bf.Get((i + 1) % l);
    if (left != right) out.Set(i);
  }
  return out;
}

BitVector Blip(const BitVector& bf, double flip_prob, Rng& rng) {
  assert(flip_prob >= 0 && flip_prob < 0.5);
  BitVector out = bf;
  for (size_t i = 0; i < out.size(); ++i) {
    if (rng.NextBool(flip_prob)) out.Flip(i);
  }
  return out;
}

double BlipEpsilon(double flip_prob) {
  if (flip_prob <= 0) return std::numeric_limits<double>::infinity();
  return std::log((1.0 - flip_prob) / flip_prob);
}

std::string RecordSalt(const std::string& stable_attribute_value,
                       const std::string& secret_key) {
  return DigestToHex(HmacSha256(secret_key, "salt\x1f" + stable_attribute_value))
      .substr(0, 16);
}

}  // namespace pprl
