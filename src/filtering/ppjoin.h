#ifndef PPRL_FILTERING_PPJOIN_H_
#define PPRL_FILTERING_PPJOIN_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "blocking/blocking.h"

namespace pprl {

/// Threshold-aware filtering for Bloom-filter similarity joins
/// (survey §3.4 "Filtering"; PPJoin for PPRL, Sehili et al. [34]).
///
/// All filters are *lossless* for the chosen threshold: a pair they prune
/// provably cannot reach it. Dice thresholds are internally converted to the
/// equivalent Jaccard threshold t_j = t_d / (2 - t_d).

/// Converts a Dice threshold to the equivalent Jaccard threshold.
double DiceToJaccardThreshold(double dice_threshold);

/// Length filter: for Jaccard >= t, the partner's cardinality must lie in
/// [ceil(t * c), floor(c / t)] where c is this record's cardinality.
struct CardinalityRange {
  size_t min_count = 0;
  size_t max_count = 0;
};
CardinalityRange JaccardLengthBounds(size_t cardinality, double jaccard_threshold);

/// A similarity self-/RS-join over Bloom filters with length, prefix, and
/// position filtering, returning exactly the pairs whose Dice similarity
/// reaches `dice_threshold`.
class PpjoinIndex {
 public:
  /// Indexes database B's filters (copied in) for joins against probes from
  /// A. `dice_threshold` in (0, 1].
  PpjoinIndex(std::vector<BitVector> b_filters, double dice_threshold);

  /// Pairs (a_index, b_index, dice) with dice >= threshold, for all probes.
  struct Match {
    uint32_t a = 0;
    uint32_t b = 0;
    double dice = 0;
  };
  std::vector<Match> Join(const std::vector<BitVector>& a_filters) const;

  /// Candidate statistics of the last Join (how much each filter pruned),
  /// for the E4 benchmark.
  struct JoinStats {
    size_t length_pruned = 0;
    size_t prefix_candidates = 0;
    size_t position_pruned = 0;
    size_t verified = 0;
    size_t matches = 0;
  };
  const JoinStats& last_stats() const { return stats_; }

 private:
  struct PostingEntry {
    uint32_t record = 0;
    uint32_t prefix_pos = 0;  ///< index of this token within the record's sorted tokens
  };

  /// Sorts a token list into the canonical rarest-first order.
  void SortByRank(std::vector<uint32_t>& tokens) const;

  double jaccard_threshold_;
  std::vector<BitVector> b_filters_;
  std::vector<std::vector<uint32_t>> b_tokens_;       // tokens per record, rarest first
  std::vector<uint32_t> token_rank_;                  // token -> frequency rank
  std::vector<std::vector<PostingEntry>> inverted_;   // token -> postings
  size_t num_tokens_ = 0;
  mutable JoinStats stats_;
};

}  // namespace pprl

#endif  // PPRL_FILTERING_PPJOIN_H_
