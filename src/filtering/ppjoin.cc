#include "filtering/ppjoin.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pprl {

double DiceToJaccardThreshold(double dice_threshold) {
  if (dice_threshold >= 2.0) return 1.0;
  return dice_threshold / (2.0 - dice_threshold);
}

CardinalityRange JaccardLengthBounds(size_t cardinality, double jaccard_threshold) {
  if (jaccard_threshold <= 0) {
    return {0, static_cast<size_t>(-1)};
  }
  const double c = static_cast<double>(cardinality);
  return {static_cast<size_t>(std::ceil(c * jaccard_threshold)),
          static_cast<size_t>(std::floor(c / jaccard_threshold))};
}

namespace {

/// Prefix length for Jaccard threshold t on a record with `size` tokens:
/// size - ceil(t * size) + 1 (at least one shared token must fall in it).
size_t PrefixLength(size_t size, double t) {
  if (size == 0) return 0;
  const size_t required =
      static_cast<size_t>(std::ceil(t * static_cast<double>(size)));
  return size - std::min(size, required) + 1;
}

}  // namespace

PpjoinIndex::PpjoinIndex(std::vector<BitVector> b_filters, double dice_threshold)
    : jaccard_threshold_(DiceToJaccardThreshold(dice_threshold)),
      b_filters_(std::move(b_filters)) {
  b_tokens_.reserve(b_filters_.size());
  for (const BitVector& bf : b_filters_) {
    b_tokens_.push_back(bf.SetPositions());
    num_tokens_ = std::max(num_tokens_, bf.size());
  }

  // Canonical token order: ascending document frequency over the indexed
  // collection, so prefixes hold the rarest tokens. This is what makes the
  // prefix filter selective — without it, dense Bloom filters would share
  // prefix tokens with almost every record.
  std::vector<uint32_t> df(num_tokens_, 0);
  for (const auto& tokens : b_tokens_) {
    for (uint32_t t : tokens) ++df[t];
  }
  std::vector<uint32_t> order(num_tokens_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&df](uint32_t x, uint32_t y) {
    return df[x] != df[y] ? df[x] < df[y] : x < y;
  });
  token_rank_.assign(num_tokens_, 0);
  for (uint32_t r = 0; r < order.size(); ++r) token_rank_[order[r]] = r;

  for (auto& tokens : b_tokens_) SortByRank(tokens);

  inverted_.resize(num_tokens_);
  for (uint32_t r = 0; r < b_tokens_.size(); ++r) {
    const auto& tokens = b_tokens_[r];
    const size_t prefix = PrefixLength(tokens.size(), jaccard_threshold_);
    for (uint32_t p = 0; p < prefix && p < tokens.size(); ++p) {
      inverted_[tokens[p]].push_back({r, p});
    }
  }
}

void PpjoinIndex::SortByRank(std::vector<uint32_t>& tokens) const {
  // Tokens outside the indexed universe (probe-only positions) are rarest of
  // all: they can never collide, so they sort to the front of the prefix.
  auto rank = [this](uint32_t t) -> uint64_t {
    return t < token_rank_.size() ? static_cast<uint64_t>(token_rank_[t]) + num_tokens_
                                  : t;
  };
  std::sort(tokens.begin(), tokens.end(),
            [&rank](uint32_t x, uint32_t y) { return rank(x) < rank(y); });
}

std::vector<PpjoinIndex::Match> PpjoinIndex::Join(
    const std::vector<BitVector>& a_filters) const {
  stats_ = JoinStats{};
  std::vector<Match> matches;
  std::vector<uint32_t> candidate_overlap(b_filters_.size(), 0);
  std::vector<uint32_t> touched;

  for (uint32_t a_idx = 0; a_idx < a_filters.size(); ++a_idx) {
    std::vector<uint32_t> a_tokens = a_filters[a_idx].SetPositions();
    SortByRank(a_tokens);
    const size_t a_size = a_tokens.size();
    const CardinalityRange bounds = JaccardLengthBounds(a_size, jaccard_threshold_);
    const size_t a_prefix = PrefixLength(a_size, jaccard_threshold_);

    touched.clear();
    for (size_t p = 0; p < a_prefix && p < a_tokens.size(); ++p) {
      const uint32_t token = a_tokens[p];
      if (token >= inverted_.size()) continue;
      for (const PostingEntry& entry : inverted_[token]) {
        const size_t b_size = b_tokens_[entry.record].size();
        if (b_size < bounds.min_count || b_size > bounds.max_count) {
          ++stats_.length_pruned;
          continue;
        }
        // Position filter: tokens left after this position in either record
        // bound the final overlap. required = ceil(t/(1+t) * (|a|+|b|)).
        const double t = jaccard_threshold_;
        const size_t required = static_cast<size_t>(
            std::ceil(t / (1.0 + t) * static_cast<double>(a_size + b_size)));
        const size_t remaining =
            1 + std::min(a_size - p - 1, b_size - entry.prefix_pos - 1);
        if (candidate_overlap[entry.record] == 0 && remaining < required) {
          ++stats_.position_pruned;
          continue;
        }
        if (candidate_overlap[entry.record] == 0) touched.push_back(entry.record);
        ++candidate_overlap[entry.record];
      }
    }
    stats_.prefix_candidates += touched.size();

    for (uint32_t b_idx : touched) {
      candidate_overlap[b_idx] = 0;
      ++stats_.verified;
      const size_t inter = a_filters[a_idx].AndCount(b_filters_[b_idx]);
      const size_t total = a_size + b_tokens_[b_idx].size();
      if (total == 0) continue;
      const double dice = 2.0 * static_cast<double>(inter) / static_cast<double>(total);
      const double jaccard =
          static_cast<double>(inter) / static_cast<double>(total - inter);
      if (jaccard + 1e-12 >= jaccard_threshold_) {
        matches.push_back({a_idx, b_idx, dice});
        ++stats_.matches;
      }
    }
  }
  return matches;
}

}  // namespace pprl
