#include "similarity/similarity.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/strings.h"

namespace pprl {

double DiceSimilarity(const BitVector& a, const BitVector& b) {
  const size_t xa = a.Count();
  const size_t xb = b.Count();
  if (xa + xb == 0) return 1.0;
  return 2.0 * static_cast<double>(a.AndCount(b)) / static_cast<double>(xa + xb);
}

double DiceSimilarity(const std::vector<const BitVector*>& filters) {
  if (filters.empty()) return 0.0;
  if (filters.size() == 1) return 1.0;
  size_t total = 0;
  for (const BitVector* f : filters) total += f->Count();
  if (total == 0) return 1.0;
  // Common positions: AND of all filters, accumulated in a word buffer
  // reused across calls — no BitVector deep copy, no count-cache churn.
  static thread_local std::vector<uint64_t> common;
  const std::vector<uint64_t>& first = filters[0]->words();
  common.assign(first.begin(), first.end());
  for (size_t i = 1; i < filters.size(); ++i) {
    assert(filters[i]->size() == filters[0]->size());
    const std::vector<uint64_t>& words = filters[i]->words();
    for (size_t w = 0; w < common.size(); ++w) common[w] &= words[w];
  }
  size_t intersection = 0;
  for (uint64_t w : common) intersection += std::popcount(w);
  return static_cast<double>(filters.size()) * static_cast<double>(intersection) /
         static_cast<double>(total);
}

double JaccardSimilarity(const BitVector& a, const BitVector& b) {
  const size_t uni = a.OrCount(b);
  if (uni == 0) return 1.0;
  return static_cast<double>(a.AndCount(b)) / static_cast<double>(uni);
}

double HammingSimilarity(const BitVector& a, const BitVector& b) {
  if (a.size() == 0) return 1.0;
  return 1.0 - static_cast<double>(a.XorCount(b)) / static_cast<double>(a.size());
}

double OverlapSimilarity(const BitVector& a, const BitVector& b) {
  const size_t smaller = std::min(a.Count(), b.Count());
  if (smaller == 0) return a.Count() == b.Count() ? 1.0 : 0.0;
  return static_cast<double>(a.AndCount(b)) / static_cast<double>(smaller);
}

double CosineSimilarity(const BitVector& a, const BitVector& b) {
  const size_t xa = a.Count();
  const size_t xb = b.Count();
  if (xa == 0 && xb == 0) return 1.0;
  if (xa == 0 || xb == 0) return 0.0;
  return static_cast<double>(a.AndCount(b)) /
         std::sqrt(static_cast<double>(xa) * static_cast<double>(xb));
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return 1.0 - static_cast<double>(prev[m]) / static_cast<double>(std::max(n, m));
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t window =
      a.size() > b.size() ? a.size() / 2 : b.size() / 2;
  const size_t match_window = window == 0 ? 0 : window - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > match_window ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) + m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double QGramDiceSimilarity(std::string_view a, std::string_view b, size_t q) {
  QGramOptions opts;
  opts.q = q;
  const std::vector<std::string> ga = QGrams(a, opts);
  const std::vector<std::string> gb = QGrams(b, opts);
  if (ga.empty() && gb.empty()) return 1.0;
  std::unordered_set<std::string> set_a(ga.begin(), ga.end());
  size_t common = 0;
  for (const std::string& g : gb) {
    if (set_a.count(g) > 0) ++common;
  }
  return 2.0 * static_cast<double>(common) / static_cast<double>(ga.size() + gb.size());
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  constexpr int kMatch = 2;
  constexpr int kMismatch = -1;
  constexpr int kGap = -1;
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = 0;
    for (size_t j = 1; j <= m; ++j) {
      const int diag = prev[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      const int up = prev[j] + kGap;
      const int left = cur[j - 1] + kGap;
      cur[j] = std::max({0, diag, up, left});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  const double denom = static_cast<double>(kMatch) * static_cast<double>(std::min(n, m));
  return static_cast<double>(best) / denom;
}

double NumericAbsoluteSimilarity(double a, double b, double max_abs_diff) {
  if (max_abs_diff <= 0) return a == b ? 1.0 : 0.0;
  const double diff = std::abs(a - b);
  return std::max(0.0, 1.0 - diff / max_abs_diff);
}

}  // namespace pprl
