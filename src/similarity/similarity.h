#ifndef PPRL_SIMILARITY_SIMILARITY_H_
#define PPRL_SIMILARITY_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.h"

namespace pprl {

/// Token-based similarity functions on bit vectors — the functions PPRL
/// matches Bloom-filter encodings with (survey §3.4 "Linkage technologies").
/// All return values lie in [0, 1]; two empty filters compare as 1.

/// Dice coefficient 2c / (x1 + x2).
double DiceSimilarity(const BitVector& a, const BitVector& b);

/// Multi-party Dice p*c / sum(x_i) over p >= 2 filters, the generalisation
/// used by multi-database protocols [39, 42].
double DiceSimilarity(const std::vector<const BitVector*>& filters);

/// Jaccard coefficient |a AND b| / |a OR b|.
double JaccardSimilarity(const BitVector& a, const BitVector& b);

/// 1 - hamming_distance / length.
double HammingSimilarity(const BitVector& a, const BitVector& b);

/// Overlap coefficient c / min(x1, x2).
double OverlapSimilarity(const BitVector& a, const BitVector& b);

/// Cosine similarity c / sqrt(x1 * x2).
double CosineSimilarity(const BitVector& a, const BitVector& b);

/// String similarity functions for unencoded baselines and for the
/// interactive/quality-evaluation paths that may see raw values.

/// Levenshtein distance normalised to [0,1]: 1 - d / max(len).
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with the standard 0.1 prefix scale and 4-char prefix cap.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over q-gram sets of the raw strings — the unencoded
/// reference value the Bloom-filter Dice approximates (experiment E1).
double QGramDiceSimilarity(std::string_view a, std::string_view b, size_t q = 2);

/// Smith-Waterman local-alignment similarity: best local alignment score
/// (match +2, mismatch -1, gap -1) normalised by 2 * min(len) so a string
/// fully contained in the other scores 1. The classic choice when one QID
/// may be embedded in a longer free-text field ("anna" in "anna-maria").
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

/// Similarity of two numeric values with a maximum tolerated absolute
/// difference: max(0, 1 - |a-b| / max_abs_diff).
double NumericAbsoluteSimilarity(double a, double b, double max_abs_diff);

}  // namespace pprl

#endif  // PPRL_SIMILARITY_SIMILARITY_H_
