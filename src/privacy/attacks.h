#ifndef PPRL_PRIVACY_ATTACKS_H_
#define PPRL_PRIVACY_ATTACKS_H_

#include <string>
#include <vector>

#include "common/bitvector.h"
#include "encoding/bloom_filter.h"

namespace pprl {

/// Adversarial re-identification attacks against PPRL encodings (survey
/// §3.2 "Attacks" and §5.3). The attack modules are the measuring stick for
/// the hardening techniques in `pprl::encoding` (experiment E7).

/// Result of a re-identification attempt over a set of encoded records.
struct AttackResult {
  /// For each attacked encoding, the index of the guessed plaintext in the
  /// attacker's dictionary, or -1 for no guess.
  std::vector<int> guesses;
  /// Fraction of attacked encodings whose guess equals the true plaintext
  /// (filled by the caller/evaluator, which knows the truth).
  double success_rate = 0;
};

/// Frequency alignment attack [41] on deterministic encodings (hashed SLKs,
/// exact hashes): ranks encoded values and dictionary values by frequency
/// and aligns the ranks. Works because hashing preserves equality and value
/// frequencies are public knowledge (census name tables).
///
/// `encoded` holds one opaque code per record (repeats expected);
/// `dictionary` holds candidate plaintexts with their public frequencies,
/// most frequent first. Returns a guess for every record.
AttackResult FrequencyAlignmentAttack(
    const std::vector<std::string>& encoded,
    const std::vector<std::pair<std::string, double>>& dictionary);

/// Dictionary attack on Bloom filters: when the encoding function is public
/// (unkeyed double hashing [33]), the attacker encodes every dictionary
/// value itself and assigns each observed filter the dictionary value whose
/// encoding is most similar (Dice). Keyed (HMAC) encodings make the
/// attacker's encoder useless, which this attack demonstrates.
///
/// `attacker_encoder` is the attacker's *assumed* encoder — equal to the
/// real one for unkeyed schemes, necessarily different for keyed schemes.
AttackResult BloomDictionaryAttack(const std::vector<BitVector>& filters,
                                   const std::vector<std::string>& dictionary,
                                   const BloomFilterEncoder& attacker_encoder,
                                   double min_dice = 0.8);

/// Pattern-mining cryptanalysis of Bloom filters in the spirit of Christen
/// et al. [7] / Kuzu et al. [23]: without encoding anything itself, the
/// attacker aligns *bit-position frequencies* with *q-gram frequencies*:
/// positions set in roughly the fraction of filters that a frequent q-gram
/// occurs in are attributed to that q-gram; records are then re-identified
/// by scoring dictionary values against their attributed positions.
///
/// Needs only the observed filters and a public dictionary with
/// frequencies. Defeated by balancing/BLIP/salting, which destroy the
/// frequency alignment.
AttackResult BloomPatternMiningAttack(
    const std::vector<BitVector>& filters,
    const std::vector<std::pair<std::string, double>>& dictionary, size_t q = 2);

/// Computes the success rate of `result.guesses` against the ground truth
/// (index of each record's true plaintext in the dictionary; -1 when the
/// truth is not in the dictionary) and stores it in the result.
double ScoreAttack(AttackResult& result, const std::vector<int>& true_indices);

}  // namespace pprl

#endif  // PPRL_PRIVACY_ATTACKS_H_
