#ifndef PPRL_PRIVACY_DP_H_
#define PPRL_PRIVACY_DP_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace pprl {

/// Differential-privacy primitives used by PPRL protocols (survey §3.4
/// "Differential privacy", [14, 41]).

/// Laplace mechanism: `true_value` + Laplace(sensitivity / epsilon) noise.
/// Used to perturb counts (block sizes, candidate counts) that protocols
/// reveal, so the presence of a single record is hidden.
double LaplaceMechanism(double true_value, double sensitivity, double epsilon, Rng& rng);

/// Randomized response for one bit: returns the true bit with probability
/// e^eps / (1 + e^eps), otherwise the flipped bit. Per-bit epsilon-DP.
bool RandomizedResponse(bool true_bit, double epsilon, Rng& rng);

/// Unbiased estimate of the true count of ones among `n` randomized-response
/// bits of which `observed_ones` came back one.
double RandomizedResponseEstimate(size_t observed_ones, size_t n, double epsilon);

/// A simple epsilon accountant: protocols register every DP release and the
/// total budget consumed is reported in the evaluation output (basic
/// composition).
class PrivacyBudget {
 public:
  explicit PrivacyBudget(double total_epsilon) : total_(total_epsilon) {}

  /// Tries to consume `epsilon`; returns false (and consumes nothing) when
  /// the remaining budget is insufficient.
  bool Spend(double epsilon);

  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

 private:
  double total_;
  double spent_ = 0;
};

/// Output-constrained DP noise for match-count release (in the spirit of
/// He et al. [14]): adds two-sided geometric (discrete Laplace) noise to a
/// count, clamped at zero.
size_t NoisyCount(size_t true_count, double epsilon, Rng& rng);

}  // namespace pprl

#endif  // PPRL_PRIVACY_DP_H_
