#include "privacy/privacy_metrics.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "common/stats.h"

namespace pprl {

namespace {

std::unordered_map<std::string, size_t> CountCodes(const std::vector<std::string>& codes) {
  std::unordered_map<std::string, size_t> counts;
  for (const std::string& code : codes) ++counts[code];
  return counts;
}

}  // namespace

double UniqueCodeDisclosureRisk(const std::vector<std::string>& codes) {
  if (codes.empty()) return 0;
  const auto counts = CountCodes(codes);
  size_t unique = 0;
  for (const auto& [code, count] : counts) {
    if (count == 1) ++unique;
  }
  return static_cast<double>(unique) / static_cast<double>(codes.size());
}

double MeanDisclosureRisk(const std::vector<std::string>& codes) {
  if (codes.empty()) return 0;
  const auto counts = CountCodes(codes);
  // Each of the `count` records in a group carries risk 1/count, so every
  // group contributes exactly 1 to the total.
  const double risk = static_cast<double>(counts.size());
  return risk / static_cast<double>(codes.size());
}

double CodeEntropyBits(const std::vector<std::string>& codes) {
  const auto counts = CountCodes(codes);
  std::vector<size_t> values;
  values.reserve(counts.size());
  for (const auto& [code, count] : counts) values.push_back(count);
  return EntropyBits(values);
}

double InformationGainBits(const std::vector<std::string>& plaintexts,
                           const std::vector<std::string>& codes) {
  if (plaintexts.size() != codes.size() || plaintexts.empty()) return 0;
  const double h_plain = CodeEntropyBits(plaintexts);
  // Conditional entropy H(plaintext | code) = sum_c p(c) H(plaintext | c).
  std::map<std::string, std::unordered_map<std::string, size_t>> by_code;
  for (size_t i = 0; i < codes.size(); ++i) ++by_code[codes[i]][plaintexts[i]];
  double h_cond = 0;
  for (const auto& [code, plain_counts] : by_code) {
    size_t group = 0;
    std::vector<size_t> values;
    values.reserve(plain_counts.size());
    for (const auto& [plain, count] : plain_counts) {
      group += count;
      values.push_back(count);
    }
    const double weight = static_cast<double>(group) / static_cast<double>(codes.size());
    h_cond += weight * EntropyBits(values);
  }
  return h_plain - h_cond;
}

std::vector<double> BitFrequencies(const std::vector<BitVector>& filters) {
  if (filters.empty()) return {};
  std::vector<double> freq(filters[0].size(), 0);
  for (const BitVector& bf : filters) {
    for (uint32_t pos : bf.SetPositions()) {
      if (pos < freq.size()) freq[pos] += 1.0;
    }
  }
  for (double& f : freq) f /= static_cast<double>(filters.size());
  return freq;
}

double BitFrequencySpread(const std::vector<BitVector>& filters) {
  return StdDev(BitFrequencies(filters));
}

}  // namespace pprl
