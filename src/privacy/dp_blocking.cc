#include "privacy/dp_blocking.h"

#include <cmath>

#include "privacy/dp.h"

namespace pprl {

DpBlockingStats PadBlocksWithDummies(BlockIndex& index, double epsilon,
                                     uint32_t dummy_id_start, Rng& rng,
                                     int padding_offset) {
  DpBlockingStats stats;
  uint32_t next_dummy = dummy_id_start;
  for (auto& [key, records] : index) {
    ++stats.blocks;
    stats.real_records += records.size();
    // Noisy target size: true + offset + two-sided geometric noise.
    const size_t noisy =
        NoisyCount(records.size() + static_cast<size_t>(padding_offset), epsilon, rng);
    if (noisy > records.size()) {
      const size_t dummies = noisy - records.size();
      for (size_t i = 0; i < dummies; ++i) records.push_back(next_dummy++);
      stats.dummies_added += dummies;
    }
    stats.epsilon_spent += epsilon;
  }
  return stats;
}

std::vector<BitVector> MakeDummyFilters(size_t count, size_t num_bits,
                                        double fill_fraction, Rng& rng) {
  std::vector<BitVector> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BitVector bv(num_bits);
    for (size_t b = 0; b < num_bits; ++b) {
      if (rng.NextBool(fill_fraction)) bv.Set(b);
    }
    out.push_back(std::move(bv));
  }
  return out;
}

}  // namespace pprl
