#ifndef PPRL_PRIVACY_ACCOUNTABILITY_H_
#define PPRL_PRIVACY_ACCOUNTABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/random.h"
#include "common/status.h"
#include "linkage/comparison.h"

namespace pprl {

/// Accountable computing for PPRL (survey §3.2: "hybrid models, such as
/// accountable computing and covert models, lie in between the semi-honest
/// model, which is not realistic, and the malicious model, which requires
/// computationally expensive techniques").
///
/// Instead of cryptographically preventing a cheating linkage unit, the LU
/// *commits* to its computation and the database owners can later audit a
/// random sample of it. A lazy or malicious LU that skipped or falsified
/// comparisons is caught with probability 1 - (1 - f)^k for cheating
/// fraction f and k audited pairs — enough deterrence at a tiny fraction of
/// the malicious-model cost.

/// The linkage unit's signed record of one comparison.
struct ComparisonRecord {
  uint32_t a = 0;
  uint32_t b = 0;
  double score = 0;
};

/// A tamper-evident commitment to a full comparison run: a hash chain over
/// the canonical serialisation of all comparison records.
struct ComputationCommitment {
  std::string digest_hex;   ///< SHA-256 chain head
  size_t num_records = 0;
};

/// Computes the commitment the LU publishes before results are released.
ComputationCommitment CommitToComparisons(const std::vector<ComparisonRecord>& records);

/// One audit outcome.
struct AuditReport {
  size_t audited = 0;
  size_t mismatches = 0;       ///< score disagreements beyond tolerance
  size_t missing_pairs = 0;    ///< sampled pairs absent from the LU's record
  bool commitment_valid = false;  ///< records re-hash to the commitment

  bool Passed() const {
    return commitment_valid && mismatches == 0 && missing_pairs == 0;
  }
};

/// Audits the LU's claimed comparisons:
///   1. re-hashes `claimed` and checks it against `commitment`;
///   2. samples `sample_size` of the candidate pairs the LU was supposed to
///      compare and recomputes their similarity from the owners' filters;
///   3. reports any pair the LU omitted or whose score deviates by more
///      than `tolerance`.
/// `similarity` must be the agreed comparison function of the protocol.
Result<AuditReport> AuditComparisons(
    const ComputationCommitment& commitment,
    const std::vector<ComparisonRecord>& claimed,
    const std::vector<CandidatePair>& expected_candidates,
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const PairSimilarityFunction& similarity, size_t sample_size, Rng& rng,
    double tolerance = 1e-9);

/// Probability that an audit of `sample_size` pairs catches an LU that
/// falsified a fraction `cheat_fraction` of `total_pairs` comparisons.
double DetectionProbability(double cheat_fraction, size_t sample_size);

}  // namespace pprl

#endif  // PPRL_PRIVACY_ACCOUNTABILITY_H_
