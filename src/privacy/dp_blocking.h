#ifndef PPRL_PRIVACY_DP_BLOCKING_H_
#define PPRL_PRIVACY_DP_BLOCKING_H_

#include <cstddef>

#include "common/bitvector.h"
#include "common/random.h"
#include "blocking/blocking.h"

namespace pprl {

/// Differentially private blocking (survey §3.4 DP + [14]): the block-size
/// histogram a linkage unit (or the other party) observes is itself a
/// disclosure channel — "how many people share this soundex code" can
/// single out rare names. Padding each block with dummy records to a
/// noisy target makes the observed sizes insensitive to any one record.

/// Result of protecting one block index.
struct DpBlockingStats {
  size_t real_records = 0;
  size_t dummies_added = 0;
  size_t blocks = 0;
  double epsilon_spent = 0;
};

/// Pads every block of `index` with dummy record ids so the observed block
/// size equals true size + max(0, two-sided-geometric noise + padding
/// offset). Dummy ids start at `dummy_id_start` (pick it above every real
/// record id; downstream comparison treats dummies as never-matching
/// because their filters are random).
///
/// Each block's size release is epsilon-DP (sensitivity 1, discrete
/// Laplace); `padding_offset` shifts the noise up so truncation at zero —
/// which would bias sizes and break DP at the tails — is rare.
DpBlockingStats PadBlocksWithDummies(BlockIndex& index, double epsilon,
                                     uint32_t dummy_id_start, Rng& rng,
                                     int padding_offset = 3);

/// Generates the dummy filters that make padded blocks look real on the
/// wire: random bit vectors with the same length and a plausible weight.
/// Dummies never reach the match threshold against real encodings (their
/// bits are uniform), so linkage quality is unaffected.
std::vector<BitVector> MakeDummyFilters(size_t count, size_t num_bits,
                                        double fill_fraction, Rng& rng);

}  // namespace pprl

#endif  // PPRL_PRIVACY_DP_BLOCKING_H_
