#include "privacy/dp.h"

#include <cmath>

namespace pprl {

double LaplaceMechanism(double true_value, double sensitivity, double epsilon, Rng& rng) {
  if (epsilon <= 0) return true_value;  // no privacy requested
  return true_value + rng.NextLaplace(sensitivity / epsilon);
}

bool RandomizedResponse(bool true_bit, double epsilon, Rng& rng) {
  const double keep_prob = std::exp(epsilon) / (1.0 + std::exp(epsilon));
  return rng.NextBool(keep_prob) ? true_bit : !true_bit;
}

double RandomizedResponseEstimate(size_t observed_ones, size_t n, double epsilon) {
  if (n == 0) return 0;
  const double p = std::exp(epsilon) / (1.0 + std::exp(epsilon));
  // E[observed] = true*p + (n-true)*(1-p)  =>  true = (observed - n(1-p)) / (2p-1).
  if (std::abs(2 * p - 1) < 1e-12) return static_cast<double>(n) / 2;
  return (static_cast<double>(observed_ones) - static_cast<double>(n) * (1 - p)) /
         (2 * p - 1);
}

bool PrivacyBudget::Spend(double epsilon) {
  if (epsilon < 0) return false;
  if (spent_ + epsilon > total_ + 1e-12) return false;
  spent_ += epsilon;
  return true;
}

size_t NoisyCount(size_t true_count, double epsilon, Rng& rng) {
  if (epsilon <= 0) return true_count;
  // Two-sided geometric noise with parameter alpha = e^-eps.
  const double alpha = std::exp(-epsilon);
  // Sample by inversion: noise magnitude k >= 1 w.p. proportional to alpha^k.
  const double u = rng.NextDouble();
  const double p_zero = (1 - alpha) / (1 + alpha);
  double acc = p_zero;
  int64_t k = 0;
  while (u > acc && k < 1000) {
    ++k;
    acc += p_zero * std::pow(alpha, static_cast<double>(k)) * 2;  // +k and -k
  }
  if (k != 0 && rng.NextBool()) k = -k;
  const int64_t noisy = static_cast<int64_t>(true_count) + k;
  return noisy < 0 ? 0 : static_cast<size_t>(noisy);
}

}  // namespace pprl
