#include "privacy/accountability.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "crypto/hash.h"

namespace pprl {

namespace {

/// Canonical, locale-independent serialisation of one record.
std::string Canonical(const ComparisonRecord& record) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u|%u|%.12f", record.a, record.b, record.score);
  return buf;
}

}  // namespace

ComputationCommitment CommitToComparisons(const std::vector<ComparisonRecord>& records) {
  // Hash chain: h_0 = H("pprl-audit-v1"), h_i = H(h_{i-1} || record_i).
  std::array<uint8_t, 32> digest = Sha256("pprl-audit-v1");
  for (const ComparisonRecord& record : records) {
    std::string material(reinterpret_cast<const char*>(digest.data()), digest.size());
    material += Canonical(record);
    digest = Sha256(material);
  }
  ComputationCommitment commitment;
  commitment.digest_hex = DigestToHex(digest);
  commitment.num_records = records.size();
  return commitment;
}

Result<AuditReport> AuditComparisons(
    const ComputationCommitment& commitment,
    const std::vector<ComparisonRecord>& claimed,
    const std::vector<CandidatePair>& expected_candidates,
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const PairSimilarityFunction& similarity, size_t sample_size, Rng& rng,
    double tolerance) {
  AuditReport report;

  // 1. The claimed records must re-hash to the published commitment.
  const ComputationCommitment recomputed = CommitToComparisons(claimed);
  report.commitment_valid = recomputed.digest_hex == commitment.digest_hex &&
                            recomputed.num_records == commitment.num_records;

  // Index the claimed scores for sampling.
  std::map<std::pair<uint32_t, uint32_t>, double> claimed_scores;
  for (const ComparisonRecord& record : claimed) {
    claimed_scores[{record.a, record.b}] = record.score;
  }

  // 2. Sample expected candidate pairs and recompute.
  if (expected_candidates.empty()) {
    return report;
  }
  const size_t k = std::min(sample_size, expected_candidates.size());
  for (size_t s = 0; s < k; ++s) {
    const CandidatePair& pair =
        expected_candidates[rng.NextUint64(expected_candidates.size())];
    if (pair.a >= a_filters.size() || pair.b >= b_filters.size()) {
      return Status::InvalidArgument("candidate pair outside the filter arrays");
    }
    ++report.audited;
    const auto it = claimed_scores.find({pair.a, pair.b});
    if (it == claimed_scores.end()) {
      ++report.missing_pairs;
      continue;
    }
    const double recomputed_score = similarity(a_filters[pair.a], b_filters[pair.b]);
    if (std::abs(recomputed_score - it->second) > tolerance) {
      ++report.mismatches;
    }
  }
  return report;
}

double DetectionProbability(double cheat_fraction, size_t sample_size) {
  if (cheat_fraction <= 0) return 0;
  if (cheat_fraction >= 1) return 1;
  return 1.0 - std::pow(1.0 - cheat_fraction, static_cast<double>(sample_size));
}

}  // namespace pprl
