#include "privacy/attacks.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/strings.h"

namespace pprl {

AttackResult FrequencyAlignmentAttack(
    const std::vector<std::string>& encoded,
    const std::vector<std::pair<std::string, double>>& dictionary) {
  AttackResult result;
  result.guesses.assign(encoded.size(), -1);

  // Rank encoded values by observed frequency.
  std::unordered_map<std::string, size_t> counts;
  for (const std::string& code : encoded) ++counts[code];
  std::vector<std::pair<size_t, std::string>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [code, count] : counts) ranked.push_back({count, code});
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });

  // Dictionary is already most-frequent-first; align rank i <-> rank i.
  std::unordered_map<std::string, int> code_to_guess;
  for (size_t i = 0; i < ranked.size() && i < dictionary.size(); ++i) {
    code_to_guess[ranked[i].second] = static_cast<int>(i);
  }
  for (size_t r = 0; r < encoded.size(); ++r) {
    const auto it = code_to_guess.find(encoded[r]);
    if (it != code_to_guess.end()) result.guesses[r] = it->second;
  }
  return result;
}

AttackResult BloomDictionaryAttack(const std::vector<BitVector>& filters,
                                   const std::vector<std::string>& dictionary,
                                   const BloomFilterEncoder& attacker_encoder,
                                   double min_dice) {
  AttackResult result;
  result.guesses.assign(filters.size(), -1);
  // Pre-encode the dictionary once.
  std::vector<BitVector> dict_filters;
  dict_filters.reserve(dictionary.size());
  for (const std::string& value : dictionary) {
    dict_filters.push_back(attacker_encoder.EncodeString(value));
  }
  for (size_t r = 0; r < filters.size(); ++r) {
    double best = min_dice;
    int best_idx = -1;
    for (size_t d = 0; d < dict_filters.size(); ++d) {
      if (dict_filters[d].size() != filters[r].size()) continue;
      const size_t inter = filters[r].AndCount(dict_filters[d]);
      const size_t total = filters[r].Count() + dict_filters[d].Count();
      if (total == 0) continue;
      const double dice = 2.0 * static_cast<double>(inter) / static_cast<double>(total);
      if (dice > best) {
        best = dice;
        best_idx = static_cast<int>(d);
      }
    }
    result.guesses[r] = best_idx;
  }
  return result;
}

AttackResult BloomPatternMiningAttack(
    const std::vector<BitVector>& filters,
    const std::vector<std::pair<std::string, double>>& dictionary, size_t q) {
  AttackResult result;
  result.guesses.assign(filters.size(), -1);
  if (filters.empty() || dictionary.empty()) return result;
  const size_t l = filters[0].size();
  const double n = static_cast<double>(filters.size());

  // Observed frequency of each bit position across the filters.
  std::vector<double> bit_freq(l, 0);
  for (const BitVector& bf : filters) {
    for (uint32_t pos : bf.SetPositions()) bit_freq[pos] += 1.0;
  }
  for (double& f : bit_freq) f /= n;

  // Expected occurrence frequency of each q-gram across the dictionary
  // (weighted by value frequency).
  QGramOptions opts;
  opts.q = q;
  std::map<std::string, double> gram_freq;
  double total_weight = 0;
  for (const auto& [value, freq] : dictionary) total_weight += freq;
  for (const auto& [value, freq] : dictionary) {
    const double w = total_weight > 0 ? freq / total_weight : 0;
    for (const std::string& gram : QGrams(NormalizeQid(value), opts)) {
      gram_freq[gram] += w;
    }
  }

  // Attribute to each frequent q-gram the bit positions whose observed
  // frequency is closest to the gram's expected frequency. A position can
  // serve several grams (hash collisions do the same).
  struct GramInfo {
    std::string gram;
    double freq;
    std::vector<uint32_t> positions;
  };
  std::vector<GramInfo> grams;
  grams.reserve(gram_freq.size());
  for (const auto& [gram, freq] : gram_freq) grams.push_back({gram, freq, {}});
  std::sort(grams.begin(), grams.end(),
            [](const GramInfo& x, const GramInfo& y) { return x.freq > y.freq; });
  // Tolerance band around the expected frequency; Bloom collisions push the
  // observed frequency up, so the band is asymmetric.
  constexpr double kBand = 0.05;
  for (GramInfo& info : grams) {
    for (uint32_t pos = 0; pos < l; ++pos) {
      if (bit_freq[pos] >= info.freq - kBand && bit_freq[pos] <= info.freq + 2 * kBand) {
        info.positions.push_back(pos);
      }
    }
  }

  // Score each filter against each dictionary value: fraction of the
  // value's grams whose attributed positions are (mostly) set.
  for (size_t r = 0; r < filters.size(); ++r) {
    double best_score = 0.5;  // demand better-than-chance evidence
    int best_idx = -1;
    for (size_t d = 0; d < dictionary.size(); ++d) {
      const auto value_grams = QGrams(NormalizeQid(dictionary[d].first), opts);
      if (value_grams.empty()) continue;
      double supported = 0;
      double considered = 0;
      for (const std::string& gram : value_grams) {
        // Find the gram's attributed positions.
        const auto it =
            std::find_if(grams.begin(), grams.end(),
                         [&gram](const GramInfo& g) { return g.gram == gram; });
        if (it == grams.end() || it->positions.empty()) continue;
        considered += 1;
        size_t set_count = 0;
        for (uint32_t pos : it->positions) {
          if (filters[r].Get(pos)) ++set_count;
        }
        supported += static_cast<double>(set_count) /
                     static_cast<double>(it->positions.size());
      }
      if (considered == 0) continue;
      const double score = supported / considered;
      if (score > best_score) {
        best_score = score;
        best_idx = static_cast<int>(d);
      }
    }
    result.guesses[r] = best_idx;
  }
  return result;
}

double ScoreAttack(AttackResult& result, const std::vector<int>& true_indices) {
  if (result.guesses.empty() || result.guesses.size() != true_indices.size()) {
    result.success_rate = 0;
    return 0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < result.guesses.size(); ++i) {
    if (result.guesses[i] >= 0 && result.guesses[i] == true_indices[i]) ++correct;
  }
  result.success_rate =
      static_cast<double>(correct) / static_cast<double>(result.guesses.size());
  return result.success_rate;
}

}  // namespace pprl
