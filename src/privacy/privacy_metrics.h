#ifndef PPRL_PRIVACY_PRIVACY_METRICS_H_
#define PPRL_PRIVACY_PRIVACY_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitvector.h"

namespace pprl {

/// Empirical privacy metrics for PPRL evaluation (survey §3.3 "Privacy
/// guarantees", [41]).

/// Disclosure risk of a set of opaque codes: the probability that a record
/// drawn uniformly can be re-identified from its code alone, i.e. the
/// fraction of records whose code is unique (1/k-anonymity style, k = 1).
double UniqueCodeDisclosureRisk(const std::vector<std::string>& codes);

/// Mean disclosure risk 1/k over the code groups: a record sharing its code
/// with k-1 others is re-identified with probability 1/k.
double MeanDisclosureRisk(const std::vector<std::string>& codes);

/// Shannon entropy (bits) of the code distribution — higher is better for
/// privacy (uniform codes carry no frequency signal).
double CodeEntropyBits(const std::vector<std::string>& codes);

/// Information gain of an encoding: entropy of the plaintext distribution
/// minus the conditional entropy of plaintexts given codes, both estimated
/// from the paired sample. 0 means the code reveals nothing about which
/// plaintext group a record belongs to; H(plaintext) means full disclosure.
double InformationGainBits(const std::vector<std::string>& plaintexts,
                           const std::vector<std::string>& codes);

/// Per-position one-bit frequencies of a Bloom-filter collection; the
/// variance of this vector is the raw material of pattern attacks, so
/// hardened encodings should push it toward a flat profile.
std::vector<double> BitFrequencies(const std::vector<BitVector>& filters);

/// Standard deviation of BitFrequencies — a single-number "frequency
/// signal" indicator (0.0 for perfectly balanced encodings).
double BitFrequencySpread(const std::vector<BitVector>& filters);

}  // namespace pprl

#endif  // PPRL_PRIVACY_PRIVACY_METRICS_H_
