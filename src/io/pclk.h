#ifndef PPRL_IO_PCLK_H_
#define PPRL_IO_PCLK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "encoding/clk_io.h"

namespace pprl::io {

/// PCLK — the binary columnar shard format for encoded CLKs.
///
/// The interchange CSV (`clk_io.h`) spends ~10 bytes of text, a base64
/// round-trip and a per-bit unpack loop on every filter byte; PCLK stores
/// the same shipment as sections a reader can fread straight into a
/// `BitMatrix`. Bit rows are laid out at the matrix's own 64-byte-aligned
/// stride, so loading a shard is one contiguous read with no re-packing,
/// and any row range can be addressed by offset arithmetic (head/tail/
/// sample without touching the rest of the file).
///
/// File layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic 0x4B4C4350 ("PCLK")
///   4       4     version (currently 1)
///   8       4     flags (bit 0: popcount section present)
///   12      4     filter_bits — bit length of every row
///   16      8     row_count
///   24      4     row_stride_bytes — multiple of 64, >= ceil(filter_bits/8)
///   28      4     reserved, must be 0
///   32      8     ids-section checksum (FNV-1a-64)
///   40      8     popcount-section checksum (0 when absent)
///   48      8     rows-section checksum
///   56      8     header checksum — FNV-1a-64 over bytes [0, 56)
///   64      8n    ids section: row_count u64 record ids
///   ...     4n    popcount section (optional): row_count u32 popcounts
///   ...           zero padding to the next 64-byte file offset
///   ...     sn    rows section: row_count rows of row_stride_bytes each;
///                 bits past filter_bits within a row must be 0
///
/// The checksum is the same FNV-1a-64 the protocol-v2 shipment chunks use
/// (service/protocol.h), so a spooled shard and a wire chunk corrupt the
/// same way and are caught the same way. Decoder errors are typed:
///   kInvalidArgument   bad magic / unsupported version / bad geometry
///   kOutOfRange        truncated header or sections
///   kProtocolViolation reserved bits set, trailing garbage, stray bits
///                      past filter_bits
///   kIoError           a checksum mismatch (corruption in flight/at rest)
inline constexpr uint32_t kPclkMagic = 0x4B4C4350u;
inline constexpr uint32_t kPclkVersion = 1;
inline constexpr uint32_t kPclkFlagPopcounts = 1u << 0;
inline constexpr size_t kPclkHeaderBytes = 64;

/// FNV-1a 64 (same constants as the protocol-v2 chunk checksum).
uint64_t Fnv1a64(const void* data, size_t len);

/// A decoded PCLK header: the shard's geometry without its data.
struct PclkInfo {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint32_t filter_bits = 0;
  uint32_t row_stride_bytes = 0;
  uint64_t row_count = 0;

  bool has_popcounts() const { return (flags & kPclkFlagPopcounts) != 0; }
  uint64_t ids_offset() const { return kPclkHeaderBytes; }
  uint64_t popcounts_offset() const { return ids_offset() + row_count * 8; }
  uint64_t rows_offset() const;
  uint64_t total_bytes() const {
    return rows_offset() + row_count * row_stride_bytes;
  }
};

/// Serialises a shard. With `include_popcounts`, the per-row popcount
/// column is written so readers can cross-check row integrity without
/// recounting.
std::vector<uint8_t> EncodePclk(const EncodedShard& shard,
                                bool include_popcounts = true);

/// Full decode with checksum verification (see error taxonomy above).
Result<EncodedShard> DecodePclk(const uint8_t* data, size_t size);

/// Header-only decode (verifies the header checksum and geometry).
Result<PclkInfo> DecodePclkHeader(const uint8_t* data, size_t size);

/// Writes `shard` to `path`, replacing any existing file.
Status WritePclkFile(const std::string& path, const EncodedShard& shard,
                     bool include_popcounts = true);

/// Reads and fully verifies a shard file.
Result<EncodedShard> ReadPclkFile(const std::string& path);

/// Reads only the header of a shard file.
Result<PclkInfo> ReadPclkInfo(const std::string& path);

/// Reads rows [row_begin, row_begin + row_count) by seeking to their
/// section offsets. Section checksums cover whole sections and are NOT
/// verified for a slice (the header checksum still is).
Result<EncodedShard> ReadPclkSlice(const std::string& path, uint64_t row_begin,
                                   uint64_t row_count);

/// True when the file starts with the PCLK magic (format sniffing for the
/// auto-detecting loaders; a missing/short file is just "not PCLK").
bool LooksLikePclkFile(const std::string& path);

}  // namespace pprl::io

#endif  // PPRL_IO_PCLK_H_
