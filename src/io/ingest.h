#ifndef PPRL_IO_INGEST_H_
#define PPRL_IO_INGEST_H_

#include <cstdint>
#include <string>

#include "common/bit_matrix.h"
#include "common/record.h"
#include "common/status.h"
#include "encoding/bloom_filter.h"
#include "encoding/clk_io.h"
#include "io/csv_stream.h"

namespace pprl::io {

/// The back half of the I/O subsystem: everything that turns files into
/// `EncodedShard`s (and back) without materializing per-record
/// intermediates. A million-record owner upload goes
///   CSV bytes -> CsvCursor field views -> ClkEncoder -> ShardBuilder rows
/// with one `Record` object reused for every row and the filters written
/// straight into `BitMatrix` storage — no `Database`, no
/// `std::vector<BitVector>`, no `CsvTable` ever exists.
///
/// Every loader reports into the ingest metric family
/// (docs/OBSERVABILITY.md):
///   pprl_ingest_bytes_total{format=...}    input bytes consumed
///   pprl_ingest_records_total{format=...}  records materialized
///   pprl_ingest_seconds{format=...}        wall time per ingest call

/// On-disk representations of an encoded shard.
enum class ShardFileFormat {
  kAuto,  ///< read: sniff the PCLK magic; write: by ".pclk" extension
  kCsv,   ///< the interchange CSV of clk_io.h (id, bits, clk)
  kPclk,  ///< the binary columnar format of pclk.h
};

/// "auto" / "csv" / "pclk" (stable; used in flags and config printouts).
const char* ShardFileFormatName(ShardFileFormat format);

/// Throughput accounting for one ingest call, for benchmarks and logs
/// (metrics are reported independently of whether this is requested).
struct IngestStats {
  uint64_t input_bytes = 0;
  uint64_t records = 0;
  double seconds = 0;

  double mb_per_second() const {
    return seconds > 0 ? static_cast<double>(input_bytes) / 1e6 / seconds : 0;
  }
  double records_per_second() const {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0;
  }
};

/// Incrementally assembles an `EncodedShard`, writing each appended filter
/// directly into `BitMatrix` rows (geometric growth, one memcpy per
/// doubling — never one allocation per record).
class ShardBuilder {
 public:
  /// All appended filters must have exactly `filter_bits` bits.
  explicit ShardBuilder(size_t filter_bits);

  size_t filter_bits() const { return filter_bits_; }
  size_t size() const { return ids_.size(); }

  /// Appends one record; the filter's words are copied into the next row.
  Status Append(uint64_t id, const BitVector& filter);

  /// Appends one record from its little-endian byte serialisation
  /// (BitVectorToBytes layout). `len` must cover filter_bits; stray bits
  /// past filter_bits in the final byte are masked off, matching
  /// BitVectorFromBytes.
  Status AppendBytes(uint64_t id, const uint8_t* bytes, size_t len);

  /// Returns the finished shard (row popcounts computed) and resets the
  /// builder to empty.
  EncodedShard Finish();

 private:
  size_t filter_bits_;
  std::vector<uint64_t> ids_;
  BitMatrix bits_;  ///< grows geometrically via BitMatrix::AppendRow
};

/// Reads only the header row of a QID CSV and returns the schema the
/// streaming ingest would use (bookkeeping columns excluded, types by
/// GuessFieldTypeFromName). Lets a caller configure an encoder before the
/// single full pass of EncodeCsvToShard.
Result<Schema> ReadCsvSchema(const std::string& path,
                             CsvCursorOptions options = {});

/// Streams a QID CSV (datagen/io layout: optional "id"/"entity_id"
/// bookkeeping columns, remaining columns QID fields typed by
/// GuessFieldTypeFromName) through `encoder` into a shard. This is the
/// fused ingest path: the file is parsed and encoded in one pass.
Result<EncodedShard> EncodeCsvToShard(const std::string& path,
                                      const ClkEncoder& encoder,
                                      CsvCursorOptions options = {},
                                      IngestStats* stats = nullptr);

/// Streams a QID CSV into a materialized `Database` (datagen/io layout and
/// semantics — same schema guessing, same id/entity_id handling). Unlike
/// the legacy ReadCsvFile path this never builds a `CsvTable`, so every
/// byte is copied once, from the read buffer into its record value.
Result<Database> ReadDatabaseCsvStream(const std::string& path,
                                       CsvCursorOptions options = {},
                                       IngestStats* stats = nullptr);

/// Streams an interchange CSV (id, bits, clk — clk_io.h layout) into a
/// shard, decoding base64 rows straight into matrix rows.
Result<EncodedShard> ReadCsvShard(const std::string& path,
                                  CsvCursorOptions options = {},
                                  IngestStats* stats = nullptr);

/// Loads a shard file in either format, sniffing the PCLK magic (or
/// honouring an explicit `format`).
Result<EncodedShard> ReadShardAuto(const std::string& path,
                                   ShardFileFormat format = ShardFileFormat::kAuto,
                                   IngestStats* stats = nullptr);

/// Writes a shard in `format`; kAuto picks PCLK when `path` ends in
/// ".pclk", the interchange CSV otherwise.
Status WriteShardFile(const std::string& path, const EncodedShard& shard,
                      ShardFileFormat format = ShardFileFormat::kAuto);

/// The format ReadShardAuto would pick for an existing file (by content),
/// or for a new file by extension when it does not exist.
ShardFileFormat DetectShardFileFormat(const std::string& path);

}  // namespace pprl::io

#endif  // PPRL_IO_INGEST_H_
