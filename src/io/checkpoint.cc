#include "io/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <dirent.h>

#include "io/pclk.h"
#include "obs/metrics.h"

namespace pprl::io {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

std::string Offset(uint64_t offset) {
  return " at offset " + std::to_string(offset);
}

void AppendSection(std::vector<uint8_t>* out, CheckpointSection type,
                   const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> header;
  header.reserve(kCheckpointSectionHeaderBytes);
  PutU32(&header, static_cast<uint32_t>(type));
  PutU32(&header, 0);  // reserved
  PutU64(&header, payload.size());
  PutU64(&header, Fnv1a64(payload.data(), payload.size()));
  PutU64(&header, Fnv1a64(header.data(), header.size()));
  out->insert(out->end(), header.begin(), header.end());
  out->insert(out->end(), payload.begin(), payload.end());
}

struct CheckpointMetrics {
  obs::Counter& writes = obs::GlobalMetrics().GetCounter(
      "pprl_checkpoint_writes_total", "checkpoint snapshots written");
  obs::Counter& write_failures = obs::GlobalMetrics().GetCounter(
      "pprl_checkpoint_write_failures_total",
      "checkpoint writes that failed (disk full, I/O errors)");
  obs::Gauge& bytes = obs::GlobalMetrics().GetGauge(
      "pprl_checkpoint_bytes", "size of the last checkpoint written");
};

CheckpointMetrics& Metrics() {
  static CheckpointMetrics metrics;
  return metrics;
}

Status WriteFailed(const Status& status) {
  Metrics().write_failures.Increment();
  return status;
}

/// Re-raises a nested decode error with checkpoint context, keeping the
/// inner error's type (so corruption stays kIoError, truncation
/// kOutOfRange, ...).
Status WithContext(const std::string& context, const Status& inner) {
  const std::string msg = context + ": " + inner.message();
  switch (inner.code()) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg);
    case StatusCode::kProtocolViolation:
      return Status::ProtocolViolation(msg);
    case StatusCode::kIoError:
      return Status::IoError(msg);
    default:
      return Status::Internal(msg);
  }
}

}  // namespace

std::vector<uint8_t> EncodeCheckpoint(const OnlineSnapshot& snapshot) {
  std::vector<uint8_t> out;
  out.reserve(kCheckpointHeaderBytes);
  PutU32(&out, kCheckpointMagic);
  PutU32(&out, kCheckpointVersion);
  PutU64(&out, snapshot.wal_sequence);
  PutU32(&out, snapshot.filter_bits);
  PutU32(&out, snapshot.lsh_tables);
  PutU32(&out, snapshot.lsh_bits_per_key);
  PutU32(&out, 4);  // section count
  PutU64(&out, snapshot.lsh_seed);
  PutU64(&out, DoubleBits(snapshot.dice_threshold));
  PutU64(&out, 0);  // reserved
  PutU64(&out, Fnv1a64(out.data(), out.size()));

  AppendSection(&out, CheckpointSection::kRows,
                EncodePclk(snapshot.rows, /*include_popcounts=*/false));

  std::vector<uint8_t> databases;
  PutU32(&databases, static_cast<uint32_t>(snapshot.database_names.size()));
  for (size_t i = 0; i < snapshot.database_names.size(); ++i) {
    const std::string& name = snapshot.database_names[i];
    PutU32(&databases, static_cast<uint32_t>(name.size()));
    databases.insert(databases.end(), name.begin(), name.end());
    PutU32(&databases, snapshot.database_sizes[i]);
  }
  AppendSection(&out, CheckpointSection::kDatabases, databases);

  const size_t rows = snapshot.parent.size();
  std::vector<uint8_t> partition;
  partition.reserve(8 + rows * 8 + (rows + 7) / 8 + 16);
  PutU64(&partition, rows);
  for (uint32_t p : snapshot.parent) PutU32(&partition, p);
  for (uint32_t db : snapshot.row_database) PutU32(&partition, db);
  for (size_t i = 0; i < rows; i += 8) {
    uint8_t byte = 0;
    for (size_t b = 0; b < 8 && i + b < rows; ++b) {
      if (snapshot.linked[i + b]) byte |= static_cast<uint8_t>(1u << b);
    }
    partition.push_back(byte);
  }
  PutU64(&partition, snapshot.edges);
  PutU64(&partition, snapshot.comparisons);
  AppendSection(&out, CheckpointSection::kPartition, partition);

  std::vector<uint8_t> lsh;
  PutU64(&lsh, snapshot.band_checksum);
  AppendSection(&out, CheckpointSection::kLshState, lsh);

  return out;
}

Result<OnlineSnapshot> DecodeCheckpoint(const uint8_t* data, size_t size,
                                        const std::string& origin) {
  if (size < kCheckpointHeaderBytes) {
    return Status::OutOfRange("checkpoint " + origin + " is truncated: " +
                              std::to_string(size) + " bytes, header needs " +
                              std::to_string(kCheckpointHeaderBytes));
  }
  if (GetU32(data) != kCheckpointMagic) {
    return Status::InvalidArgument("not a checkpoint: " + origin +
                                   " (bad magic" + Offset(0) + ")");
  }
  if (GetU32(data + 4) != kCheckpointVersion) {
    return Status::InvalidArgument("checkpoint " + origin +
                                   " has unsupported version " +
                                   std::to_string(GetU32(data + 4)) + Offset(4));
  }
  if (GetU64(data + 56) != Fnv1a64(data, 56)) {
    return Status::IoError("checkpoint " + origin +
                           " header checksum mismatch" + Offset(56));
  }
  if (GetU64(data + 48) != 0) {
    return Status::ProtocolViolation("checkpoint " + origin +
                                     " has reserved header bits set" +
                                     Offset(48));
  }

  OnlineSnapshot snapshot;
  snapshot.wal_sequence = GetU64(data + 8);
  snapshot.filter_bits = GetU32(data + 16);
  snapshot.lsh_tables = GetU32(data + 20);
  snapshot.lsh_bits_per_key = GetU32(data + 24);
  const uint32_t section_count = GetU32(data + 28);
  snapshot.lsh_seed = GetU64(data + 32);
  snapshot.dice_threshold = BitsDouble(GetU64(data + 40));
  if (snapshot.filter_bits == 0 || snapshot.lsh_tables == 0 ||
      snapshot.lsh_bits_per_key == 0) {
    return Status::ProtocolViolation("checkpoint " + origin +
                                     " declares degenerate LSH geometry" +
                                     Offset(16));
  }
  if (section_count != 4) {
    return Status::ProtocolViolation("checkpoint " + origin + " declares " +
                                     std::to_string(section_count) +
                                     " sections, format has 4" + Offset(28));
  }

  bool seen[5] = {};
  uint64_t offset = kCheckpointHeaderBytes;
  for (uint32_t s = 0; s < section_count; ++s) {
    if (size - offset < kCheckpointSectionHeaderBytes) {
      return Status::OutOfRange("checkpoint " + origin +
                                " is truncated mid-section-header" +
                                Offset(offset));
    }
    const uint8_t* h = data + offset;
    if (GetU64(h + 24) != Fnv1a64(h, 24)) {
      return Status::IoError("checkpoint " + origin +
                             " section header checksum mismatch" +
                             Offset(offset));
    }
    const uint32_t type = GetU32(h);
    if (GetU32(h + 4) != 0) {
      return Status::ProtocolViolation("checkpoint " + origin +
                                       " section has reserved bits set" +
                                       Offset(offset + 4));
    }
    const uint64_t len = GetU64(h + 8);
    if (size - offset - kCheckpointSectionHeaderBytes < len) {
      return Status::OutOfRange("checkpoint " + origin +
                                " is truncated mid-section" + Offset(offset));
    }
    const uint8_t* payload = h + kCheckpointSectionHeaderBytes;
    if (GetU64(h + 16) != Fnv1a64(payload, len)) {
      return Status::IoError("checkpoint " + origin +
                             " section payload checksum mismatch" +
                             Offset(offset));
    }
    if (type < 1 || type > 4 || seen[type]) {
      return Status::ProtocolViolation("checkpoint " + origin +
                                       " has unknown or repeated section " +
                                       std::to_string(type) + Offset(offset));
    }
    seen[type] = true;

    switch (static_cast<CheckpointSection>(type)) {
      case CheckpointSection::kRows: {
        auto rows = DecodePclk(payload, len);
        if (!rows.ok()) {
          return WithContext(
              "checkpoint " + origin + " rows section" + Offset(offset),
              rows.status());
        }
        snapshot.rows = std::move(*rows);
        break;
      }
      case CheckpointSection::kDatabases: {
        if (len < 4) {
          return Status::OutOfRange("checkpoint " + origin +
                                    " databases section is truncated" +
                                    Offset(offset));
        }
        const uint32_t count = GetU32(payload);
        uint64_t p = 4;
        for (uint32_t i = 0; i < count; ++i) {
          if (len - p < 4) {
            return Status::OutOfRange("checkpoint " + origin +
                                      " databases section is truncated" +
                                      Offset(offset));
          }
          const uint32_t name_len = GetU32(payload + p);
          p += 4;
          if (len - p < static_cast<uint64_t>(name_len) + 4 || name_len == 0) {
            return Status::ProtocolViolation(
                "checkpoint " + origin + " database name is malformed" +
                Offset(offset));
          }
          snapshot.database_names.emplace_back(
              reinterpret_cast<const char*>(payload + p), name_len);
          p += name_len;
          snapshot.database_sizes.push_back(GetU32(payload + p));
          p += 4;
        }
        if (p != len) {
          return Status::ProtocolViolation("checkpoint " + origin +
                                           " databases section has trailing "
                                           "garbage" +
                                           Offset(offset));
        }
        break;
      }
      case CheckpointSection::kPartition: {
        if (len < 8) {
          return Status::OutOfRange("checkpoint " + origin +
                                    " partition section is truncated" +
                                    Offset(offset));
        }
        const uint64_t rows = GetU64(payload);
        const uint64_t expected = 8 + rows * 8 + (rows + 7) / 8 + 16;
        if (len != expected) {
          return Status::ProtocolViolation(
              "checkpoint " + origin + " partition section length mismatch: " +
              std::to_string(len) + " bytes, geometry needs " +
              std::to_string(expected) + Offset(offset));
        }
        const uint8_t* p = payload + 8;
        snapshot.parent.reserve(rows);
        for (uint64_t i = 0; i < rows; ++i, p += 4) {
          snapshot.parent.push_back(GetU32(p));
        }
        snapshot.row_database.reserve(rows);
        for (uint64_t i = 0; i < rows; ++i, p += 4) {
          snapshot.row_database.push_back(GetU32(p));
        }
        snapshot.linked.reserve(rows);
        for (uint64_t i = 0; i < rows; ++i) {
          snapshot.linked.push_back((p[i / 8] >> (i % 8)) & 1);
        }
        p += (rows + 7) / 8;
        snapshot.edges = GetU64(p);
        snapshot.comparisons = GetU64(p + 8);
        break;
      }
      case CheckpointSection::kLshState: {
        if (len != 8) {
          return Status::ProtocolViolation("checkpoint " + origin +
                                           " LSH section length mismatch" +
                                           Offset(offset));
        }
        snapshot.band_checksum = GetU64(payload);
        break;
      }
    }
    offset += kCheckpointSectionHeaderBytes + len;
  }
  if (offset != size) {
    return Status::ProtocolViolation("checkpoint " + origin +
                                     " has trailing garbage" + Offset(offset));
  }

  // Cross-section consistency: a checkpoint that decodes but contradicts
  // itself must fail recovery loudly, never load partially.
  const size_t rows = snapshot.rows.size();
  if (snapshot.parent.size() != rows || snapshot.row_database.size() != rows ||
      snapshot.linked.size() != rows) {
    return Status::ProtocolViolation(
        "checkpoint " + origin + " sections disagree on the row count");
  }
  if (snapshot.rows.bits.num_bits() != snapshot.filter_bits) {
    return Status::ProtocolViolation(
        "checkpoint " + origin + " rows section filter bits disagree with "
        "the header");
  }
  if (snapshot.database_sizes.size() != snapshot.database_names.size()) {
    return Status::ProtocolViolation("checkpoint " + origin +
                                     " database registry is inconsistent");
  }
  std::vector<uint64_t> counted(snapshot.database_names.size(), 0);
  for (size_t i = 0; i < rows; ++i) {
    if (snapshot.parent[i] > i) {
      return Status::ProtocolViolation(
          "checkpoint " + origin + " union-find parent of row " +
          std::to_string(i) + " points forward");
    }
    if (snapshot.row_database[i] >= snapshot.database_names.size()) {
      return Status::ProtocolViolation(
          "checkpoint " + origin + " row " + std::to_string(i) +
          " names an unregistered database");
    }
    ++counted[snapshot.row_database[i]];
  }
  for (size_t d = 0; d < counted.size(); ++d) {
    if (counted[d] != snapshot.database_sizes[d]) {
      return Status::ProtocolViolation(
          "checkpoint " + origin + " database '" +
          snapshot.database_names[d] + "' size disagrees with its rows");
    }
  }
  return snapshot;
}

std::string CheckpointPath(const std::string& dir, uint64_t wal_sequence) {
  char name[64];
  std::snprintf(name, sizeof(name), "checkpoint-%020llu.pckp",
                static_cast<unsigned long long>(wal_sequence));
  return dir + "/" + name;
}

Status WriteCheckpointFile(const std::string& dir,
                           const OnlineSnapshot& snapshot,
                           std::string* final_path) {
  const std::vector<uint8_t> data = EncodeCheckpoint(snapshot);
  const std::string path = CheckpointPath(dir, snapshot.wal_sequence);
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return WriteFailed(ErrnoStatus("cannot create", tmp));
  const uint8_t* p = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status failed = ErrnoStatus("cannot write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return WriteFailed(failed);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status failed = ErrnoStatus("cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return WriteFailed(failed);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status failed = ErrnoStatus("cannot rename into place", tmp);
    ::unlink(tmp.c_str());
    return WriteFailed(failed);
  }
  // fsync the directory so the rename itself survives a machine crash.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return WriteFailed(ErrnoStatus("cannot open directory", dir));
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) return WriteFailed(ErrnoStatus("cannot fsync directory", dir));

  Metrics().writes.Increment();
  Metrics().bytes.Set(static_cast<int64_t>(data.size()));
  if (final_path != nullptr) *final_path = path;
  return Status::OK();
}

Result<OnlineSnapshot> ReadCheckpointFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ErrnoStatus("cannot open checkpoint", path);
  std::vector<uint8_t> data;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return ErrnoStatus("cannot read checkpoint", path);
  return DecodeCheckpoint(data.data(), data.size(), path);
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> checkpoints;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return checkpoints;
    return ErrnoStatus("cannot list checkpoint directory", dir);
  }
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    unsigned long long seq = 0;
    char trailer = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%20llu.pck%c", &seq, &trailer) ==
            2 &&
        trailer == 'p' && name == CheckpointPath("", seq).substr(1)) {
      checkpoints.emplace_back(seq, dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(checkpoints.begin(), checkpoints.end());
  return checkpoints;
}

}  // namespace pprl::io
