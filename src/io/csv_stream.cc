#include "io/csv_stream.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define PPRL_IO_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace pprl::io {

namespace {

constexpr size_t kMinBufferBytes = 4096;
constexpr size_t kNpos = static_cast<size_t>(-1);

/// Appends the positions of every structural byte (delimiter, quote, CR,
/// LF) in [data, data+n) to `out`, ascending. The byte loop the SIMD scan
/// falls back to — and the reference the conformance tests compare against.
void IndexSpecialsScalar(const char* data, size_t n, char delim,
                         std::vector<uint32_t>& out) {
  for (size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
}

#if PPRL_IO_HAVE_AVX2
/// AVX2 structural scan: four 32-byte compares per block, OR-ed into one
/// movemask whose set bits are extracted with ctz. Everything between
/// structural bytes is field payload and never inspected again, which is
/// what lets the parser move at memory bandwidth (the zsv technique).
__attribute__((target("avx2"))) void IndexSpecialsAvx2(const char* data, size_t n,
                                                       char delim,
                                                       std::vector<uint32_t>& out) {
  const __m256i vd = _mm256_set1_epi8(delim);
  const __m256i vq = _mm256_set1_epi8('"');
  const __m256i vn = _mm256_set1_epi8('\n');
  const __m256i vr = _mm256_set1_epi8('\r');
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i hit = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(v, vd), _mm256_cmpeq_epi8(v, vq)),
        _mm256_or_si256(_mm256_cmpeq_epi8(v, vn), _mm256_cmpeq_epi8(v, vr)));
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    while (mask != 0) {
      out.push_back(static_cast<uint32_t>(i) +
                    static_cast<uint32_t>(std::countr_zero(mask)));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    const char c = data[i];
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
}
#endif

bool Avx2Available() {
#if PPRL_IO_HAVE_AVX2
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
#else
  return false;
#endif
}

}  // namespace

Result<CsvCursor> CsvCursor::OpenFile(const std::string& path,
                                      CsvCursorOptions options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  CsvCursor cursor;
  cursor.file_ = f;
  cursor.storage_.resize(std::max(options.buffer_bytes, kMinBufferBytes));
  cursor.base_ = cursor.storage_.data();
  cursor.delimiter_ = options.delimiter;
  cursor.simd_ = options.scan == CsvScanMode::kAuto && Avx2Available();
  return cursor;
}

CsvCursor CsvCursor::FromMemory(std::string_view text, CsvCursorOptions options) {
  CsvCursor cursor;
  cursor.base_ = text.data();
  cursor.data_end_ = text.size();
  cursor.source_exhausted_ = true;
  cursor.delimiter_ = options.delimiter;
  cursor.simd_ = options.scan == CsvScanMode::kAuto && Avx2Available();
  cursor.Reindex();
  return cursor;
}

CsvCursor::CsvCursor(CsvCursor&& other) noexcept { *this = std::move(other); }

CsvCursor& CsvCursor::operator=(CsvCursor&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  base_ = other.base_;
  data_end_ = other.data_end_;
  pos_ = other.pos_;
  consumed_base_ = other.consumed_base_;
  storage_ = std::move(other.storage_);
  file_ = other.file_;
  other.file_ = nullptr;
  source_exhausted_ = other.source_exhausted_;
  specials_ = std::move(other.specials_);
  fields_ = std::move(other.fields_);
  scratch_ = std::move(other.scratch_);
  status_ = other.status_;
  record_index_ = other.record_index_;
  have_record_ = other.have_record_;
  delimiter_ = other.delimiter_;
  simd_ = other.simd_;
  if (!storage_.empty()) base_ = storage_.data();
  return *this;
}

CsvCursor::~CsvCursor() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string_view CsvCursor::field(size_t i) const {
  const FieldRef& f = fields_[i];
  const char* src = f.in_scratch ? scratch_.data() : base_;
  return std::string_view(src + f.offset, f.length);
}

void CsvCursor::Reindex() {
  specials_.clear();
  specials_.reserve(data_end_ / 8 + 16);
#if PPRL_IO_HAVE_AVX2
  if (simd_) {
    IndexSpecialsAvx2(base_, data_end_, delimiter_, specials_);
    return;
  }
#endif
  IndexSpecialsScalar(base_, data_end_, delimiter_, specials_);
}

size_t CsvCursor::SpecialLowerBound(size_t p) const {
  return static_cast<size_t>(
      std::lower_bound(specials_.begin(), specials_.end(), p) - specials_.begin());
}

bool CsvCursor::FillMore() {
  if (file_ == nullptr || source_exhausted_) {
    source_exhausted_ = true;
    return false;
  }
  // Compact: everything before the current record start is fully parsed.
  if (pos_ > 0) {
    std::memmove(storage_.data(), storage_.data() + pos_, data_end_ - pos_);
    consumed_base_ += pos_;
    data_end_ -= pos_;
    pos_ = 0;
  }
  // One record larger than the whole window: grow it.
  if (data_end_ == storage_.size()) storage_.resize(storage_.size() * 2);
  base_ = storage_.data();
  const size_t n =
      std::fread(storage_.data() + data_end_, 1, storage_.size() - data_end_, file_);
  bool progressed = n > 0;
  if (n == 0) {
    if (std::ferror(file_) != 0) status_ = Status::IoError("CSV read failed");
    source_exhausted_ = true;
  }
  data_end_ += n;
  Reindex();
  return progressed && status_.ok();
}

CsvCursor::ParseResult CsvCursor::TryParseRecord(bool at_eof) {
  fields_.clear();
  scratch_.clear();
  size_t p = pos_;
  if (p >= data_end_) return at_eof ? ParseResult::kEndOfInput : ParseResult::kNeedMore;
  size_t si = SpecialLowerBound(p);

  for (;;) {  // one iteration per field
    bool record_done = false;
    size_t next_p = 0;

    if (base_[p] == '"') {
      // --- Quoted field ---
      const size_t content_start = p + 1;
      const size_t scratch_begin = scratch_.size();
      bool used_scratch = false;
      size_t segment_start = content_start;
      while (si < specials_.size() && specials_[si] < content_start) ++si;

      size_t close = kNpos;
      while (close == kNpos) {
        size_t nq = kNpos;
        while (si < specials_.size()) {
          const size_t s = specials_[si];
          if (base_[s] == '"') {
            nq = s;
            break;
          }
          ++si;  // delimiters and newlines inside quotes are data
        }
        if (nq == kNpos) {
          if (!at_eof) return ParseResult::kNeedMore;
          status_ = Status::InvalidArgument("unterminated quoted CSV field");
          return ParseResult::kError;
        }
        if (nq + 1 >= data_end_) {
          if (!at_eof) return ParseResult::kNeedMore;  // "" vs close undecided
          close = nq;
          ++si;
        } else if (base_[nq + 1] == '"') {
          // Escaped quote: flush the span before it plus one literal quote.
          scratch_.append(base_ + segment_start, nq - segment_start);
          scratch_.push_back('"');
          used_scratch = true;
          segment_start = nq + 2;
          ++si;
          while (si < specials_.size() && specials_[si] < nq + 2) ++si;
        } else {
          close = nq;
          ++si;
        }
      }

      // Post-quote run: bytes between the closing quote and the next
      // delimiter/terminator are appended verbatim (legacy dialect).
      const size_t post_start = close + 1;
      size_t post_end = kNpos;
      for (;;) {
        if (si >= specials_.size()) {
          if (!at_eof) return ParseResult::kNeedMore;
          post_end = data_end_;
          record_done = true;
          next_p = data_end_;
          break;
        }
        const size_t s = specials_[si];
        const char c = base_[s];
        if (c == delimiter_) {
          post_end = s;
          next_p = s + 1;
          ++si;
          break;
        }
        if (c == '\n') {
          post_end = s;
          record_done = true;
          next_p = s + 1;
          ++si;
          break;
        }
        if (c == '\r') {
          if (s + 1 >= data_end_ && !at_eof) return ParseResult::kNeedMore;
          if (s + 1 < data_end_ && base_[s + 1] == '\n') {
            post_end = s;
            record_done = true;
            next_p = s + 2;
            while (si < specials_.size() && specials_[si] < s + 2) ++si;
            break;
          }
        }
        ++si;  // lone CR or literal quote: field data
      }

      if (!used_scratch && post_end == post_start) {
        // Pure quoted field with no escapes: zero-copy view of the window.
        fields_.push_back({content_start, close - content_start, false});
      } else {
        scratch_.append(base_ + segment_start, close - segment_start);
        scratch_.append(base_ + post_start, post_end - post_start);
        fields_.push_back(
            {scratch_begin, scratch_.size() - scratch_begin, true});
        used_scratch = true;
      }
    } else {
      // --- Unquoted field: one contiguous window span, never copied ---
      const size_t field_start = p;
      size_t end = kNpos;
      for (;;) {
        if (si >= specials_.size()) {
          if (!at_eof) return ParseResult::kNeedMore;
          end = data_end_;
          record_done = true;
          next_p = data_end_;
          break;
        }
        const size_t s = specials_[si];
        const char c = base_[s];
        if (c == delimiter_) {
          end = s;
          next_p = s + 1;
          ++si;
          break;
        }
        if (c == '\n') {
          end = s;
          record_done = true;
          next_p = s + 1;
          ++si;
          break;
        }
        if (c == '\r') {
          if (s + 1 >= data_end_ && !at_eof) return ParseResult::kNeedMore;
          if (s + 1 < data_end_ && base_[s + 1] == '\n') {
            end = s;
            record_done = true;
            next_p = s + 2;
            while (si < specials_.size() && specials_[si] < s + 2) ++si;
            break;
          }
        }
        ++si;  // lone CR or mid-field quote: literal data
      }
      fields_.push_back({field_start, end - field_start, false});
    }

    if (record_done) {
      pos_ = next_p;
      return ParseResult::kOk;
    }
    p = next_p;
    // A record ending in a delimiter at EOF still has one final empty field.
    if (p >= data_end_) {
      if (!at_eof) return ParseResult::kNeedMore;
      fields_.push_back({p, 0, false});
      pos_ = data_end_;
      return ParseResult::kOk;
    }
  }
}

bool CsvCursor::Next() {
  if (!status_.ok()) return false;
  have_record_ = false;
  for (;;) {
    switch (TryParseRecord(source_exhausted_)) {
      case ParseResult::kOk:
        ++record_index_;
        have_record_ = true;
        return true;
      case ParseResult::kError:
        return false;
      case ParseResult::kEndOfInput:
        return false;
      case ParseResult::kNeedMore:
        if (!FillMore() && !status_.ok()) return false;
        break;  // retry, possibly with source_exhausted_ now set
    }
  }
}

}  // namespace pprl::io
