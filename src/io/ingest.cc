#include "io/ingest.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/base64.h"
#include "common/record.h"
#include "common/strings.h"
#include "io/pclk.h"
#include "obs/metrics.h"

namespace pprl::io {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Reports one finished ingest into the pprl_ingest_* family. The
/// instrument lookups are cached per format, so per-call cost is three
/// relaxed atomics.
void ReportIngest(const char* format, const IngestStats& stats) {
  auto& registry = obs::GlobalMetrics();
  const obs::Labels labels = {{"format", format}};
  registry
      .GetCounter("pprl_ingest_bytes_total",
                  "Input bytes consumed by shard ingest", labels)
      .Increment(stats.input_bytes);
  registry
      .GetCounter("pprl_ingest_records_total",
                  "Records materialized by shard ingest", labels)
      .Increment(stats.records);
  registry
      .GetHistogram("pprl_ingest_seconds", "Wall time of one ingest call",
                    obs::DefaultLatencyBuckets(), labels)
      .Observe(stats.seconds);
}

uint64_t ParseU64(std::string_view text) {
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

uint64_t FileSizeBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<uint64_t>(size) : 0;
}

bool HasPclkExtension(const std::string& path) {
  constexpr std::string_view kExt = ".pclk";
  return path.size() >= kExt.size() &&
         std::string_view(path).substr(path.size() - kExt.size()) == kExt;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

/// The parsed header row of a QID CSV: where the bookkeeping columns are
/// and which columns are QID fields (datagen/io rules).
struct QidHeader {
  int id_col = -1;
  int entity_col = -1;
  Schema schema;
  std::vector<size_t> qid_cols;
  size_t width = 0;
};

Status ParseQidHeader(CsvCursor& cursor, QidHeader& out) {
  if (!cursor.Next()) {
    if (!cursor.status().ok()) return cursor.status();
    return Status::InvalidArgument("CSV input has no header row");
  }
  out.width = cursor.field_count();
  for (size_t c = 0; c < out.width; ++c) {
    const std::string name(cursor.field(c));
    if (name == "id" && out.id_col < 0) {
      out.id_col = static_cast<int>(c);
    } else if (name == "entity_id" && out.entity_col < 0) {
      out.entity_col = static_cast<int>(c);
    } else {
      out.schema.fields.push_back({name, GuessFieldTypeFromName(name)});
      out.qid_cols.push_back(c);
    }
  }
  if (out.schema.fields.empty()) {
    return Status::InvalidArgument("CSV has no QID columns");
  }
  return Status::OK();
}

}  // namespace

const char* ShardFileFormatName(ShardFileFormat format) {
  switch (format) {
    case ShardFileFormat::kAuto:
      return "auto";
    case ShardFileFormat::kCsv:
      return "csv";
    case ShardFileFormat::kPclk:
      return "pclk";
  }
  return "auto";
}

ShardBuilder::ShardBuilder(size_t filter_bits)
    : filter_bits_(filter_bits), bits_(0, filter_bits) {}

Status ShardBuilder::Append(uint64_t id, const BitVector& filter) {
  if (filter.size() != filter_bits_) {
    return Status::InvalidArgument(
        "filter has " + std::to_string(filter.size()) + " bits, shard takes " +
        std::to_string(filter_bits_));
  }
  bits_.AppendRow(filter);
  ids_.push_back(id);
  return Status::OK();
}

Status ShardBuilder::AppendBytes(uint64_t id, const uint8_t* bytes, size_t len) {
  const size_t carry = (filter_bits_ + 7) / 8;
  if (len < carry) {
    return Status::InvalidArgument("byte buffer shorter than declared bit length");
  }
  const size_t r = bits_.AppendRow();
  uint64_t* row = bits_.mutable_row(r);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(row, bytes, carry);
  } else {
    for (size_t i = 0; i < carry; ++i) {
      row[i / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (i % 8));
    }
  }
  // Stray bits past filter_bits in the final byte are not addressable
  // (mirrors BitVectorFromBytes, which simply never reads them).
  const size_t tail = filter_bits_ % 64;
  if (tail != 0 && bits_.words_per_row() > 0) {
    row[bits_.words_per_row() - 1] &= (1ull << tail) - 1;
  }
  bits_.RecountRow(r);
  ids_.push_back(id);
  return Status::OK();
}

EncodedShard ShardBuilder::Finish() {
  EncodedShard shard;
  shard.bits = std::move(bits_);
  shard.ids = std::move(ids_);
  ids_ = {};
  bits_ = BitMatrix(0, filter_bits_);
  return shard;
}

Result<EncodedShard> EncodeCsvToShard(const std::string& path,
                                      const ClkEncoder& encoder,
                                      CsvCursorOptions options,
                                      IngestStats* stats) {
  const Clock::time_point start = Clock::now();
  auto cursor = CsvCursor::OpenFile(path, options);
  if (!cursor.ok()) return cursor.status();

  QidHeader header;
  PPRL_RETURN_IF_ERROR(ParseQidHeader(*cursor, header));

  // One Record reused for every row: the values vector keeps its string
  // capacity, so steady state does no per-row allocation.
  ShardBuilder builder(encoder.params().num_bits);
  Record record;
  record.values.resize(header.qid_cols.size());
  uint64_t row = 0;
  while (cursor->Next()) {
    if (cursor->field_count() != header.width) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(row + 1) + " has " +
          std::to_string(cursor->field_count()) + " fields, expected " +
          std::to_string(header.width));
    }
    record.id = row;
    if (header.id_col >= 0) {
      const std::string_view id_text =
          cursor->field(static_cast<size_t>(header.id_col));
      if (IsInteger(id_text)) record.id = ParseU64(id_text);
    }
    for (size_t k = 0; k < header.qid_cols.size(); ++k) {
      const std::string_view v = cursor->field(header.qid_cols[k]);
      record.values[k].assign(v.data(), v.size());
    }
    auto filter = encoder.Encode(header.schema, record);
    if (!filter.ok()) return filter.status();
    PPRL_RETURN_IF_ERROR(builder.Append(record.id, filter.value()));
    ++row;
  }
  if (!cursor->status().ok()) return cursor->status();

  IngestStats local;
  local.input_bytes = cursor->bytes_consumed();
  local.records = row;
  local.seconds = SecondsSince(start);
  ReportIngest("csv", local);
  if (stats != nullptr) *stats = local;
  return builder.Finish();
}

Result<Schema> ReadCsvSchema(const std::string& path, CsvCursorOptions options) {
  auto cursor = CsvCursor::OpenFile(path, options);
  if (!cursor.ok()) return cursor.status();
  QidHeader header;
  PPRL_RETURN_IF_ERROR(ParseQidHeader(*cursor, header));
  return header.schema;
}

Result<Database> ReadDatabaseCsvStream(const std::string& path,
                                       CsvCursorOptions options,
                                       IngestStats* stats) {
  const Clock::time_point start = Clock::now();
  auto cursor = CsvCursor::OpenFile(path, options);
  if (!cursor.ok()) return cursor.status();

  QidHeader header;
  PPRL_RETURN_IF_ERROR(ParseQidHeader(*cursor, header));
  Database db;
  db.schema = header.schema;

  uint64_t row = 0;
  while (cursor->Next()) {
    if (cursor->field_count() != header.width) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(row + 1) + " has " +
          std::to_string(cursor->field_count()) + " fields, expected " +
          std::to_string(header.width));
    }
    Record record;
    record.id = row;
    if (header.id_col >= 0) {
      const std::string_view id_text =
          cursor->field(static_cast<size_t>(header.id_col));
      if (IsInteger(id_text)) record.id = ParseU64(id_text);
    }
    if (header.entity_col >= 0) {
      const std::string_view entity_text =
          cursor->field(static_cast<size_t>(header.entity_col));
      if (IsInteger(entity_text)) record.entity_id = ParseU64(entity_text);
    }
    record.values.reserve(header.qid_cols.size());
    for (size_t qid_col : header.qid_cols) {
      const std::string_view v = cursor->field(qid_col);
      record.values.emplace_back(v.data(), v.size());
    }
    db.records.push_back(std::move(record));
    ++row;
  }
  if (!cursor->status().ok()) return cursor->status();

  IngestStats local;
  local.input_bytes = cursor->bytes_consumed();
  local.records = row;
  local.seconds = SecondsSince(start);
  ReportIngest("csv", local);
  if (stats != nullptr) *stats = local;
  return db;
}

Result<EncodedShard> ReadCsvShard(const std::string& path,
                                  CsvCursorOptions options, IngestStats* stats) {
  const Clock::time_point start = Clock::now();
  auto cursor = CsvCursor::OpenFile(path, options);
  if (!cursor.ok()) return cursor.status();

  if (!cursor->Next()) {
    if (!cursor->status().ok()) return cursor->status();
    return Status::InvalidArgument("CSV input has no header row");
  }
  int id_col = -1;
  int bits_col = -1;
  int clk_col = -1;
  const size_t header_width = cursor->field_count();
  for (size_t c = 0; c < header_width; ++c) {
    const std::string_view name = cursor->field(c);
    if (name == "id") id_col = static_cast<int>(c);
    if (name == "bits") bits_col = static_cast<int>(c);
    if (name == "clk") clk_col = static_cast<int>(c);
  }
  if (id_col < 0 || bits_col < 0 || clk_col < 0) {
    return Status::InvalidArgument("encoded file needs id, bits, clk columns");
  }

  ShardBuilder builder(0);
  bool saw_row = false;
  std::string clk_text;  // reused base64 buffer
  uint64_t row = 0;
  while (cursor->Next()) {
    if (cursor->field_count() != header_width) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(row + 1) + " has " +
          std::to_string(cursor->field_count()) + " fields, expected " +
          std::to_string(header_width));
    }
    const std::string_view id_text = cursor->field(static_cast<size_t>(id_col));
    const std::string_view bits_text = cursor->field(static_cast<size_t>(bits_col));
    if (!IsInteger(id_text) || !IsInteger(bits_text)) {
      return Status::InvalidArgument("bad id/bits in row " + std::to_string(row));
    }
    const uint64_t bits = ParseU64(bits_text);
    if (!saw_row) {
      builder = ShardBuilder(bits);
      saw_row = true;
    } else if (bits != builder.filter_bits()) {
      return Status::InvalidArgument("inconsistent filter lengths in encoded file");
    }
    const std::string_view clk_view = cursor->field(static_cast<size_t>(clk_col));
    clk_text.assign(clk_view.data(), clk_view.size());
    auto bytes = Base64Decode(clk_text);
    if (!bytes.ok()) return bytes.status();
    PPRL_RETURN_IF_ERROR(
        builder.AppendBytes(ParseU64(id_text), bytes->data(), bytes->size()));
    ++row;
  }
  if (!cursor->status().ok()) return cursor->status();

  IngestStats local;
  local.input_bytes = cursor->bytes_consumed();
  local.records = row;
  local.seconds = SecondsSince(start);
  ReportIngest("csv", local);
  if (stats != nullptr) *stats = local;
  return builder.Finish();
}

ShardFileFormat DetectShardFileFormat(const std::string& path) {
  if (FileExists(path)) {
    return LooksLikePclkFile(path) ? ShardFileFormat::kPclk : ShardFileFormat::kCsv;
  }
  return HasPclkExtension(path) ? ShardFileFormat::kPclk : ShardFileFormat::kCsv;
}

Result<EncodedShard> ReadShardAuto(const std::string& path,
                                   ShardFileFormat format, IngestStats* stats) {
  if (format == ShardFileFormat::kAuto) format = DetectShardFileFormat(path);
  if (format == ShardFileFormat::kCsv) return ReadCsvShard(path, {}, stats);

  const Clock::time_point start = Clock::now();
  auto shard = ReadPclkFile(path);
  if (!shard.ok()) return shard.status();
  IngestStats local;
  local.input_bytes = FileSizeBytes(path);
  local.records = shard->size();
  local.seconds = SecondsSince(start);
  ReportIngest("pclk", local);
  if (stats != nullptr) *stats = local;
  return shard;
}

Status WriteShardFile(const std::string& path, const EncodedShard& shard,
                      ShardFileFormat format) {
  if (format == ShardFileFormat::kAuto) {
    format = HasPclkExtension(path) ? ShardFileFormat::kPclk : ShardFileFormat::kCsv;
  }
  if (format == ShardFileFormat::kPclk) return WritePclkFile(path, shard);
  return WriteEncodedDatabase(path, EncodedDatabaseFromShard(shard));
}

}  // namespace pprl::io
