#ifndef PPRL_IO_WAL_H_
#define PPRL_IO_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "encoding/clk_io.h"

namespace pprl::io {

/// PWAL — the online serving path's write-ahead log (docs/PROTOCOLS.md
/// Appendix B).
///
/// Every record the online daemon absorbs — a bulk shipment tail or a
/// protocol-v4 append batch — is journaled here BEFORE it is applied to the
/// in-memory engine and acknowledged to the owner, so a crash never loses
/// an acked record: restart = load the latest checkpoint, replay the WAL
/// suffix, and the daemon answers queries exactly as the uninterrupted
/// process would have.
///
/// Segment layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic 0x4C415750 ("PWAL")
///   4       4     version (currently 1)
///   8       8     start_sequence — sequence of the segment's first record
///   16      4     filter_bits — bit length of every journaled filter
///   20      4     reserved, must be 0
///   24      8     header checksum — FNV-1a-64 over bytes [0, 24)
///
/// followed by records, each:
///
///   0       4     payload_len
///   4       4     type (WalRecordType)
///   8       8     sequence — contiguous, ascending from start_sequence
///   16      8     payload checksum — FNV-1a-64 over the payload
///   24      8     record-header checksum — FNV-1a-64 over bytes [0, 24)
///   32      n     payload
///
/// The checksums are the same FNV-1a-64 the PCLK sections and protocol-v2
/// shipment chunks use, so at-rest corruption is caught the same way
/// everywhere. The record-header checksum exists so a bit-flipped
/// payload_len is reported as corruption instead of being mistaken for a
/// torn tail.
///
/// ## Torn tails vs corruption
///
/// A crash can tear the final record at any byte. The reader's taxonomy:
///  - fewer bytes remain than a full record header, or the header is intact
///    but the payload is short: a CLEAN TORN TAIL. The torn record was
///    never acknowledged (the ack follows the write), so the reader stops
///    and reports the dropped byte count — this is the normal post-crash
///    state, not an error.
///  - a complete record whose header or payload checksum mismatches, a
///    wrong magic, or an out-of-order sequence: CORRUPTION. The reader
///    fails with a typed error naming the file and byte offset and the
///    daemon refuses to start (never a silent partial load).
///
/// ## Durability contract
///
/// Append() hands the full record to the OS (one write() call) before
/// returning; the page cache survives a killed process, so a SIGKILL after
/// a successful Append() never loses the record. fsync cadence — the
/// `sync_every_ms` group-commit window — only bounds data loss on MACHINE
/// crashes (power loss): at most the last window of acked records.
inline constexpr uint32_t kWalMagic = 0x4C415750u;
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 32;
inline constexpr size_t kWalRecordHeaderBytes = 32;
/// Sanity cap on one record's payload (a batch is split far below this).
inline constexpr uint32_t kWalMaxPayloadBytes = 1u << 30;

enum class WalRecordType : uint32_t {
  /// Registers a database by owner name. Registration order assigns the
  /// database indices the canonical cluster ids depend on, so it must be
  /// journaled exactly like the appends that reference it.
  kHello = 1,
  /// A batch of records appended to one database.
  kAppendBatch = 2,
};

/// One decoded WAL record.
struct WalRecord {
  uint32_t type = 0;
  uint64_t sequence = 0;
  uint64_t offset = 0;  ///< byte offset of the record header in the segment
  std::vector<uint8_t> payload;
};

/// A fully decoded and verified WAL segment.
struct WalSegment {
  uint32_t filter_bits = 0;
  uint64_t start_sequence = 0;
  std::vector<WalRecord> records;
  /// A clean torn tail: where it starts and how many bytes were dropped
  /// (0 when the segment ends exactly on a record boundary).
  uint64_t torn_offset = 0;
  uint64_t torn_bytes = 0;
};

/// Append-only writer over one segment file. Not thread-safe — the
/// durability layer serializes all journal operations.
class WalWriter {
 public:
  struct Options {
    /// Group-commit window: fsync at most once per this many milliseconds
    /// (<= 0 syncs after every append). See the durability contract above.
    int sync_every_ms = 50;
  };

  /// Creates (truncates) the segment and writes its header. The directory
  /// entry is fsynced so the segment survives a machine crash too.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   uint32_t filter_bits,
                                                   uint64_t start_sequence,
                                                   Options options);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Journals one record; returns its sequence. The record has reached the
  /// OS when this returns OK (see the durability contract).
  Result<uint64_t> Append(WalRecordType type, const uint8_t* payload,
                          size_t len);

  /// Forces an fsync now (used on graceful shutdown).
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t next_sequence() const { return next_sequence_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t syncs() const { return syncs_; }

 private:
  WalWriter(int fd, std::string path, uint64_t start_sequence,
            Options options);

  int fd_ = -1;
  std::string path_;
  uint64_t next_sequence_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t syncs_ = 0;
  Options options_;
  /// Monotonic-clock time of the last fsync, for the group-commit window.
  int64_t last_sync_ns_ = 0;
};

/// Reads and verifies one segment (see the torn-tail taxonomy above).
Result<WalSegment> ReadWalFile(const std::string& path);

/// WAL segments in `dir` as (start_sequence, path), ascending. A missing
/// directory is an empty list, not an error.
Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir);

/// Canonical segment filename: "<dir>/wal-<start_sequence>.pwal".
std::string WalSegmentPath(const std::string& dir, uint64_t start_sequence);

/// ---- Record payload codecs ----

/// kHello payload: u32 name length + owner name bytes.
std::vector<uint8_t> EncodeWalHello(const std::string& party);
Result<std::string> DecodeWalHello(const std::vector<uint8_t>& payload);

/// kAppendBatch payload: u32 database, u32 count, u32 filter_bits,
/// u32 reserved, then count x (u64 id + ceil(filter_bits/8) filter bytes).
struct WalAppendBatch {
  uint32_t database = 0;
  EncodedDatabase rows;
};
std::vector<uint8_t> EncodeWalAppendBatch(uint32_t database,
                                          const EncodedDatabase& rows,
                                          size_t begin, size_t end);
Result<WalAppendBatch> DecodeWalAppendBatch(const std::vector<uint8_t>& payload);

}  // namespace pprl::io

#endif  // PPRL_IO_WAL_H_
