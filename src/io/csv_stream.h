#ifndef PPRL_IO_CSV_STREAM_H_
#define PPRL_IO_CSV_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pprl::io {

/// How the cursor finds the structural bytes (delimiter, quote, CR, LF)
/// of a buffered window. kAuto picks the widest vector unit the CPU
/// reports at runtime (the same __builtin_cpu_supports dispatch the
/// comparison kernels use); kScalar forces the byte loop, which the
/// conformance tests run against the SIMD path to prove identical parses.
enum class CsvScanMode {
  kAuto,
  kScalar,
};

struct CsvCursorOptions {
  char delimiter = ',';
  CsvScanMode scan = CsvScanMode::kAuto;
  /// Read-buffer size for file-backed cursors. Grows automatically when a
  /// single record is larger than the window. Clamped to >= 4 KiB.
  size_t buffer_bytes = 1u << 20;
};

/// A pull-based streaming CSV reader.
///
/// This is the front half of the I/O subsystem: where `ParseCsv`
/// materializes the whole file as a `CsvTable` of per-row string vectors
/// (two copies of every byte before the first record is usable), a
/// `CsvCursor` holds one buffered window of the input and yields each
/// record as `std::string_view` fields pointing straight into that window.
/// Unquoted fields — the overwhelming majority in QID and CLK interchange
/// files — are never copied at all; quoted fields are only copied when
/// they actually contain an escaped quote or trailing unquoted characters.
///
/// Grammar (RFC 4180 plus the de-facto extensions the legacy parser
/// accepts, byte-for-byte the same dialect — see csv_stream_test):
///   * fields separated by `delimiter`, records by LF or CRLF,
///   * a final record without trailing newline is still a record,
///   * a field whose first byte is '"' is quoted: delimiters and newlines
///     inside are data, "" is a literal quote, and any bytes between the
///     closing quote and the next delimiter are appended verbatim,
///   * a '"' later in an unquoted field is a literal character,
///   * a CR not followed by LF is field data, not a record terminator.
///
/// Usage:
///   auto cursor = CsvCursor::OpenFile(path);
///   while (cursor->Next()) {
///     for (size_t i = 0; i < cursor->field_count(); ++i) use(cursor->field(i));
///   }
///   if (!cursor->status().ok()) ...   // distinguishes EOF from errors
///
/// Field views are valid until the next call to Next().
class CsvCursor {
 public:
  /// Opens `path` for chunked streaming.
  static Result<CsvCursor> OpenFile(const std::string& path,
                                    CsvCursorOptions options = {});

  /// Parses an in-memory buffer in place (no copy). `text` must outlive
  /// the cursor.
  static CsvCursor FromMemory(std::string_view text, CsvCursorOptions options = {});

  CsvCursor(CsvCursor&& other) noexcept;
  CsvCursor& operator=(CsvCursor&& other) noexcept;
  CsvCursor(const CsvCursor&) = delete;
  CsvCursor& operator=(const CsvCursor&) = delete;
  ~CsvCursor();

  /// Advances to the next record. Returns false at end of input or on
  /// error; check status() to tell the two apart.
  bool Next();

  /// OK while records keep coming and at clean EOF; an error after a
  /// malformed input (unterminated quote) or a failed read.
  const Status& status() const { return status_; }

  /// Fields of the current record (valid after a true Next()).
  size_t field_count() const { return fields_.size(); }
  std::string_view field(size_t i) const;

  /// Zero-based index of the current record (wraps from the all-ones
  /// "before first record" sentinel on the first successful Next()).
  uint64_t record_index() const { return record_index_; }

  /// Total input bytes the cursor has consumed so far (for throughput
  /// accounting).
  uint64_t bytes_consumed() const { return consumed_base_ + pos_; }

  /// True when the vectorized scanner is active for this cursor.
  bool simd_active() const { return simd_; }

 private:
  /// One parsed field: a span of either the input window or the scratch
  /// buffer (quoted fields that needed unescaping).
  struct FieldRef {
    uint64_t offset = 0;
    uint64_t length = 0;
    bool in_scratch = false;
  };

  enum class ParseResult { kOk, kNeedMore, kEndOfInput, kError };

  CsvCursor() = default;

  /// Attempts to parse one record starting at pos_. With `at_eof`, a
  /// record may be terminated by the end of the window.
  ParseResult TryParseRecord(bool at_eof);

  /// Compacts the window to the current record start and reads more input.
  /// Returns false at EOF or on read error (status_ set on error).
  bool FillMore();

  /// Rebuilds the structural-byte index for [0, data_end_).
  void Reindex();

  /// First index entry at or after `p`.
  size_t SpecialLowerBound(size_t p) const;

  const char* base_ = nullptr;     ///< window start (storage_ or external)
  size_t data_end_ = 0;            ///< bytes valid in the window
  size_t pos_ = 0;                 ///< start of the current (unparsed) record
  uint64_t consumed_base_ = 0;     ///< bytes discarded by compaction
  std::vector<char> storage_;      ///< owned buffer (file mode only)
  std::FILE* file_ = nullptr;      ///< input stream (file mode only)
  bool source_exhausted_ = false;  ///< no more bytes beyond data_end_

  std::vector<uint32_t> specials_;  ///< positions of structural bytes
  std::vector<FieldRef> fields_;
  std::string scratch_;
  Status status_;
  uint64_t record_index_ = static_cast<uint64_t>(-1);
  bool have_record_ = false;
  char delimiter_ = ',';
  bool simd_ = false;
};

}  // namespace pprl::io

#endif  // PPRL_IO_CSV_STREAM_H_
