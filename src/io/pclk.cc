#include "io/pclk.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>

namespace pprl::io {

namespace {

/// Geometry sanity caps: far above any real shard (a 2^32-row shard of
/// 64-Mbit filters would be a 32-PB file) but low enough that a fuzzed
/// header can never overflow the offset arithmetic below.
constexpr uint64_t kMaxRows = 1ull << 32;
constexpr uint32_t kMaxFilterBits = 1u << 26;
constexpr uint32_t kMaxStrideBytes = 1u << 24;

constexpr size_t kHeaderChecksumOffset = 56;

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

/// Serialises `count` u64 values little-endian into `out`. On a
/// little-endian host this is a memcpy; the explicit loop only exists for
/// portability.
void PutU64Span(uint8_t* out, const uint64_t* values, size_t count) {
  if (count == 0) return;  // empty vector data() may be null; memcpy forbids it
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, values, count * 8);
  } else {
    for (size_t i = 0; i < count; ++i) PutU64(out + i * 8, values[i]);
  }
}

void GetU64Span(uint64_t* out, const uint8_t* bytes, size_t count) {
  if (count == 0) return;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, bytes, count * 8);
  } else {
    for (size_t i = 0; i < count; ++i) out[i] = GetU64(bytes + i * 8);
  }
}

size_t CarryingBytes(uint32_t bits) { return (static_cast<size_t>(bits) + 7) / 8; }

/// Validates the loaded matrix against the format contract: no stray bits
/// past filter_bits, and the popcount column (when present) agreeing with
/// the rows. Fills the matrix's count cache as a side effect.
Status ValidateRows(BitMatrix& bits, const PclkInfo& info, const uint8_t* popcounts) {
  const size_t tail_bits = info.filter_bits % 64;
  const uint64_t tail_mask =
      tail_bits == 0 ? ~0ull : (1ull << tail_bits) - 1;
  for (size_t r = 0; r < bits.num_rows(); ++r) {
    const uint64_t* row = bits.row(r);
    if (bits.words_per_row() > 0 &&
        (row[bits.words_per_row() - 1] & ~tail_mask) != 0) {
      return Status::ProtocolViolation("PCLK row " + std::to_string(r) +
                                       " has bits set past filter_bits");
    }
  }
  bits.RecomputeCounts();
  if (popcounts != nullptr) {
    for (size_t r = 0; r < bits.num_rows(); ++r) {
      if (GetU32(popcounts + r * 4) != bits.row_count(r)) {
        return Status::IoError("PCLK popcount column disagrees with row " +
                               std::to_string(r) + " (corrupted shard)");
      }
    }
  }
  return Status::OK();
}

/// Copies one file row (carrying bytes only) into a matrix row and checks
/// the file's padding bytes past the carrying span are zero.
Status LoadRow(BitMatrix& bits, size_t r, const uint8_t* row_bytes,
               uint32_t file_stride) {
  const size_t carry = bits.words_per_row() * 8;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(bits.mutable_row(r), row_bytes, carry);
  } else {
    GetU64Span(bits.mutable_row(r), row_bytes, bits.words_per_row());
  }
  for (size_t b = carry; b < file_stride; ++b) {
    if (row_bytes[b] != 0) {
      return Status::ProtocolViolation("PCLK row " + std::to_string(r) +
                                       " has nonzero stride padding");
    }
  }
  return Status::OK();
}

bool ReadExact(std::FILE* f, void* out, size_t n) {
  return n == 0 || std::fread(out, 1, n, f) == n;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

uint64_t Fnv1a64(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }
  return hash;
}

uint64_t PclkInfo::rows_offset() const {
  const uint64_t after_pop =
      popcounts_offset() + (has_popcounts() ? row_count * 4 : 0);
  return (after_pop + 63) / 64 * 64;
}

Result<PclkInfo> DecodePclkHeader(const uint8_t* data, size_t size) {
  if (size < kPclkHeaderBytes) {
    return Status::OutOfRange("PCLK header truncated: " + std::to_string(size) +
                              " of " + std::to_string(kPclkHeaderBytes) + " bytes");
  }
  if (GetU32(data) != kPclkMagic) {
    return Status::InvalidArgument("not a PCLK shard (bad magic)");
  }
  PclkInfo info;
  info.version = GetU32(data + 4);
  if (info.version != kPclkVersion) {
    return Status::InvalidArgument("unsupported PCLK version " +
                                   std::to_string(info.version));
  }
  info.flags = GetU32(data + 8);
  info.filter_bits = GetU32(data + 12);
  info.row_count = GetU64(data + 16);
  info.row_stride_bytes = GetU32(data + 24);
  if (GetU32(data + 28) != 0) {
    return Status::ProtocolViolation("PCLK reserved header field is nonzero");
  }
  if ((info.flags & ~kPclkFlagPopcounts) != 0) {
    return Status::ProtocolViolation("PCLK header has unknown flag bits");
  }
  if (GetU64(data + kHeaderChecksumOffset) !=
      Fnv1a64(data, kHeaderChecksumOffset)) {
    return Status::IoError("PCLK header checksum mismatch");
  }
  if (info.row_count > kMaxRows || info.filter_bits > kMaxFilterBits ||
      info.row_stride_bytes > kMaxStrideBytes) {
    return Status::InvalidArgument("PCLK header declares implausible geometry");
  }
  if (info.row_count > 0) {
    if (info.filter_bits == 0) {
      return Status::InvalidArgument("PCLK shard with rows but zero filter bits");
    }
    if (info.row_stride_bytes % 64 != 0 ||
        info.row_stride_bytes < CarryingBytes(info.filter_bits)) {
      return Status::InvalidArgument(
          "PCLK row stride must be a 64-byte multiple covering filter_bits");
    }
  }
  return info;
}

std::vector<uint8_t> EncodePclk(const EncodedShard& shard, bool include_popcounts) {
  const BitMatrix& bits = shard.bits;
  const uint64_t n = bits.num_rows();
  PclkInfo info;
  info.version = kPclkVersion;
  info.flags = include_popcounts ? kPclkFlagPopcounts : 0;
  info.filter_bits = static_cast<uint32_t>(bits.num_bits());
  info.row_count = n;
  info.row_stride_bytes = static_cast<uint32_t>(bits.stride_words() * 8);
  std::vector<uint8_t> out(info.total_bytes(), 0);

  // Sections first, so their checksums exist before the header is sealed.
  PutU64Span(out.data() + info.ids_offset(), shard.ids.data(), n);
  if (include_popcounts) {
    uint8_t* pop = out.data() + info.popcounts_offset();
    for (uint64_t r = 0; r < n; ++r) {
      PutU32(pop + r * 4, static_cast<uint32_t>(bits.row_count(r)));
    }
  }
  uint8_t* rows = out.data() + info.rows_offset();
  if (n > 0) {
    // Matrix rows are contiguous at exactly the file stride.
    PutU64Span(rows, bits.row(0), n * bits.stride_words());
  }

  uint8_t* h = out.data();
  PutU32(h, kPclkMagic);
  PutU32(h + 4, info.version);
  PutU32(h + 8, info.flags);
  PutU32(h + 12, info.filter_bits);
  PutU64(h + 16, info.row_count);
  PutU32(h + 24, info.row_stride_bytes);
  PutU32(h + 28, 0);
  PutU64(h + 32, Fnv1a64(out.data() + info.ids_offset(), n * 8));
  PutU64(h + 40, include_popcounts
                     ? Fnv1a64(out.data() + info.popcounts_offset(), n * 4)
                     : 0);
  PutU64(h + 48, Fnv1a64(rows, n * info.row_stride_bytes));
  PutU64(h + kHeaderChecksumOffset, Fnv1a64(h, kHeaderChecksumOffset));
  return out;
}

Result<EncodedShard> DecodePclk(const uint8_t* data, size_t size) {
  auto header = DecodePclkHeader(data, size);
  if (!header.ok()) return header.status();
  const PclkInfo& info = *header;
  const uint64_t n = info.row_count;
  if (size < info.total_bytes()) {
    return Status::OutOfRange("PCLK shard truncated: " + std::to_string(size) +
                              " of " + std::to_string(info.total_bytes()) +
                              " bytes");
  }
  if (size > info.total_bytes()) {
    return Status::ProtocolViolation("PCLK shard has trailing bytes");
  }

  const uint8_t* ids = data + info.ids_offset();
  if (GetU64(data + 32) != Fnv1a64(ids, n * 8)) {
    return Status::IoError("PCLK ids section checksum mismatch");
  }
  const uint8_t* pop = nullptr;
  if (info.has_popcounts()) {
    pop = data + info.popcounts_offset();
    if (GetU64(data + 40) != Fnv1a64(pop, n * 4)) {
      return Status::IoError("PCLK popcount section checksum mismatch");
    }
  }
  const uint64_t pad_begin =
      info.popcounts_offset() + (info.has_popcounts() ? n * 4 : 0);
  for (uint64_t b = pad_begin; b < info.rows_offset(); ++b) {
    if (data[b] != 0) {
      return Status::ProtocolViolation("PCLK section padding is nonzero");
    }
  }
  const uint8_t* rows = data + info.rows_offset();
  if (GetU64(data + 48) != Fnv1a64(rows, n * info.row_stride_bytes)) {
    return Status::IoError("PCLK rows section checksum mismatch");
  }

  EncodedShard shard;
  shard.ids.resize(n);
  GetU64Span(shard.ids.data(), ids, n);
  shard.bits = BitMatrix(n, info.filter_bits);
  for (uint64_t r = 0; r < n; ++r) {
    PPRL_RETURN_IF_ERROR(
        LoadRow(shard.bits, r, rows + r * info.row_stride_bytes,
                info.row_stride_bytes));
  }
  PPRL_RETURN_IF_ERROR(ValidateRows(shard.bits, info, pop));
  return shard;
}

Status WritePclkFile(const std::string& path, const EncodedShard& shard,
                     bool include_popcounts) {
  const std::vector<uint8_t> bytes = EncodePclk(shard, include_popcounts);
  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path + " for writing");
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return Status::IoError("write to " + path + " failed");
  }
  if (std::fflush(f.get()) != 0) {
    return Status::IoError("write to " + path + " failed");
  }
  return Status::OK();
}

namespace {

Result<PclkInfo> ReadHeaderFrom(std::FILE* f, const std::string& path) {
  uint8_t header[kPclkHeaderBytes];
  const size_t got = std::fread(header, 1, sizeof(header), f);
  auto info = DecodePclkHeader(header, got);
  if (!info.ok() && got < sizeof(header)) {
    return Status::OutOfRange(path + ": PCLK header truncated");
  }
  return info;
}

}  // namespace

Result<PclkInfo> ReadPclkInfo(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  return ReadHeaderFrom(f.get(), path);
}

Result<EncodedShard> ReadPclkFile(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  auto header = ReadHeaderFrom(f.get(), path);
  if (!header.ok()) return header.status();
  const PclkInfo& info = *header;
  const uint64_t n = info.row_count;

  // ids + optional popcounts + padding arrive as one contiguous span.
  const uint64_t mid_bytes = info.rows_offset() - info.ids_offset();
  std::vector<uint8_t> mid(mid_bytes);
  if (!ReadExact(f.get(), mid.data(), mid.size())) {
    return Status::OutOfRange(path + ": PCLK sections truncated");
  }
  const uint8_t* ids = mid.data();
  const uint8_t* pop = info.has_popcounts() ? mid.data() + n * 8 : nullptr;

  EncodedShard shard;
  shard.ids.resize(n);
  GetU64Span(shard.ids.data(), ids, n);
  shard.bits = BitMatrix(n, info.filter_bits);

  const uint64_t expect_ids = Fnv1a64(ids, n * 8);
  const uint64_t expect_pop = pop != nullptr ? Fnv1a64(pop, n * 4) : 0;
  const uint64_t pad_begin = n * 8 + (pop != nullptr ? n * 4 : 0);
  for (uint64_t b = pad_begin; b < mid_bytes; ++b) {
    if (mid[b] != 0) {
      return Status::ProtocolViolation(path + ": PCLK section padding is nonzero");
    }
  }

  uint64_t rows_checksum = 0xcbf29ce484222325ULL;
  if (n > 0 &&
      info.row_stride_bytes == shard.bits.stride_words() * 8 &&
      std::endian::native == std::endian::little) {
    // The file stride matches the in-memory stride: stream the whole rows
    // section straight into the matrix — the zero-re-packing fast path.
    uint8_t* dst = reinterpret_cast<uint8_t*>(shard.bits.mutable_row(0));
    if (!ReadExact(f.get(), dst, n * info.row_stride_bytes)) {
      return Status::OutOfRange(path + ": PCLK rows truncated");
    }
    rows_checksum = Fnv1a64(dst, n * info.row_stride_bytes);
  } else {
    std::vector<uint8_t> row(info.row_stride_bytes);
    for (uint64_t r = 0; r < n; ++r) {
      if (!ReadExact(f.get(), row.data(), row.size())) {
        return Status::OutOfRange(path + ": PCLK rows truncated");
      }
      for (uint8_t b : row) {
        rows_checksum = (rows_checksum ^ b) * 0x100000001b3ULL;
      }
      PPRL_RETURN_IF_ERROR(LoadRow(shard.bits, r, row.data(), info.row_stride_bytes));
    }
  }
  uint8_t trailing = 0;
  if (std::fread(&trailing, 1, 1, f.get()) != 0) {
    return Status::ProtocolViolation(path + ": PCLK shard has trailing bytes");
  }

  // Verify sections after the single pass over the file.
  uint8_t header_raw[kPclkHeaderBytes];
  std::rewind(f.get());
  if (!ReadExact(f.get(), header_raw, sizeof(header_raw))) {
    return Status::IoError(path + ": reread of PCLK header failed");
  }
  if (GetU64(header_raw + 32) != expect_ids) {
    return Status::IoError(path + ": PCLK ids section checksum mismatch");
  }
  if (pop != nullptr && GetU64(header_raw + 40) != expect_pop) {
    return Status::IoError(path + ": PCLK popcount section checksum mismatch");
  }
  if (n > 0 && GetU64(header_raw + 48) != rows_checksum) {
    return Status::IoError(path + ": PCLK rows section checksum mismatch");
  }

  // The fast path copied stride padding into the matrix; it must be zero
  // and ValidateRows only checks the carrying words, so check here.
  if (info.row_stride_bytes == shard.bits.stride_words() * 8) {
    for (uint64_t r = 0; r < n; ++r) {
      const uint64_t* row_words = shard.bits.row(r);
      for (size_t w = shard.bits.words_per_row(); w < shard.bits.stride_words();
           ++w) {
        if (row_words[w] != 0) {
          return Status::ProtocolViolation(
              path + ": PCLK row " + std::to_string(r) +
              " has nonzero stride padding");
        }
      }
    }
  }
  PPRL_RETURN_IF_ERROR(ValidateRows(shard.bits, info, pop));
  return shard;
}

Result<EncodedShard> ReadPclkSlice(const std::string& path, uint64_t row_begin,
                                   uint64_t row_count) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  auto header = ReadHeaderFrom(f.get(), path);
  if (!header.ok()) return header.status();
  const PclkInfo& info = *header;
  if (row_begin > info.row_count || row_count > info.row_count - row_begin) {
    return Status::OutOfRange("PCLK slice [" + std::to_string(row_begin) + ", " +
                              std::to_string(row_begin + row_count) +
                              ") out of range for " +
                              std::to_string(info.row_count) + " rows");
  }

  EncodedShard shard;
  shard.ids.resize(row_count);
  shard.bits = BitMatrix(row_count, info.filter_bits);
  if (row_count == 0) return shard;

  if (std::fseek(f.get(), static_cast<long>(info.ids_offset() + row_begin * 8),
                 SEEK_SET) != 0) {
    return Status::IoError(path + ": seek failed");
  }
  std::vector<uint8_t> id_bytes(row_count * 8);
  if (!ReadExact(f.get(), id_bytes.data(), id_bytes.size())) {
    return Status::OutOfRange(path + ": PCLK ids truncated");
  }
  GetU64Span(shard.ids.data(), id_bytes.data(), row_count);

  std::vector<uint8_t> pop_bytes;
  if (info.has_popcounts()) {
    if (std::fseek(f.get(),
                   static_cast<long>(info.popcounts_offset() + row_begin * 4),
                   SEEK_SET) != 0) {
      return Status::IoError(path + ": seek failed");
    }
    pop_bytes.resize(row_count * 4);
    if (!ReadExact(f.get(), pop_bytes.data(), pop_bytes.size())) {
      return Status::OutOfRange(path + ": PCLK popcounts truncated");
    }
  }

  if (std::fseek(f.get(),
                 static_cast<long>(info.rows_offset() +
                                   row_begin * info.row_stride_bytes),
                 SEEK_SET) != 0) {
    return Status::IoError(path + ": seek failed");
  }
  std::vector<uint8_t> row(info.row_stride_bytes);
  for (uint64_t r = 0; r < row_count; ++r) {
    if (!ReadExact(f.get(), row.data(), row.size())) {
      return Status::OutOfRange(path + ": PCLK rows truncated");
    }
    PPRL_RETURN_IF_ERROR(LoadRow(shard.bits, r, row.data(), info.row_stride_bytes));
  }
  PPRL_RETURN_IF_ERROR(ValidateRows(
      shard.bits, info, pop_bytes.empty() ? nullptr : pop_bytes.data()));
  return shard;
}

bool LooksLikePclkFile(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  uint8_t magic[4];
  return ReadExact(f.get(), magic, sizeof(magic)) && GetU32(magic) == kPclkMagic;
}

}  // namespace pprl::io
