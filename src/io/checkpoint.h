#ifndef PPRL_IO_CHECKPOINT_H_
#define PPRL_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "encoding/clk_io.h"

namespace pprl::io {

/// PCKP — checkpoint snapshots of the online serving state
/// (docs/PROTOCOLS.md Appendix B).
///
/// A checkpoint is one self-verifying file holding everything the online
/// engine needs to answer queries exactly as before a crash: the indexed
/// rows (a nested PCLK blob, reusing that codec's checksummed sections),
/// the database registry, the union-find cluster partition, and the LSH
/// band geometry. Band tables themselves are NOT stored: they are a
/// deterministic function of (geometry, seed, row sequence), so recovery
/// rebuilds them from the row section and verifies the rebuild against the
/// stored fingerprint-stream checksum — a drifted seed or geometry cannot
/// silently produce a different collision relation.
///
/// File layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic 0x504B4350 ("PCKP")
///   4       4     version (currently 1)
///   8       8     wal_sequence — last WAL record applied to this state;
///                 recovery replays only records with sequence > this
///   16      4     filter_bits
///   20      4     lsh_tables
///   24      4     lsh_bits_per_key
///   28      4     section count
///   32      8     lsh_seed
///   40      8     dice_threshold (IEEE-754 double bit pattern)
///   48      8     reserved, must be 0
///   56      8     header checksum — FNV-1a-64 over bytes [0, 56)
///
/// followed by sections, each:
///
///   0       4     type (CheckpointSection)
///   4       4     reserved, must be 0
///   8       8     payload length
///   16      8     payload checksum — FNV-1a-64
///   24      8     section-header checksum — FNV-1a-64 over bytes [0, 24)
///   32      n     payload
///
/// Checkpoints are written with write-temp -> fsync -> atomic-rename ->
/// fsync-directory discipline: a crash mid-write leaves only a *.tmp file
/// that recovery ignores; once the canonical name exists it is complete.
enum class CheckpointSection : uint32_t {
  /// The indexed rows as a nested PCLK blob (ids + BitMatrix rows, row
  /// order = arrival order).
  kRows = 1,
  /// Database registry: u32 count, then per database u32 name length +
  /// name bytes + u32 record count. Index order = registration order.
  kDatabases = 2,
  /// Cluster partition: u64 row count, row_count x u32 union-find parent,
  /// row_count x u32 database index, packed linked bitmap
  /// (ceil(row_count/8) bytes), u64 accepted edges, u64 comparisons.
  kPartition = 3,
  /// LSH rebuild verification: u64 band checksum — FNV-1a-64 over the
  /// little-endian band fingerprints of every row in (row, table) order.
  kLshState = 4,
};

inline constexpr uint32_t kCheckpointMagic = 0x504B4350u;
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr size_t kCheckpointHeaderBytes = 64;
inline constexpr size_t kCheckpointSectionHeaderBytes = 32;

/// Everything a checkpoint stores — the online engine's exportable state.
/// `io` stays linkable without the linkage layer; the engine converts
/// to/from this struct (OnlineLinkageEngine::ExportSnapshot/FromSnapshot).
struct OnlineSnapshot {
  uint32_t filter_bits = 0;
  uint32_t lsh_tables = 0;
  uint32_t lsh_bits_per_key = 0;
  uint64_t lsh_seed = 0;
  double dice_threshold = 0;
  uint64_t wal_sequence = 0;

  std::vector<std::string> database_names;
  std::vector<uint32_t> database_sizes;

  EncodedShard rows;                   ///< ids + filters, arrival order
  std::vector<uint32_t> row_database;  ///< per row: owning database index
  std::vector<uint32_t> parent;        ///< union-find parents (parent[i] <= i)
  std::vector<uint8_t> linked;         ///< per row: has >= 1 accepted edge
  uint64_t edges = 0;
  uint64_t comparisons = 0;
  uint64_t band_checksum = 0;          ///< see CheckpointSection::kLshState
};

/// Serialises a snapshot (pure in-memory encode; see WriteCheckpointFile
/// for the atomic on-disk discipline).
std::vector<uint8_t> EncodeCheckpoint(const OnlineSnapshot& snapshot);

/// Full decode with checksum and cross-section consistency verification.
/// `origin` names the source in error messages (a path, typically).
Result<OnlineSnapshot> DecodeCheckpoint(const uint8_t* data, size_t size,
                                        const std::string& origin);

/// Writes `<dir>/checkpoint-<wal_sequence>.pckp` via a temp file, fsync,
/// atomic rename and directory fsync. On success `*final_path` (optional)
/// receives the canonical path.
Status WriteCheckpointFile(const std::string& dir,
                           const OnlineSnapshot& snapshot,
                           std::string* final_path = nullptr);

/// Reads and fully verifies a checkpoint file.
Result<OnlineSnapshot> ReadCheckpointFile(const std::string& path);

/// Checkpoint files in `dir` as (wal_sequence, path), ascending. Ignores
/// *.tmp leftovers of interrupted writes. A missing directory is an empty
/// list, not an error.
Result<std::vector<std::pair<uint64_t, std::string>>> ListCheckpoints(
    const std::string& dir);

/// Canonical checkpoint filename: "<dir>/checkpoint-<wal_sequence>.pckp".
std::string CheckpointPath(const std::string& dir, uint64_t wal_sequence);

}  // namespace pprl::io

#endif  // PPRL_IO_CHECKPOINT_H_
