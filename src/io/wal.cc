#include "io/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <dirent.h>

#include "io/pclk.h"
#include "obs/metrics.h"

namespace pprl::io {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

int64_t MonotonicNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// fsyncs the directory entry so a freshly created/renamed file survives a
/// machine crash, not just a process crash.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("cannot fsync directory", dir);
  return Status::OK();
}

struct WalMetrics {
  obs::Counter& appends = obs::GlobalMetrics().GetCounter(
      "pprl_wal_appends_total", "WAL records journaled");
  obs::Counter& bytes = obs::GlobalMetrics().GetCounter(
      "pprl_wal_bytes_total", "WAL bytes journaled (headers + payloads)");
  obs::Counter& syncs = obs::GlobalMetrics().GetCounter(
      "pprl_wal_syncs_total", "WAL fsync calls (group commit flushes)");
};

WalMetrics& Metrics() {
  static WalMetrics metrics;
  return metrics;
}

std::string Offset(uint64_t offset) {
  return " at offset " + std::to_string(offset);
}

}  // namespace

WalWriter::WalWriter(int fd, std::string path, uint64_t start_sequence,
                     Options options)
    : fd_(fd),
      path_(std::move(path)),
      next_sequence_(start_sequence),
      options_(options),
      last_sync_ns_(MonotonicNanos()) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint32_t filter_bits,
                                                     uint64_t start_sequence,
                                                     Options options) {
  if (filter_bits == 0) {
    return Status::InvalidArgument("WAL segment needs a filter bit length");
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("cannot create WAL segment", path);

  std::vector<uint8_t> header;
  header.reserve(kWalHeaderBytes);
  PutU32(&header, kWalMagic);
  PutU32(&header, kWalVersion);
  PutU64(&header, start_sequence);
  PutU32(&header, filter_bits);
  PutU32(&header, 0);  // reserved
  PutU64(&header, Fnv1a64(header.data(), header.size()));

  if (::write(fd, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    const Status failed = ErrnoStatus("cannot write WAL header to", path);
    ::close(fd);
    ::unlink(path.c_str());
    return failed;
  }
  if (::fsync(fd) != 0) {
    const Status failed = ErrnoStatus("cannot fsync WAL segment", path);
    ::close(fd);
    return failed;
  }
  PPRL_RETURN_IF_ERROR(SyncParentDir(path));

  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(fd, path, start_sequence, options));
  writer->bytes_written_ = kWalHeaderBytes;
  return writer;
}

Result<uint64_t> WalWriter::Append(WalRecordType type, const uint8_t* payload,
                                   size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  if (len > kWalMaxPayloadBytes) {
    return Status::InvalidArgument("WAL payload of " + std::to_string(len) +
                                   " bytes exceeds the record cap");
  }
  const uint64_t sequence = next_sequence_;
  std::vector<uint8_t> record;
  record.reserve(kWalRecordHeaderBytes + len);
  PutU32(&record, static_cast<uint32_t>(len));
  PutU32(&record, static_cast<uint32_t>(type));
  PutU64(&record, sequence);
  PutU64(&record, Fnv1a64(payload, len));
  PutU64(&record, Fnv1a64(record.data(), record.size()));
  record.insert(record.end(), payload, payload + len);

  // One write() call: either the whole record reaches the OS or the append
  // fails and nothing is acked. A torn tail can then only come from the
  // kernel itself dying mid-flush, which the reader handles as clean.
  const uint8_t* p = record.data();
  size_t remaining = record.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("cannot append to WAL segment", path_);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  ++next_sequence_;
  bytes_written_ += record.size();
  Metrics().appends.Increment();
  Metrics().bytes.Increment(record.size());

  if (options_.sync_every_ms <= 0) {
    PPRL_RETURN_IF_ERROR(Sync());
  } else {
    const int64_t now = MonotonicNanos();
    if (now - last_sync_ns_ >=
        static_cast<int64_t>(options_.sync_every_ms) * 1000000) {
      PPRL_RETURN_IF_ERROR(Sync());
    }
  }
  return sequence;
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  if (::fsync(fd_) != 0) return ErrnoStatus("cannot fsync WAL segment", path_);
  last_sync_ns_ = MonotonicNanos();
  ++syncs_;
  Metrics().syncs.Increment();
  return Status::OK();
}

Result<WalSegment> ReadWalFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ErrnoStatus("cannot open WAL segment", path);
  std::vector<uint8_t> data;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return ErrnoStatus("cannot read WAL segment", path);

  if (data.size() < kWalHeaderBytes) {
    return Status::OutOfRange("WAL segment " + path + " is truncated: " +
                              std::to_string(data.size()) +
                              " bytes, header needs " +
                              std::to_string(kWalHeaderBytes));
  }
  if (GetU32(data.data()) != kWalMagic) {
    return Status::InvalidArgument("not a WAL segment: " + path +
                                   " (bad magic" + Offset(0) + ")");
  }
  if (GetU32(data.data() + 4) != kWalVersion) {
    return Status::InvalidArgument(
        "WAL segment " + path + " has unsupported version " +
        std::to_string(GetU32(data.data() + 4)) + Offset(4));
  }
  if (GetU64(data.data() + 24) != Fnv1a64(data.data(), 24)) {
    return Status::IoError("WAL segment " + path +
                           " header checksum mismatch" + Offset(24));
  }
  if (GetU32(data.data() + 20) != 0) {
    return Status::ProtocolViolation("WAL segment " + path +
                                     " has reserved header bits set" +
                                     Offset(20));
  }

  WalSegment segment;
  segment.start_sequence = GetU64(data.data() + 8);
  segment.filter_bits = GetU32(data.data() + 16);
  if (segment.filter_bits == 0) {
    return Status::ProtocolViolation("WAL segment " + path +
                                     " declares zero filter bits" + Offset(16));
  }

  uint64_t offset = kWalHeaderBytes;
  uint64_t expected_sequence = segment.start_sequence;
  while (offset < data.size()) {
    const uint64_t remaining = data.size() - offset;
    if (remaining < kWalRecordHeaderBytes) {
      // Clean torn tail: the crash cut the final record mid-header.
      segment.torn_offset = offset;
      segment.torn_bytes = remaining;
      return segment;
    }
    const uint8_t* h = data.data() + offset;
    if (GetU64(h + 24) != Fnv1a64(h, 24)) {
      return Status::IoError("WAL segment " + path +
                             " record header checksum mismatch" +
                             Offset(offset));
    }
    const uint64_t len = GetU32(h);
    const uint32_t type = GetU32(h + 4);
    const uint64_t sequence = GetU64(h + 8);
    if (len > kWalMaxPayloadBytes) {
      return Status::ProtocolViolation("WAL segment " + path +
                                       " record declares oversized payload" +
                                       Offset(offset));
    }
    if (sequence != expected_sequence) {
      return Status::ProtocolViolation(
          "WAL segment " + path + " sequence gap: expected " +
          std::to_string(expected_sequence) + ", found " +
          std::to_string(sequence) + Offset(offset));
    }
    if (remaining - kWalRecordHeaderBytes < len) {
      // Clean torn tail: the crash cut the final record mid-payload. The
      // header checksum above proves the length field is intact, so this
      // cannot be mistaken corruption.
      segment.torn_offset = offset;
      segment.torn_bytes = remaining;
      return segment;
    }
    const uint8_t* payload = h + kWalRecordHeaderBytes;
    if (GetU64(h + 16) != Fnv1a64(payload, len)) {
      return Status::IoError("WAL segment " + path +
                             " record payload checksum mismatch" +
                             Offset(offset));
    }
    WalRecord record;
    record.type = type;
    record.sequence = sequence;
    record.offset = offset;
    record.payload.assign(payload, payload + len);
    segment.records.push_back(std::move(record));
    offset += kWalRecordHeaderBytes + len;
    ++expected_sequence;
  }
  segment.torn_offset = data.size();
  segment.torn_bytes = 0;
  return segment;
}

std::string WalSegmentPath(const std::string& dir, uint64_t start_sequence) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%020llu.pwal",
                static_cast<unsigned long long>(start_sequence));
  return dir + "/" + name;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return segments;
    return ErrnoStatus("cannot list WAL directory", dir);
  }
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    unsigned long long seq = 0;
    char trailer = 0;
    if (std::sscanf(name.c_str(), "wal-%20llu.pwa%c", &seq, &trailer) == 2 &&
        trailer == 'l' && name == WalSegmentPath("", seq).substr(1)) {
      segments.emplace_back(seq, dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::vector<uint8_t> EncodeWalHello(const std::string& party) {
  std::vector<uint8_t> payload;
  payload.reserve(4 + party.size());
  PutU32(&payload, static_cast<uint32_t>(party.size()));
  payload.insert(payload.end(), party.begin(), party.end());
  return payload;
}

Result<std::string> DecodeWalHello(const std::vector<uint8_t>& payload) {
  if (payload.size() < 4) {
    return Status::OutOfRange("WAL hello payload is truncated");
  }
  const uint32_t len = GetU32(payload.data());
  if (payload.size() != 4u + len) {
    return Status::ProtocolViolation("WAL hello length mismatch");
  }
  if (len == 0) {
    return Status::ProtocolViolation("WAL hello names an empty owner");
  }
  return std::string(payload.begin() + 4, payload.end());
}

std::vector<uint8_t> EncodeWalAppendBatch(uint32_t database,
                                          const EncodedDatabase& rows,
                                          size_t begin, size_t end) {
  const size_t count = end - begin;
  const size_t filter_bits = count == 0 ? 0 : rows.filters[begin].size();
  const size_t filter_bytes = (filter_bits + 7) / 8;
  std::vector<uint8_t> payload;
  payload.reserve(16 + count * (8 + filter_bytes));
  PutU32(&payload, database);
  PutU32(&payload, static_cast<uint32_t>(count));
  PutU32(&payload, static_cast<uint32_t>(filter_bits));
  PutU32(&payload, 0);  // reserved
  for (size_t i = begin; i < end; ++i) {
    PutU64(&payload, rows.ids[i]);
    const std::vector<uint8_t> bytes = BitVectorToBytes(rows.filters[i]);
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  return payload;
}

Result<WalAppendBatch> DecodeWalAppendBatch(
    const std::vector<uint8_t>& payload) {
  if (payload.size() < 16) {
    return Status::OutOfRange("WAL append-batch payload is truncated");
  }
  WalAppendBatch batch;
  batch.database = GetU32(payload.data());
  const uint32_t count = GetU32(payload.data() + 4);
  const uint32_t filter_bits = GetU32(payload.data() + 8);
  if (GetU32(payload.data() + 12) != 0) {
    return Status::ProtocolViolation(
        "WAL append-batch has reserved bits set");
  }
  if (count == 0) {
    return Status::ProtocolViolation("WAL append-batch holds zero records");
  }
  if (filter_bits == 0) {
    return Status::ProtocolViolation(
        "WAL append-batch declares zero filter bits");
  }
  const uint64_t filter_bytes = (static_cast<uint64_t>(filter_bits) + 7) / 8;
  const uint64_t expected = 16 + static_cast<uint64_t>(count) * (8 + filter_bytes);
  if (payload.size() != expected) {
    return Status::ProtocolViolation(
        "WAL append-batch length mismatch: " + std::to_string(payload.size()) +
        " bytes, geometry needs " + std::to_string(expected));
  }
  batch.rows.ids.reserve(count);
  batch.rows.filters.reserve(count);
  const uint8_t* p = payload.data() + 16;
  std::vector<uint8_t> filter_buf(filter_bytes);
  for (uint32_t i = 0; i < count; ++i) {
    batch.rows.ids.push_back(GetU64(p));
    p += 8;
    filter_buf.assign(p, p + filter_bytes);
    auto filter = BitVectorFromBytes(filter_buf, filter_bits);
    if (!filter.ok()) return filter.status();
    batch.rows.filters.push_back(std::move(*filter));
    p += filter_bytes;
  }
  return batch;
}

}  // namespace pprl::io
