#ifndef PPRL_CRYPTO_SECURE_EDIT_DISTANCE_H_
#define PPRL_CRYPTO_SECURE_EDIT_DISTANCE_H_

#include <cstddef>
#include <string>

#include "common/random.h"
#include "common/status.h"

namespace pprl {

/// Metering of one secure-edit-distance run.
struct SecureEditDistanceStats {
  size_t distance = 0;           ///< the edit distance itself
  size_t encryptions = 0;        ///< Paillier Encrypt calls
  size_t decryptions = 0;        ///< Paillier Decrypt calls
  size_t messages = 0;           ///< simulated wire messages
  size_t bytes = 0;              ///< simulated wire volume
};

/// Two-party secure edit distance in the style of Atallah et al. [1].
///
/// Alice holds `a` (and the Paillier key pair); Bob holds `b`. Bob maintains
/// every dynamic-programming cell as a Paillier ciphertext:
///   * substitution costs come from homomorphically selecting one entry of
///     Alice's encrypted one-hot character vector, so neither side learns the
///     other's characters;
///   * additions are ciphertext-plaintext homomorphic operations local to Bob;
///   * each cell's three-way min is computed interactively: Bob blinds the
///     candidates with a shared random offset and Alice returns the
///     re-encrypted minimum (the standard blinded-min of the semi-honest
///     construction; Alice learns only differences between the three
///     candidates, which the DP recurrence already bounds by +-2).
///
/// The protocol is quadratic in the string lengths with a public-key
/// operation per cell — this is the survey's "provably secure and highly
/// accurate, however computationally expensive" cryptographic baseline,
/// benchmarked against Bloom-filter matching in experiment E3.
///
/// `modulus_bits` sizes the Paillier keys; lowercase ASCII letters plus space
/// make up the supported alphabet (other bytes are mapped to one slot).
Result<SecureEditDistanceStats> SecureEditDistance(const std::string& a,
                                                   const std::string& b, Rng& rng,
                                                   size_t modulus_bits = 256);

/// Plain (non-private) Levenshtein distance; the correctness oracle for the
/// secure protocol and the unencoded baseline for benchmarks.
size_t PlainEditDistance(const std::string& a, const std::string& b);

}  // namespace pprl

#endif  // PPRL_CRYPTO_SECURE_EDIT_DISTANCE_H_
