#ifndef PPRL_CRYPTO_PAILLIER_H_
#define PPRL_CRYPTO_PAILLIER_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "crypto/bigint.h"

namespace pprl {

/// Public key of the Paillier cryptosystem: n = p*q and g = n + 1.
struct PaillierPublicKey {
  BigInt n;
  BigInt n_squared;

  /// Bits of plaintext the modulus can carry.
  size_t PlaintextBits() const { return n.BitLength() - 1; }
};

/// Private key. Decryption runs in CRT form: two half-size exponentiations
/// modulo p^2 and q^2 instead of one full-size one modulo n^2 (~4x faster),
/// using the precomputed per-prime inverses hp/hq from Paillier's paper.
struct PaillierPrivateKey {
  BigInt p;
  BigInt q;
  BigInt p_squared;
  BigInt q_squared;
  BigInt hp;       ///< (L_p(g^(p-1) mod p^2))^-1 mod p
  BigInt hq;       ///< (L_q(g^(q-1) mod q^2))^-1 mod q
  BigInt q_inv_p;  ///< q^-1 mod p, for the CRT recombination
};

/// A Paillier ciphertext; element of Z*_{n^2}.
struct PaillierCiphertext {
  BigInt value;
};

/// Paillier additively homomorphic encryption.
///
/// This is the homomorphic-encryption instance of the survey's
/// "Cryptography" privacy technology (§3.4): Enc(a) * Enc(b) = Enc(a + b)
/// and Enc(a)^k = Enc(k * a), which is exactly what the secure-summation and
/// secure-edit-distance protocols need. Keys here are sized for protocol
/// benchmarking on a laptop, not for production security; the key size is a
/// constructor parameter so the cost/security trade-off is measurable.
class Paillier {
 public:
  /// Generates a fresh key pair with an n of roughly `modulus_bits` bits.
  /// `modulus_bits` must be >= 16.
  static Result<Paillier> Generate(Rng& rng, size_t modulus_bits);

  const PaillierPublicKey& public_key() const { return public_key_; }

  /// Encrypts `plaintext` (must be in [0, n)).
  Result<PaillierCiphertext> Encrypt(const BigInt& plaintext, Rng& rng) const;

  /// Decrypts to the canonical representative in [0, n).
  Result<BigInt> Decrypt(const PaillierCiphertext& ciphertext) const;

  /// Homomorphic addition: Dec(AddCiphertexts(Enc(a), Enc(b))) = a + b mod n.
  PaillierCiphertext AddCiphertexts(const PaillierCiphertext& a,
                                    const PaillierCiphertext& b) const;

  /// Homomorphic plaintext addition: Enc(a) -> Enc(a + k mod n).
  PaillierCiphertext AddPlaintext(const PaillierCiphertext& a, const BigInt& k) const;

  /// Homomorphic scalar multiplication: Enc(a) -> Enc(k * a mod n).
  PaillierCiphertext MultiplyPlaintext(const PaillierCiphertext& a, const BigInt& k) const;

  /// Re-randomises a ciphertext without changing the plaintext, so repeated
  /// values are unlinkable on the wire.
  PaillierCiphertext Rerandomize(const PaillierCiphertext& a, Rng& rng) const;

 private:
  Paillier(PaillierPublicKey pub, PaillierPrivateKey priv)
      : public_key_(std::move(pub)), private_key_(std::move(priv)) {}

  PaillierPublicKey public_key_;
  PaillierPrivateKey private_key_;
};

}  // namespace pprl

#endif  // PPRL_CRYPTO_PAILLIER_H_
