#ifndef PPRL_CRYPTO_SECURE_VECTOR_H_
#define PPRL_CRYPTO_SECURE_VECTOR_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/random.h"
#include "common/status.h"
#include "crypto/paillier.h"

namespace pprl {

/// Secure two-party vector operations on Paillier ciphertexts — the
/// "secure vector operations" entry of the survey's cryptography branch
/// [25] and the matching primitive of the homomorphic HLSH protocol of
/// Karapiperis & Verykios [18].
///
/// Roles: Alice holds the key pair and her (encrypted) vector; Bob holds
/// his plaintext vector and computes on Alice's ciphertexts without
/// learning her entries.

/// Alice's encrypted bit vector: one ciphertext per position.
struct EncryptedBitVector {
  std::vector<PaillierCiphertext> bits;
};

/// Encrypts Alice's filter position-wise.
Result<EncryptedBitVector> EncryptBitVector(const Paillier& paillier,
                                            const BitVector& filter, Rng& rng);

/// Bob's side: Enc(dot(x, y)) = prod over positions with y_i = 1 of Enc(x_i).
/// Purely homomorphic — Bob learns nothing; Alice decrypts the dot product.
PaillierCiphertext HomomorphicDotProduct(const Paillier& paillier,
                                         const EncryptedBitVector& encrypted_x,
                                         const BitVector& y);

/// Bob's side: Enc(hamming(x, y)) using
///   d = |y| + sum_i x_i - 2 * dot(x, y)
/// computed entirely on ciphertexts (|y| and the homomorphic sum of x).
PaillierCiphertext HomomorphicHammingDistance(const Paillier& paillier,
                                              const EncryptedBitVector& encrypted_x,
                                              const BitVector& y);

/// End-to-end secure Hamming distance with cost metering: Alice encrypts,
/// Bob folds, Alice decrypts. The value both learn is the distance only.
struct SecureDistanceStats {
  size_t distance = 0;
  size_t encryptions = 0;
  size_t homomorphic_ops = 0;
  size_t bytes = 0;
};
Result<SecureDistanceStats> SecureHammingDistance(const BitVector& x, const BitVector& y,
                                                  Rng& rng, size_t modulus_bits = 256);

}  // namespace pprl

#endif  // PPRL_CRYPTO_SECURE_VECTOR_H_
