#ifndef PPRL_CRYPTO_HASH_H_
#define PPRL_CRYPTO_HASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace pprl {

/// MD5 digest (16 bytes). Used only as one leg of the classic
/// double-hashing scheme for Bloom-filter encodings [33]; not for security.
std::array<uint8_t, 16> Md5(std::string_view data);

/// SHA-1 digest (20 bytes).
std::array<uint8_t, 20> Sha1(std::string_view data);

/// SHA-256 digest (32 bytes).
std::array<uint8_t, 32> Sha256(std::string_view data);

/// HMAC-SHA-256. Keyed hashing is the survey's standard defence that keeps a
/// dictionary-equipped adversary from hashing candidate QID values itself.
std::array<uint8_t, 32> HmacSha256(std::string_view key, std::string_view data);

/// First 8 bytes of a digest as a little-endian integer, for use as a hash
/// value in [0, 2^64).
template <size_t N>
uint64_t DigestToUint64(const std::array<uint8_t, N>& digest) {
  static_assert(N >= 8);
  uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | digest[static_cast<size_t>(i)];
  return out;
}

/// Hex rendering of a digest (lower-case).
template <size_t N>
std::string DigestToHex(const std::array<uint8_t, N>& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(2 * N);
  for (uint8_t b : digest) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

/// 64-bit tabulation hash family: cheap, 3-independent, seedable.
/// Used for MinHash signatures and LSH where cryptographic strength is not
/// required but independence across seeds is.
class TabulationHash {
 public:
  /// Builds the 8x256 random table from `seed`.
  explicit TabulationHash(uint64_t seed);

  /// Hashes an arbitrary byte string.
  uint64_t Hash(std::string_view data) const;

  /// Hashes a 64-bit value.
  uint64_t Hash64(uint64_t x) const;

 private:
  std::array<std::array<uint64_t, 256>, 8> table_;
};

}  // namespace pprl

#endif  // PPRL_CRYPTO_HASH_H_
