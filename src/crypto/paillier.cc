#include "crypto/paillier.h"

namespace pprl {

namespace {

/// L_m(x) = (x - 1) / m, the Paillier L-function on residues mod m^2.
BigInt LFunction(const BigInt& x, const BigInt& m) { return (x - BigInt(1)) / m; }

}  // namespace

Result<Paillier> Paillier::Generate(Rng& rng, size_t modulus_bits) {
  if (modulus_bits < 16) {
    return Status::InvalidArgument("Paillier modulus must be at least 16 bits");
  }
  const size_t prime_bits = modulus_bits / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const BigInt p = BigInt::RandomPrime(rng, prime_bits);
    const BigInt q = BigInt::RandomPrime(rng, modulus_bits - prime_bits);
    if (p == q) continue;
    const BigInt n = p * q;
    // gcd(n, (p-1)(q-1)) == 1 holds automatically for distinct primes of
    // similar size, but verify to keep the key mathematically valid.
    const BigInt p1 = p - BigInt(1);
    const BigInt q1 = q - BigInt(1);
    if (Gcd(n, p1 * q1) != BigInt(1)) continue;

    // CRT precomputation with g = n + 1:
    //   hp = (L_p(g^(p-1) mod p^2))^-1 mod p, likewise hq.
    const BigInt p_squared = p * p;
    const BigInt q_squared = q * q;
    const BigInt g = n + BigInt(1);
    auto hp = ModInverse(LFunction(PowMod(g, p1, p_squared), p), p);
    auto hq = ModInverse(LFunction(PowMod(g, q1, q_squared), q), q);
    auto q_inv_p = ModInverse(q, p);
    if (!hp.ok() || !hq.ok() || !q_inv_p.ok()) continue;

    PaillierPublicKey pub{n, n * n};
    PaillierPrivateKey priv{p,
                            q,
                            p_squared,
                            q_squared,
                            std::move(hp).value(),
                            std::move(hq).value(),
                            std::move(q_inv_p).value()};
    return Paillier(std::move(pub), std::move(priv));
  }
  return Status::Internal("Paillier key generation failed repeatedly");
}

Result<PaillierCiphertext> Paillier::Encrypt(const BigInt& plaintext, Rng& rng) const {
  if (plaintext.is_negative() || plaintext >= public_key_.n) {
    return Status::OutOfRange("Paillier plaintext must be in [0, n)");
  }
  // g = n + 1, so g^m = 1 + m*n (mod n^2), avoiding one modexp.
  const BigInt gm = Mod(BigInt(1) + plaintext * public_key_.n, public_key_.n_squared);
  BigInt r = BigInt::Random(rng, public_key_.n);
  while (r.is_zero() || Gcd(r, public_key_.n) != BigInt(1)) {
    r = BigInt::Random(rng, public_key_.n);
  }
  const BigInt rn = PowMod(r, public_key_.n, public_key_.n_squared);
  return PaillierCiphertext{MulMod(gm, rn, public_key_.n_squared)};
}

Result<BigInt> Paillier::Decrypt(const PaillierCiphertext& ciphertext) const {
  if (ciphertext.value.is_negative() || ciphertext.value >= public_key_.n_squared) {
    return Status::OutOfRange("Paillier ciphertext out of range");
  }
  // CRT decryption (Paillier 1999, sec. 7):
  //   m_p = L_p(c^(p-1) mod p^2) * hp mod p
  //   m_q = L_q(c^(q-1) mod q^2) * hq mod q
  // then recombine m from (m_p, m_q) via Garner's formula.
  const PaillierPrivateKey& k = private_key_;
  const BigInt cp = Mod(ciphertext.value, k.p_squared);
  const BigInt cq = Mod(ciphertext.value, k.q_squared);
  const BigInt mp = MulMod(LFunction(PowMod(cp, k.p - BigInt(1), k.p_squared), k.p),
                           k.hp, k.p);
  const BigInt mq = MulMod(LFunction(PowMod(cq, k.q - BigInt(1), k.q_squared), k.q),
                           k.hq, k.q);
  // m = mq + q * ((mp - mq) * q^-1 mod p)
  const BigInt t = MulMod(Mod(mp - mq, k.p), k.q_inv_p, k.p);
  return Mod(mq + k.q * t, public_key_.n);
}

PaillierCiphertext Paillier::AddCiphertexts(const PaillierCiphertext& a,
                                            const PaillierCiphertext& b) const {
  return {MulMod(a.value, b.value, public_key_.n_squared)};
}

PaillierCiphertext Paillier::AddPlaintext(const PaillierCiphertext& a, const BigInt& k) const {
  const BigInt gk = Mod(BigInt(1) + Mod(k, public_key_.n) * public_key_.n,
                        public_key_.n_squared);
  return {MulMod(a.value, gk, public_key_.n_squared)};
}

PaillierCiphertext Paillier::MultiplyPlaintext(const PaillierCiphertext& a,
                                               const BigInt& k) const {
  return {PowMod(a.value, Mod(k, public_key_.n), public_key_.n_squared)};
}

PaillierCiphertext Paillier::Rerandomize(const PaillierCiphertext& a, Rng& rng) const {
  BigInt r = BigInt::Random(rng, public_key_.n);
  while (r.is_zero() || Gcd(r, public_key_.n) != BigInt(1)) {
    r = BigInt::Random(rng, public_key_.n);
  }
  const BigInt rn = PowMod(r, public_key_.n, public_key_.n_squared);
  return {MulMod(a.value, rn, public_key_.n_squared)};
}

}  // namespace pprl
