#ifndef PPRL_CRYPTO_BIGINT_H_
#define PPRL_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace pprl {

/// Arbitrary-precision signed integer.
///
/// This is the number-theoretic substrate for the cryptographic branch of the
/// survey's taxonomy (§3.4 "Cryptography"): Paillier homomorphic encryption,
/// SRA commutative encryption, and secure multi-party summation all run on
/// top of it. Magnitudes are stored as little-endian 32-bit limbs; division
/// uses Knuth's Algorithm D. Sizes in this library are modest (<= a few
/// thousand bits), so schoolbook multiplication is appropriate.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a native signed integer.
  BigInt(int64_t value);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  /// Parses a decimal string with optional leading '-'. Returns zero on an
  /// empty string; non-digit characters are a programming error (asserted).
  static BigInt FromDecimal(const std::string& text);

  /// Uniformly random value in [0, bound). `bound` must be positive.
  static BigInt Random(Rng& rng, const BigInt& bound);

  /// Random integer with exactly `bits` bits (top bit set).
  static BigInt RandomBits(Rng& rng, size_t bits);

  /// Random prime with exactly `bits` bits (Miller-Rabin, 30 rounds).
  static BigInt RandomPrime(Rng& rng, size_t bits);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }

  /// Number of significant bits in the magnitude (0 for zero).
  size_t BitLength() const;

  /// Value of magnitude bit `i` (little-endian).
  bool Bit(size_t i) const;

  /// Decimal rendering with leading '-' when negative.
  std::string ToDecimal() const;

  /// Low 64 bits of the magnitude, negated if the value is negative.
  /// Precondition: the value fits in int64_t.
  int64_t ToInt64() const;

  BigInt operator-() const;
  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated division (C++ semantics). `rhs` must be nonzero.
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }

  /// Left shift of the magnitude by `bits`.
  BigInt ShiftLeft(size_t bits) const;
  /// Right shift of the magnitude by `bits` (arithmetic on magnitude).
  BigInt ShiftRight(size_t bits) const;

  /// Comparison of signed values: -1, 0, or +1.
  int Compare(const BigInt& rhs) const;

  friend bool operator==(const BigInt& a, const BigInt& b) { return a.Compare(b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return a.Compare(b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) { return a.Compare(b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return a.Compare(b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) { return a.Compare(b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return a.Compare(b) >= 0; }

 private:
  void Trim();
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  static BigInt AddMagnitude(const BigInt& a, const BigInt& b);
  /// Requires |a| >= |b|.
  static BigInt SubMagnitude(const BigInt& a, const BigInt& b);
  static void DivModMagnitude(const BigInt& a, const BigInt& b, BigInt* quotient,
                              BigInt* remainder);

  bool negative_ = false;
  std::vector<uint32_t> limbs_;  // little-endian; empty means zero
};

/// Non-negative remainder: ((a % m) + m) % m. `m` must be positive.
BigInt Mod(const BigInt& a, const BigInt& m);

/// (a * b) mod m for non-negative inputs reduced mod m.
BigInt MulMod(const BigInt& a, const BigInt& b, const BigInt& m);

/// a^e mod m via square-and-multiply. `e` must be non-negative, `m` positive.
BigInt PowMod(const BigInt& base, const BigInt& exponent, const BigInt& m);

/// Greatest common divisor of |a| and |b|.
BigInt Gcd(const BigInt& a, const BigInt& b);

/// Least common multiple of |a| and |b|.
BigInt Lcm(const BigInt& a, const BigInt& b);

/// Modular inverse of a mod m; fails when gcd(a, m) != 1.
Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

/// Miller-Rabin primality test with `rounds` random bases.
bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds = 30);

}  // namespace pprl

#endif  // PPRL_CRYPTO_BIGINT_H_
