#include "crypto/secret_sharing.h"

namespace pprl {

std::vector<uint64_t> ShareAdditive(uint64_t secret, size_t num_shares, Rng& rng) {
  std::vector<uint64_t> shares(num_shares, 0);
  if (num_shares == 0) return shares;
  uint64_t acc = 0;
  for (size_t i = 0; i + 1 < num_shares; ++i) {
    shares[i] = rng.NextUint64();
    acc += shares[i];
  }
  shares[num_shares - 1] = secret - acc;  // mod 2^64 wraparound is the point
  return shares;
}

uint64_t ReconstructAdditive(const std::vector<uint64_t>& shares) {
  uint64_t sum = 0;
  for (uint64_t s : shares) sum += s;
  return sum;
}

Result<SecureSumResult> SecureSum(const std::vector<uint64_t>& inputs,
                                  SecureSumProtocol protocol, Rng& rng) {
  const size_t p = inputs.size();
  if (p < 2) return Status::InvalidArgument("secure summation needs >= 2 parties");
  SecureSumResult result;
  constexpr size_t kWordBytes = 8;

  switch (protocol) {
    case SecureSumProtocol::kMaskedRing: {
      // Party 0 adds a random mask, the partial sum travels the ring once,
      // then party 0 removes the mask and broadcasts.
      const uint64_t mask = rng.NextUint64();
      uint64_t running = inputs[0] + mask;
      for (size_t i = 1; i < p; ++i) {
        running += inputs[i];
        ++result.messages;  // party i-1 -> party i
        result.bytes += kWordBytes;
      }
      ++result.messages;  // party p-1 -> party 0
      result.bytes += kWordBytes;
      result.sum = running - mask;
      result.messages += p - 1;  // broadcast of the final sum
      result.bytes += (p - 1) * kWordBytes;
      result.rounds = p + 1;
      break;
    }
    case SecureSumProtocol::kFullSharing: {
      // Phase 1: party i sends share j of its input to party j.
      std::vector<std::vector<uint64_t>> received(p);
      for (size_t i = 0; i < p; ++i) {
        const std::vector<uint64_t> shares = ShareAdditive(inputs[i], p, rng);
        for (size_t j = 0; j < p; ++j) {
          received[j].push_back(shares[j]);
          if (i != j) {
            ++result.messages;
            result.bytes += kWordBytes;
          }
        }
      }
      // Phase 2: each party publishes the sum of the shares it holds.
      uint64_t total = 0;
      for (size_t j = 0; j < p; ++j) {
        total += ReconstructAdditive(received[j]);
        result.messages += p - 1;  // broadcast of the share-sum
        result.bytes += (p - 1) * kWordBytes;
      }
      result.sum = total;
      result.rounds = 2;
      break;
    }
  }
  return result;
}

size_t MinColludersToBreak(SecureSumProtocol protocol, size_t num_parties) {
  switch (protocol) {
    case SecureSumProtocol::kMaskedRing:
      // The two ring neighbours of a victim see x_in and x_in + v, so two
      // colluders recover v exactly (the weakness highlighted in [29]).
      return num_parties >= 3 ? 2 : num_parties;
    case SecureSumProtocol::kFullSharing:
      // All other p-1 parties must pool their shares of the victim's input.
      return num_parties >= 1 ? num_parties - 1 : 0;
  }
  return 0;
}

}  // namespace pprl
