#include "crypto/sra.h"

#include <algorithm>
#include <string>

#include "crypto/hash.h"

namespace pprl {

SraDomain SraDomain::Generate(Rng& rng, size_t bits) {
  // Find q prime with 2q + 1 also prime (safe prime p).
  while (true) {
    const BigInt q = BigInt::RandomPrime(rng, bits - 1);
    const BigInt p = q.ShiftLeft(1) + BigInt(1);
    if (IsProbablePrime(p, rng)) {
      return SraDomain{p, q};
    }
  }
}

Result<SraCipher> SraCipher::Generate(const SraDomain& domain, Rng& rng) {
  const BigInt p_minus_1 = domain.p - BigInt(1);
  for (int attempt = 0; attempt < 256; ++attempt) {
    const BigInt e = BigInt(3) + BigInt::Random(rng, p_minus_1 - BigInt(3));
    auto d = ModInverse(e, p_minus_1);
    if (!d.ok()) continue;
    return SraCipher(domain, e, std::move(d).value());
  }
  return Status::Internal("SRA exponent generation failed repeatedly");
}

Result<BigInt> SraCipher::Encrypt(const BigInt& x) const {
  if (x <= BigInt(0) || x >= domain_.p) {
    return Status::OutOfRange("SRA plaintext must be in (0, p)");
  }
  return PowMod(x, e_, domain_.p);
}

Result<BigInt> SraCipher::Decrypt(const BigInt& y) const {
  if (y <= BigInt(0) || y >= domain_.p) {
    return Status::OutOfRange("SRA ciphertext must be in (0, p)");
  }
  return PowMod(y, d_, domain_.p);
}

namespace {

/// Hashes `value` to a nonzero element of Z*_p and squares it so the result
/// lies in the quadratic-residue subgroup of order q.
BigInt HashToGroup(std::string_view value, const SraDomain& domain) {
  const size_t target_bits = domain.p.BitLength();
  std::string material(value);
  BigInt x;
  int counter = 0;
  do {
    // Expand the digest until it covers the modulus width, then reduce.
    std::string expanded;
    size_t blocks = (target_bits + 255) / 256;
    for (size_t b = 0; b < blocks; ++b) {
      const auto digest = Sha256(material + "#" + std::to_string(b) + "#" +
                                 std::to_string(counter));
      expanded.append(reinterpret_cast<const char*>(digest.data()), digest.size());
    }
    BigInt acc;
    for (char c : expanded) {
      acc = acc.ShiftLeft(8) + BigInt(static_cast<uint8_t>(c));
    }
    x = Mod(acc, domain.p);
    ++counter;
  } while (x.is_zero());
  return MulMod(x, x, domain.p);
}

}  // namespace

BigInt SraCipher::EncryptString(std::string_view value) const {
  const BigInt element = HashToGroup(value, domain_);
  // element is guaranteed in (0, p), so Encrypt cannot fail.
  return PowMod(element, e_, domain_.p);
}

std::vector<size_t> SraPrivateSetIntersection(const std::vector<std::string>& a_values,
                                              const std::vector<std::string>& b_values,
                                              const SraDomain& domain, Rng& rng,
                                              size_t* bytes_exchanged) {
  auto cipher_a = SraCipher::Generate(domain, rng);
  auto cipher_b = SraCipher::Generate(domain, rng);
  if (!cipher_a.ok() || !cipher_b.ok()) return {};
  const size_t element_bytes = (domain.p.BitLength() + 7) / 8;
  size_t bytes = 0;

  // Round 1: each party encrypts its own values and sends them across.
  std::vector<BigInt> ea(a_values.size());
  for (size_t i = 0; i < a_values.size(); ++i) ea[i] = cipher_a->EncryptString(a_values[i]);
  std::vector<BigInt> eb(b_values.size());
  for (size_t i = 0; i < b_values.size(); ++i) eb[i] = cipher_b->EncryptString(b_values[i]);
  bytes += (ea.size() + eb.size()) * element_bytes;

  // Round 2: each party encrypts the other's ciphertexts with its own key.
  // Commutativity makes E_b(E_a(x)) == E_a(E_b(x)), so equal plaintexts
  // collide. B shuffles before returning so A cannot align positions.
  std::vector<BigInt> eab(ea.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    auto enc = cipher_b->Encrypt(ea[i]);
    eab[i] = std::move(enc).value();
  }
  std::vector<BigInt> eba(eb.size());
  for (size_t i = 0; i < eb.size(); ++i) {
    auto enc = cipher_a->Encrypt(eb[i]);
    eba[i] = std::move(enc).value();
  }
  rng.Shuffle(eba);
  bytes += (eab.size() + eba.size()) * element_bytes;

  // A intersects the double encryptions. Sort-merge on decimal form.
  std::vector<std::string> b_keys(eba.size());
  for (size_t i = 0; i < eba.size(); ++i) b_keys[i] = eba[i].ToDecimal();
  std::sort(b_keys.begin(), b_keys.end());
  std::vector<size_t> matches;
  for (size_t i = 0; i < eab.size(); ++i) {
    if (std::binary_search(b_keys.begin(), b_keys.end(), eab[i].ToDecimal())) {
      matches.push_back(i);
    }
  }
  if (bytes_exchanged != nullptr) *bytes_exchanged = bytes;
  return matches;
}

}  // namespace pprl
