#ifndef PPRL_CRYPTO_SRA_H_
#define PPRL_CRYPTO_SRA_H_

#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crypto/bigint.h"

namespace pprl {

/// Shared public parameters of an SRA (Pohlig-Hellman style) commutative
/// cipher: a safe prime p = 2q + 1. All parties exponentiate modulo the same
/// p, so E_a(E_b(x)) == E_b(E_a(x)).
struct SraDomain {
  BigInt p;  ///< safe prime modulus
  BigInt q;  ///< (p - 1) / 2, prime

  /// Generates a fresh domain whose modulus has `bits` bits.
  static SraDomain Generate(Rng& rng, size_t bits);
};

/// One party's keyed commutative encryption function.
///
/// Commutative encryption underlies private set intersection for PPRL: each
/// party encrypts its own hashed QIDs, exchanges, encrypts the other side's
/// values with its own key, and matches double-encrypted values — the
/// "two-party, no linkage unit" corner of the survey's linkage-model taxonomy
/// (§3.1). Honest-but-curious model.
class SraCipher {
 public:
  /// Draws a random exponent e coprime to p-1 (and its inverse d).
  static Result<SraCipher> Generate(const SraDomain& domain, Rng& rng);

  /// Encrypts a group element x in [1, p). Encryption is x^e mod p.
  Result<BigInt> Encrypt(const BigInt& x) const;

  /// Inverts Encrypt (y^d mod p).
  Result<BigInt> Decrypt(const BigInt& y) const;

  /// Maps an arbitrary string into the quadratic-residue subgroup so that
  /// encryption order does not leak Legendre-symbol information, then
  /// encrypts it. This is the entry point used by set-intersection protocols.
  BigInt EncryptString(std::string_view value) const;

  const SraDomain& domain() const { return domain_; }

 private:
  SraCipher(SraDomain domain, BigInt e, BigInt d)
      : domain_(std::move(domain)), e_(std::move(e)), d_(std::move(d)) {}

  SraDomain domain_;
  BigInt e_;
  BigInt d_;
};

/// Private set intersection via commutative encryption (semi-honest,
/// two-party, no linkage unit). Returns the indices into `a_values` whose
/// value also occurs in `b_values`. Communication is simulated in-process;
/// `bytes_exchanged`, if non-null, receives the metered wire volume.
std::vector<size_t> SraPrivateSetIntersection(const std::vector<std::string>& a_values,
                                              const std::vector<std::string>& b_values,
                                              const SraDomain& domain, Rng& rng,
                                              size_t* bytes_exchanged = nullptr);

}  // namespace pprl

#endif  // PPRL_CRYPTO_SRA_H_
