#include "crypto/secure_vector.h"

namespace pprl {

Result<EncryptedBitVector> EncryptBitVector(const Paillier& paillier,
                                            const BitVector& filter, Rng& rng) {
  EncryptedBitVector out;
  out.bits.reserve(filter.size());
  for (size_t i = 0; i < filter.size(); ++i) {
    auto c = paillier.Encrypt(BigInt(filter.Get(i) ? 1 : 0), rng);
    if (!c.ok()) return c.status();
    out.bits.push_back(std::move(c).value());
  }
  return out;
}

PaillierCiphertext HomomorphicDotProduct(const Paillier& paillier,
                                         const EncryptedBitVector& encrypted_x,
                                         const BitVector& y) {
  // Start from Enc(0) = g^0 * r^n with r = 1: the ciphertext "1" is a valid
  // (non-randomised) encryption of zero; callers re-randomise if it leaves
  // the local machine.
  PaillierCiphertext acc{BigInt(1)};
  for (uint32_t pos : y.SetPositions()) {
    if (pos < encrypted_x.bits.size()) {
      acc = paillier.AddCiphertexts(acc, encrypted_x.bits[pos]);
    }
  }
  return acc;
}

PaillierCiphertext HomomorphicHammingDistance(const Paillier& paillier,
                                              const EncryptedBitVector& encrypted_x,
                                              const BitVector& y) {
  // sum_i x_i (homomorphic), then d = |y| + sum_x - 2*dot.
  PaillierCiphertext sum_x{BigInt(1)};
  for (const PaillierCiphertext& bit : encrypted_x.bits) {
    sum_x = paillier.AddCiphertexts(sum_x, bit);
  }
  const PaillierCiphertext dot = HomomorphicDotProduct(paillier, encrypted_x, y);
  const PaillierCiphertext minus_two_dot =
      paillier.MultiplyPlaintext(dot, BigInt(-2));
  PaillierCiphertext d = paillier.AddCiphertexts(sum_x, minus_two_dot);
  d = paillier.AddPlaintext(d, BigInt(static_cast<int64_t>(y.Count())));
  return d;
}

Result<SecureDistanceStats> SecureHammingDistance(const BitVector& x, const BitVector& y,
                                                  Rng& rng, size_t modulus_bits) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("secure Hamming distance needs equal lengths");
  }
  auto paillier = Paillier::Generate(rng, modulus_bits);
  if (!paillier.ok()) return paillier.status();
  SecureDistanceStats stats;
  auto encrypted = EncryptBitVector(*paillier, x, rng);
  if (!encrypted.ok()) return encrypted.status();
  stats.encryptions = x.size();
  const size_t cipher_bytes = (paillier->public_key().n_squared.BitLength() + 7) / 8;
  stats.bytes += x.size() * cipher_bytes;  // Alice -> Bob

  PaillierCiphertext d = HomomorphicHammingDistance(*paillier, encrypted.value(), y);
  stats.homomorphic_ops = x.size() + y.Count() + 2;
  // Bob re-randomises before returning so Alice cannot replay components.
  d = paillier->Rerandomize(d, rng);
  stats.bytes += cipher_bytes;  // Bob -> Alice

  auto plain = paillier->Decrypt(d);
  if (!plain.ok()) return plain.status();
  stats.distance = static_cast<size_t>(plain.value().ToInt64());
  return stats;
}

}  // namespace pprl
