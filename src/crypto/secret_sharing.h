#ifndef PPRL_CRYPTO_SECRET_SHARING_H_
#define PPRL_CRYPTO_SECRET_SHARING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace pprl {

/// Additive secret sharing over Z_{2^64}.
///
/// Splits `secret` into `num_shares` values whose sum (mod 2^64) is the
/// secret; any strict subset of shares is uniformly random. This is the
/// "secret sharing" entry of the survey's cryptography technology branch.
std::vector<uint64_t> ShareAdditive(uint64_t secret, size_t num_shares, Rng& rng);

/// Reconstructs the secret from all shares.
uint64_t ReconstructAdditive(const std::vector<uint64_t>& shares);

/// Outcome of a secure multi-party summation run.
struct SecureSumResult {
  uint64_t sum = 0;              ///< the (mod 2^64) total
  size_t messages = 0;           ///< number of point-to-point messages
  size_t bytes = 0;              ///< metered communication volume
  size_t rounds = 0;             ///< protocol rounds
};

/// Protocol flavours analysed by Ranbaduge et al. [29] for collusion
/// resistance.
enum class SecureSumProtocol {
  /// Classic ring with a random mask added by party 0 and removed at the end.
  /// A single pair of colluding neighbours isolates the party between them.
  kMaskedRing,
  /// Every party splits its input into one share per participant and sends
  /// share j to party j; each party publishes only its share-sum.
  /// Resistant to collusion of up to p-2 parties.
  kFullSharing,
};

/// Runs a semi-honest secure summation over `inputs` (one value per party).
/// Needs at least 2 parties (3 for the masked ring to be meaningful).
Result<SecureSumResult> SecureSum(const std::vector<uint64_t>& inputs,
                                  SecureSumProtocol protocol, Rng& rng);

/// Analytic collusion audit for a summation protocol (cf. [29]): returns the
/// minimum number of colluding parties that can recover some honest party's
/// private input exactly.
size_t MinColludersToBreak(SecureSumProtocol protocol, size_t num_parties);

}  // namespace pprl

#endif  // PPRL_CRYPTO_SECRET_SHARING_H_
