#include "crypto/secure_edit_distance.h"

#include <algorithm>
#include <vector>

#include "crypto/paillier.h"

namespace pprl {

namespace {

constexpr size_t kAlphabetSize = 28;  // a-z, space, other

size_t CharSlot(char c) {
  if (c >= 'a' && c <= 'z') return static_cast<size_t>(c - 'a');
  if (c == ' ') return 26;
  return 27;
}

}  // namespace

size_t PlainEditDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

Result<SecureEditDistanceStats> SecureEditDistance(const std::string& a,
                                                   const std::string& b, Rng& rng,
                                                   size_t modulus_bits) {
  auto paillier_or = Paillier::Generate(rng, modulus_bits);
  if (!paillier_or.ok()) return paillier_or.status();
  const Paillier& he = paillier_or.value();
  SecureEditDistanceStats stats;
  const size_t cipher_bytes = (he.public_key().n_squared.BitLength() + 7) / 8;

  // --- Alice's setup: encrypted one-hot vectors of her characters. ---------
  // onehot[i][c] = Enc(1) if a[i] has slot c else Enc(0).
  std::vector<std::vector<PaillierCiphertext>> onehot(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    onehot[i].reserve(kAlphabetSize);
    for (size_t c = 0; c < kAlphabetSize; ++c) {
      const BigInt bit(CharSlot(a[i]) == c ? 1 : 0);
      auto enc = he.Encrypt(bit, rng);
      if (!enc.ok()) return enc.status();
      onehot[i].push_back(std::move(enc).value());
      ++stats.encryptions;
    }
  }
  stats.messages += 1;  // Alice ships all one-hot vectors in one message.
  stats.bytes += a.size() * kAlphabetSize * cipher_bytes;

  // --- Bob's DP over ciphertexts. ------------------------------------------
  // D[i][j] is held by Bob as Enc(d_ij). Row 0 / column 0 are public.
  const size_t n = a.size();
  const size_t m = b.size();
  auto encrypt_public = [&](uint64_t v) -> Result<PaillierCiphertext> {
    auto enc = he.Encrypt(BigInt(static_cast<int64_t>(v)), rng);
    if (enc.ok()) ++stats.encryptions;
    return enc;
  };

  std::vector<PaillierCiphertext> prev_row;
  prev_row.reserve(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    auto enc = encrypt_public(j);
    if (!enc.ok()) return enc.status();
    prev_row.push_back(std::move(enc).value());
  }

  // Blinded three-way min: Bob adds one shared random offset r to all three
  // candidates and sends them to Alice; Alice decrypts, takes the minimum,
  // re-encrypts, and returns it; Bob strips r homomorphically.
  auto secure_min3 = [&](const PaillierCiphertext& x, const PaillierCiphertext& y,
                         const PaillierCiphertext& z) -> Result<PaillierCiphertext> {
    // Keep the blind far below n to avoid wrap-around: DP values are <= n+m.
    const uint64_t blind = rng.NextUint64(uint64_t{1} << 32);
    const BigInt r(static_cast<int64_t>(blind));
    const PaillierCiphertext bx = he.AddPlaintext(x, r);
    const PaillierCiphertext by = he.AddPlaintext(y, r);
    const PaillierCiphertext bz = he.AddPlaintext(z, r);
    ++stats.messages;
    stats.bytes += 3 * cipher_bytes;
    BigInt best;
    bool first = true;
    for (const PaillierCiphertext* c : {&bx, &by, &bz}) {
      auto dec = he.Decrypt(*c);
      if (!dec.ok()) return dec.status();
      ++stats.decryptions;
      if (first || dec.value() < best) best = std::move(dec).value();
      first = false;
    }
    auto re = he.Encrypt(best, rng);
    if (!re.ok()) return re.status();
    ++stats.encryptions;
    ++stats.messages;
    stats.bytes += cipher_bytes;
    // Strip the blind: Enc(min) * Enc(-r) = Enc(min - r).
    return he.AddPlaintext(std::move(re).value(), -r);
  };

  for (size_t i = 1; i <= n; ++i) {
    std::vector<PaillierCiphertext> cur_row;
    cur_row.reserve(m + 1);
    auto first_cell = encrypt_public(i);
    if (!first_cell.ok()) return first_cell.status();
    cur_row.push_back(std::move(first_cell).value());
    for (size_t j = 1; j <= m; ++j) {
      // Substitution cost 1 - eq where Enc(eq) = onehot[i-1][slot(b[j-1])]:
      // Enc(cost) = Enc(1) * Enc(eq)^{-1} = AddPlaintext(Mul(eq, -1), 1).
      const PaillierCiphertext& eq = onehot[i - 1][CharSlot(b[j - 1])];
      PaillierCiphertext cost = he.MultiplyPlaintext(eq, BigInt(-1));
      cost = he.AddPlaintext(cost, BigInt(1));

      const PaillierCiphertext del = he.AddPlaintext(prev_row[j], BigInt(1));
      const PaillierCiphertext ins = he.AddPlaintext(cur_row[j - 1], BigInt(1));
      const PaillierCiphertext sub = he.AddCiphertexts(prev_row[j - 1], cost);
      auto min_cell = secure_min3(del, ins, sub);
      if (!min_cell.ok()) return min_cell.status();
      cur_row.push_back(std::move(min_cell).value());
    }
    prev_row = std::move(cur_row);
  }

  // Bob sends the final ciphertext to Alice, who decrypts the distance.
  ++stats.messages;
  stats.bytes += cipher_bytes;
  auto final_dec = he.Decrypt(prev_row[m]);
  if (!final_dec.ok()) return final_dec.status();
  ++stats.decryptions;
  stats.distance = static_cast<size_t>(final_dec.value().ToInt64());
  return stats;
}

}  // namespace pprl
