#include "crypto/bigint.h"

#include <algorithm>
#include <cassert>

namespace pprl {

namespace {
constexpr uint64_t kBase = uint64_t{1} << 32;
}  // namespace

BigInt::BigInt(int64_t value) {
  negative_ = value < 0;
  // Avoid overflow at INT64_MIN by working in unsigned space.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  while (mag != 0) {
    limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  size_t bits = (limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t i) const {
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& rhs) const {
  if (negative_ != rhs.negative_) return negative_ ? -1 : 1;
  const int mag = CompareMagnitude(*this, rhs);
  return negative_ ? -mag : mag;
}

BigInt BigInt::AddMagnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::SubMagnitude(const BigInt& a, const BigInt& b) {
  assert(CompareMagnitude(a, b) >= 0);
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= static_cast<int64_t>(b.limbs_[i]);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  if (negative_ == rhs.negative_) {
    BigInt out = AddMagnitude(*this, rhs);
    out.negative_ = negative_ && !out.is_zero();
    return out;
  }
  const int mag = CompareMagnitude(*this, rhs);
  if (mag == 0) return BigInt();
  if (mag > 0) {
    BigInt out = SubMagnitude(*this, rhs);
    out.negative_ = negative_ && !out.is_zero();
    return out;
  }
  BigInt out = SubMagnitude(rhs, *this);
  out.negative_ = rhs.negative_ && !out.is_zero();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = limbs_[i];
    for (size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const uint64_t cur = static_cast<uint64_t>(out.limbs_[i + j]) + ai * rhs.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      const uint64_t cur = static_cast<uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.negative_ = negative_ != rhs.negative_;
  out.Trim();
  return out;
}

// Knuth TAOCP vol. 2, Algorithm 4.3.1 D, specialised to 32-bit limbs.
void BigInt::DivModMagnitude(const BigInt& a, const BigInt& b, BigInt* quotient,
                             BigInt* remainder) {
  assert(!b.is_zero());
  if (CompareMagnitude(a, b) < 0) {
    if (quotient) *quotient = BigInt();
    if (remainder) {
      *remainder = a;
      remainder->negative_ = false;
    }
    return;
  }
  if (b.limbs_.size() == 1) {
    // Short division by a single limb.
    const uint64_t divisor = b.limbs_[0];
    BigInt q;
    q.limbs_.resize(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    q.Trim();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = BigInt(static_cast<int64_t>(rem));
    return;
  }

  // Normalise so the divisor's top limb has its high bit set.
  int shift = 0;
  {
    uint32_t top = b.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigInt u = a.ShiftLeft(shift);
  const BigInt v = b.ShiftLeft(shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;

  std::vector<uint32_t> un(u.limbs_);
  un.push_back(0);  // u has m+n+1 limbs during the loop
  const std::vector<uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate qhat from the top two limbs of the current remainder window.
    const uint64_t numerator = (static_cast<uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    uint64_t qhat = numerator / vn[n - 1];
    uint64_t rhat = numerator % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract qhat * v from the window un[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t product = qhat * vn[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(un[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(un[j + n]) - static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    un[j + n] = static_cast<uint32_t>(diff & 0xffffffff);

    // Add back when the estimate was one too large.
    if (negative) {
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t sum = static_cast<uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<uint32_t>(sum & 0xffffffffu);
        carry2 = sum >> 32;
      }
      un[j + n] = static_cast<uint32_t>(un[j + n] + carry2);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Trim();
  if (quotient) *quotient = std::move(q);
  if (remainder) {
    BigInt r;
    r.limbs_.assign(un.begin(), un.begin() + static_cast<long>(n));
    r.Trim();
    *remainder = r.ShiftRight(shift);
  }
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  BigInt q;
  DivModMagnitude(*this, rhs, &q, nullptr);
  q.negative_ = (negative_ != rhs.negative_) && !q.is_zero();
  return q;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  BigInt r;
  DivModMagnitude(*this, rhs, nullptr, &r);
  r.negative_ = negative_ && !r.is_zero();
  return r;
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t shifted = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(shifted & 0xffffffffu);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(shifted >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(size_t bits) const {
  const size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const size_t bit_shift = bits % 32;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t cur = static_cast<uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      cur |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(cur & 0xffffffffu);
  }
  out.Trim();
  return out;
}

BigInt BigInt::FromDecimal(const std::string& text) {
  BigInt out;
  size_t i = 0;
  bool negative = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    negative = text[0] == '-';
    i = 1;
  }
  for (; i < text.size(); ++i) {
    assert(text[i] >= '0' && text[i] <= '9');
    out = out * BigInt(10) + BigInt(text[i] - '0');
  }
  if (negative && !out.is_zero()) out.negative_ = true;
  return out;
}

std::string BigInt::ToDecimal() const {
  if (is_zero()) return "0";
  BigInt value = *this;
  value.negative_ = false;
  std::string digits;
  const BigInt ten(10);
  while (!value.is_zero()) {
    BigInt q, r;
    DivModMagnitude(value, ten, &q, &r);
    digits += static_cast<char>('0' + r.ToInt64());
    value = std::move(q);
  }
  if (negative_) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

int64_t BigInt::ToInt64() const {
  uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() >= 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  assert(limbs_.size() <= 2);
  return negative_ ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
}

BigInt BigInt::Random(Rng& rng, const BigInt& bound) {
  assert(bound > BigInt(0));
  const size_t bits = bound.BitLength();
  // Rejection sampling from [0, 2^bits) keeps the result uniform.
  while (true) {
    BigInt candidate;
    candidate.limbs_.resize((bits + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<uint32_t>(rng.NextUint64() & 0xffffffffu);
    }
    // Mask the limbs above `bits`.
    const size_t top_bits = bits % 32;
    if (top_bits != 0) {
      candidate.limbs_.back() &= (uint32_t{1} << top_bits) - 1;
    }
    candidate.Trim();
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::RandomBits(Rng& rng, size_t bits) {
  assert(bits > 0);
  BigInt out;
  out.limbs_.resize((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) {
    limb = static_cast<uint32_t>(rng.NextUint64() & 0xffffffffu);
  }
  const size_t top_bits = (bits - 1) % 32;
  // Clear bits above the requested width, then force the top bit on.
  uint32_t& top_limb = out.limbs_.back();
  if (top_bits != 31) top_limb &= (uint32_t{1} << (top_bits + 1)) - 1;
  top_limb |= uint32_t{1} << top_bits;
  out.Trim();
  return out;
}

BigInt BigInt::RandomPrime(Rng& rng, size_t bits) {
  while (true) {
    BigInt candidate = RandomBits(rng, bits);
    if (!candidate.is_odd()) candidate += BigInt(1);
    if (candidate.BitLength() != bits) continue;
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

BigInt Mod(const BigInt& a, const BigInt& m) {
  BigInt r = a % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt MulMod(const BigInt& a, const BigInt& b, const BigInt& m) { return Mod(a * b, m); }

BigInt PowMod(const BigInt& base, const BigInt& exponent, const BigInt& m) {
  assert(!exponent.is_negative());
  BigInt result(1);
  BigInt b = Mod(base, m);
  const size_t bits = exponent.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exponent.Bit(i)) result = MulMod(result, b, m);
    b = MulMod(b, b, m);
  }
  return result;
}

BigInt Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.is_negative() ? -a : a;
  BigInt y = b.is_negative() ? -b : b;
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt Lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt(0);
  const BigInt g = Gcd(a, b);
  BigInt out = (a / g) * b;
  if (out.is_negative()) out = -out;
  return out;
}

Result<BigInt> ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid on (a mod m, m).
  BigInt r0 = Mod(a, m);
  BigInt r1 = m;
  BigInt s0(1), s1(0);
  while (!r1.is_zero()) {
    const BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    BigInt s2 = s0 - q * s1;
    s0 = std::move(s1);
    s1 = std::move(s2);
  }
  if (r0 != BigInt(1)) {
    return Status::InvalidArgument("ModInverse: values are not coprime");
  }
  return Mod(s0, m);
}

bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (int64_t p : {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}) {
    const BigInt bp(p);
    if (n == bp) return true;
    if (Mod(n, bp).is_zero()) return false;
  }
  // Write n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (!d.is_odd()) {
    d = d.ShiftRight(1);
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = BigInt(2) + BigInt::Random(rng, n - BigInt(4));
    BigInt x = PowMod(a, d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 1; i < s; ++i) {
      x = MulMod(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace pprl
