#include "crypto/hash.h"

#include <bit>
#include <cstring>
#include <vector>

#include "common/random.h"

namespace pprl {

namespace {

uint32_t RotL32(uint32_t x, int n) { return std::rotl(x, n); }
uint32_t RotR32(uint32_t x, int n) { return std::rotr(x, n); }

/// Appends the 0x80 byte, zero padding, and the 64-bit message-length field
/// shared by the MD5/SHA-1/SHA-256 Merkle-Damgard constructions.
std::vector<uint8_t> PadMessage(std::string_view data, bool big_endian_length) {
  std::vector<uint8_t> msg(data.begin(), data.end());
  const uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) msg.push_back(0);
  if (big_endian_length) {
    for (int i = 7; i >= 0; --i) msg.push_back(static_cast<uint8_t>(bit_len >> (8 * i)));
  } else {
    for (int i = 0; i < 8; ++i) msg.push_back(static_cast<uint8_t>(bit_len >> (8 * i)));
  }
  return msg;
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

constexpr uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

constexpr int kMd5Shift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                               5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                               4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                               6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

}  // namespace

std::array<uint8_t, 16> Md5(std::string_view data) {
  uint32_t a0 = 0x67452301, b0 = 0xefcdab89, c0 = 0x98badcfe, d0 = 0x10325476;
  const std::vector<uint8_t> msg = PadMessage(data, /*big_endian_length=*/false);
  for (size_t chunk = 0; chunk < msg.size(); chunk += 64) {
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) m[i] = LoadLe32(&msg[chunk + 4 * static_cast<size_t>(i)]);
    uint32_t a = a0, b = b0, c = c0, d = d0;
    for (int i = 0; i < 64; ++i) {
      uint32_t f;
      int g;
      if (i < 16) {
        f = (b & c) | (~b & d);
        g = i;
      } else if (i < 32) {
        f = (d & b) | (~d & c);
        g = (5 * i + 1) % 16;
      } else if (i < 48) {
        f = b ^ c ^ d;
        g = (3 * i + 5) % 16;
      } else {
        f = c ^ (b | ~d);
        g = (7 * i) % 16;
      }
      f = f + a + kMd5K[i] + m[g];
      a = d;
      d = c;
      c = b;
      b = b + RotL32(f, kMd5Shift[i]);
    }
    a0 += a;
    b0 += b;
    c0 += c;
    d0 += d;
  }
  std::array<uint8_t, 16> digest;
  const uint32_t regs[4] = {a0, b0, c0, d0};
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 4; ++i) {
      digest[static_cast<size_t>(4 * r + i)] = static_cast<uint8_t>(regs[r] >> (8 * i));
    }
  }
  return digest;
}

std::array<uint8_t, 20> Sha1(std::string_view data) {
  uint32_t h[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0};
  const std::vector<uint8_t> msg = PadMessage(data, /*big_endian_length=*/true);
  for (size_t chunk = 0; chunk < msg.size(); chunk += 64) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) w[i] = LoadBe32(&msg[chunk + 4 * static_cast<size_t>(i)]);
    for (int i = 16; i < 80; ++i) {
      w[i] = RotL32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdc;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6;
      }
      const uint32_t temp = RotL32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = RotL32(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
  std::array<uint8_t, 20> digest;
  for (int r = 0; r < 5; ++r) {
    for (int i = 0; i < 4; ++i) {
      digest[static_cast<size_t>(4 * r + i)] = static_cast<uint8_t>(h[r] >> (8 * (3 - i)));
    }
  }
  return digest;
}

std::array<uint8_t, 32> Sha256(std::string_view data) {
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  const std::vector<uint8_t> msg = PadMessage(data, /*big_endian_length=*/true);
  for (size_t chunk = 0; chunk < msg.size(); chunk += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = LoadBe32(&msg[chunk + 4 * static_cast<size_t>(i)]);
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 = RotR32(w[i - 15], 7) ^ RotR32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 = RotR32(w[i - 2], 17) ^ RotR32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = RotR32(e, 6) ^ RotR32(e, 11) ^ RotR32(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = hh + s1 + ch + kSha256K[i] + w[i];
      const uint32_t s0 = RotR32(a, 2) ^ RotR32(a, 13) ^ RotR32(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
  std::array<uint8_t, 32> digest;
  for (int r = 0; r < 8; ++r) {
    for (int i = 0; i < 4; ++i) {
      digest[static_cast<size_t>(4 * r + i)] = static_cast<uint8_t>(h[r] >> (8 * (3 - i)));
    }
  }
  return digest;
}

std::array<uint8_t, 32> HmacSha256(std::string_view key, std::string_view data) {
  constexpr size_t kBlockSize = 64;
  std::array<uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const auto hashed = Sha256(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }
  std::string inner;
  inner.reserve(kBlockSize + data.size());
  for (uint8_t b : key_block) inner += static_cast<char>(b ^ 0x36);
  inner.append(data);
  const auto inner_digest = Sha256(inner);
  std::string outer;
  outer.reserve(kBlockSize + inner_digest.size());
  for (uint8_t b : key_block) outer += static_cast<char>(b ^ 0x5c);
  outer.append(reinterpret_cast<const char*>(inner_digest.data()), inner_digest.size());
  return Sha256(outer);
}

TabulationHash::TabulationHash(uint64_t seed) {
  Rng rng(seed);
  for (auto& row : table_) {
    for (auto& cell : row) cell = rng.NextUint64();
  }
}

uint64_t TabulationHash::Hash64(uint64_t x) const {
  uint64_t h = 0;
  for (size_t i = 0; i < 8; ++i) {
    h ^= table_[i][(x >> (8 * i)) & 0xff];
  }
  return h;
}

uint64_t TabulationHash::Hash(std::string_view data) const {
  // FNV-1a fold to 64 bits, then one tabulation round for independence
  // across differently seeded instances.
  uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return Hash64(h);
}

}  // namespace pprl
