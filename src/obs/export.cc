#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pprl::obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Formats a double the way Prometheus expects: integers without a
/// fractional part, everything else with enough digits to round-trip.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Renders `{k1="v1",k2="v2"}` (empty string for no labels); `extra` (an
/// already-formatted `le="..."` pair) is appended when non-empty.
std::string LabelBlock(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot) {
    // Snapshot() sorts by name, so series of one family are contiguous and
    // the HELP/TYPE header is emitted once per family.
    if (m.name != last_family) {
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " " + TypeName(m.type) + "\n";
      last_family = m.name;
    }
    if (m.type == MetricType::kHistogram) {
      for (size_t i = 0; i < m.cumulative_counts.size(); ++i) {
        const std::string le =
            i < m.bounds.size() ? FormatValue(m.bounds[i]) : "+Inf";
        out += m.name + "_bucket" + LabelBlock(m.labels, "le=\"" + le + "\"") +
               " " + std::to_string(m.cumulative_counts[i]) + "\n";
      }
      out += m.name + "_sum" + LabelBlock(m.labels) + " " + FormatValue(m.sum) + "\n";
      out +=
          m.name + "_count" + LabelBlock(m.labels) + " " + std::to_string(m.count) + "\n";
    } else {
      out += m.name + LabelBlock(m.labels) + " " + FormatValue(m.value) + "\n";
    }
  }
  return out;
}

std::string RenderJson(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "{\n  \"metrics\": [\n";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& m = snapshot[i];
    out += "    {\"name\": \"" + EscapeJson(m.name) + "\", \"type\": \"" +
           TypeName(m.type) + "\", \"labels\": {";
    for (size_t j = 0; j < m.labels.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + EscapeJson(m.labels[j].first) + "\": \"" +
             EscapeJson(m.labels[j].second) + "\"";
    }
    out += "}";
    if (m.type == MetricType::kHistogram) {
      out += ", \"count\": " + std::to_string(m.count) +
             ", \"sum\": " + FormatValue(m.sum) + ", \"buckets\": [";
      for (size_t j = 0; j < m.cumulative_counts.size(); ++j) {
        if (j > 0) out += ", ";
        const std::string le =
            j < m.bounds.size() ? FormatValue(m.bounds[j]) : "\"+Inf\"";
        out += "{\"le\": " + le +
               ", \"cumulative_count\": " + std::to_string(m.cumulative_counts[j]) + "}";
      }
      out += "]";
    } else {
      out += ", \"value\": " + FormatValue(m.value);
    }
    out += "}";
    if (i + 1 < snapshot.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool DumpMetricsJson(const std::string& path) {
  if (path.empty()) return false;
  const std::string body = RenderJson(GlobalMetrics().Snapshot());
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open metrics dump file %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

bool MaybeDumpMetricsJson() {
  const char* path = std::getenv("PPRL_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') return false;
  return DumpMetricsJson(path);
}

}  // namespace pprl::obs
