#include "obs/metrics.h"

#include <algorithm>

namespace pprl::obs {

namespace {

/// Key = name + unit separator + k=v pairs; labels are part of the series
/// identity, the name alone identifies the family.
std::string SeriesKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)), buckets_(upper_bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& b : buckets_) counts.push_back(b.load(std::memory_order_relaxed));
  return counts;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(const std::string& key) {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = SeriesKey(name, labels);
  if (Entry* existing = FindOrNull(key)) {
    if (existing->type == MetricType::kCounter) return *existing->counter;
    orphan_counters_.push_back(std::make_unique<Counter>());
    return *orphan_counters_.back();
  }
  Entry entry;
  entry.type = MetricType::kCounter;
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.counter = std::make_unique<Counter>();
  Counter& ref = *entry.counter;
  entries_.emplace(key, std::move(entry));
  return ref;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = SeriesKey(name, labels);
  if (Entry* existing = FindOrNull(key)) {
    if (existing->type == MetricType::kGauge) return *existing->gauge;
    orphan_gauges_.push_back(std::make_unique<Gauge>());
    return *orphan_gauges_.back();
  }
  Entry entry;
  entry.type = MetricType::kGauge;
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.gauge = std::make_unique<Gauge>();
  Gauge& ref = *entry.gauge;
  entries_.emplace(key, std::move(entry));
  return ref;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> upper_bounds,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = SeriesKey(name, labels);
  if (Entry* existing = FindOrNull(key)) {
    if (existing->type == MetricType::kHistogram) return *existing->histogram;
    orphan_histograms_.push_back(
        std::make_unique<Histogram>(std::move(upper_bounds)));
    return *orphan_histograms_.back();
  }
  Entry entry;
  entry.type = MetricType::kHistogram;
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram& ref = *entry.histogram;
  entries_.emplace(key, std::move(entry));
  return ref;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot s;
    s.name = entry.name;
    s.help = entry.help;
    s.type = entry.type;
    s.labels = entry.labels;
    switch (entry.type) {
      case MetricType::kCounter:
        s.value = static_cast<double>(entry.counter->value());
        break;
      case MetricType::kGauge:
        s.value = static_cast<double>(entry.gauge->value());
        break;
      case MetricType::kHistogram: {
        s.bounds = entry.histogram->upper_bounds();
        const std::vector<uint64_t> raw = entry.histogram->bucket_counts();
        s.cumulative_counts.reserve(raw.size());
        uint64_t running = 0;
        for (const uint64_t c : raw) {
          running += c;
          s.cumulative_counts.push_back(running);
        }
        s.count = entry.histogram->count();
        s.sum = entry.histogram->sum();
        break;
      }
    }
    out.push_back(std::move(s));
  }
  // The map iterates in key order, which is already (name, labels) order.
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double> buckets = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,  1.0,    2.5,   5.0,  10.0};
  return buckets;
}

}  // namespace pprl::obs
