#ifndef PPRL_OBS_METRICS_H_
#define PPRL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pprl::obs {

/// Lightweight metrics for the linkage pipeline and daemon — the runtime
/// counterpart of the survey's Figure 3 challenge axes: volume (pairs,
/// bytes), velocity (per-stage latency, queue depth), quality (matches,
/// pruned pairs) and privacy-relevant traffic (per-tag channel counters).
///
/// Design constraints, in order:
///   1. The fast path must be cheap enough to live inside the comparison
///      kernels' callers: incrementing a Counter is one relaxed atomic
///      add, no locks, no allocation.
///   2. Readers never stop writers: Snapshot() copies values with relaxed
///      loads while increments continue. A snapshot is weakly consistent
///      (it may interleave with concurrent updates) but every value in it
///      was true at some instant during the call.
///   3. Registration is the only locked operation. Callers look a metric
///      up once (the returned reference is stable for the registry's
///      lifetime) and hold the reference, so steady state never touches
///      the registry mutex.

/// Ordered (key, value) label pairs identifying one time series within a
/// metric family, e.g. {{"stage", "encode"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing count (events, bytes, pairs).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, active sessions).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket distribution (latencies). Bucket upper bounds are set at
/// construction; an implicit +Inf bucket catches everything above the
/// largest bound. Observe() is lock-free: one atomic add on the matching
/// bucket, one on the count, and a CAS loop on the sum.
class Histogram {
 public:
  /// `upper_bounds` must be sorted ascending; Prometheus `le` semantics
  /// (an observation lands in the first bucket with value <= bound).
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /// Per-bucket counts (size upper_bounds()+1, last is +Inf), NOT
  /// cumulative. Weakly consistent under concurrent Observe().
  std::vector<uint64_t> bucket_counts() const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // upper_bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exported time series, copied out of the registry by Snapshot().
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  /// Counter/gauge value (counters as non-negative integers in double).
  double value = 0;
  /// Histogram only: bucket upper bounds (+Inf implicit) and *cumulative*
  /// per-bucket counts (size bounds+1), plus total count and sum.
  std::vector<double> bounds;
  std::vector<uint64_t> cumulative_counts;
  uint64_t count = 0;
  double sum = 0;
};

/// Thread-safe named-metric registry. GetX() registers on first use and
/// returns the existing instrument on every later call with the same
/// (name, labels); references stay valid for the registry's lifetime.
/// Re-registering a name+labels under a different type is a programming
/// error and returns a detached instrument that is never exported (so the
/// caller's increments are safe no-ops rather than corrupt exposition).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  /// `upper_bounds` is only used on first registration of this series.
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> upper_bounds, const Labels& labels = {});

  /// Copies every registered series, sorted by (name, labels) so families
  /// render contiguously. Weakly consistent (see file comment).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Number of registered series (for tests).
  size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(const std::string& key);

  mutable std::mutex mutex_;
  /// Keyed by name + 0x1f + serialized labels; map nodes give the stable
  /// addresses the returned references rely on.
  std::map<std::string, Entry> entries_;
  /// Parking lot for type-mismatched re-registrations (never exported).
  std::vector<std::unique_ptr<Counter>> orphan_counters_;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_;
  std::vector<std::unique_ptr<Histogram>> orphan_histograms_;
};

/// The process-wide registry every instrumented subsystem reports into.
MetricsRegistry& GlobalMetrics();

/// Exponential latency buckets from 100 µs to 10 s — the default for every
/// *_seconds histogram in the codebase.
const std::vector<double>& DefaultLatencyBuckets();

}  // namespace pprl::obs

#endif  // PPRL_OBS_METRICS_H_
