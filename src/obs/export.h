#ifndef PPRL_OBS_EXPORT_H_
#define PPRL_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pprl::obs {

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# HELP` / `# TYPE` block per metric family,
/// histogram series expanded into `_bucket{le=...}` / `_sum` / `_count`.
/// This is what the daemon's /metrics endpoint serves.
std::string RenderPrometheusText(const std::vector<MetricSnapshot>& snapshot);

/// Renders a snapshot as a JSON document:
///   {"metrics": [{"name": ..., "type": ..., "labels": {...}, "value": N}
///                | {..., "count": N, "sum": S, "buckets": [{"le": B,
///                   "cumulative_count": N}, ...]}]}
/// Used by pprl_cli and the bench harness to dump run metrics to a file.
std::string RenderJson(const std::vector<MetricSnapshot>& snapshot);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string EscapeLabelValue(const std::string& value);

/// If the PPRL_METRICS_JSON environment variable is set, writes the
/// global registry's snapshot as JSON to that path ("-" = stdout) and
/// returns true. The hook every CLI/bench binary calls on exit so any run
/// can be told to leave a machine-readable metrics dump behind.
bool MaybeDumpMetricsJson();

/// Same, to an explicit path (empty = do nothing, "-" = stdout).
bool DumpMetricsJson(const std::string& path);

}  // namespace pprl::obs

#endif  // PPRL_OBS_EXPORT_H_
