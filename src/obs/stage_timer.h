#ifndef PPRL_OBS_STAGE_TIMER_H_
#define PPRL_OBS_STAGE_TIMER_H_

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace pprl::obs {

/// Scoped wall-time span for one pipeline stage. Construction starts the
/// clock; Stop() (or destruction) records the elapsed seconds into the
/// `pprl_stage_seconds{stage="<name>"}` histogram of the registry, so the
/// per-stage latency distribution the survey's velocity axis (Figure 3)
/// asks about accumulates automatically across runs.
///
/// Stop() returns the elapsed seconds so callers that also report wall
/// time through their own result structs (LinkageOutput) record the exact
/// same number they exported.
class StageTimer {
 public:
  explicit StageTimer(const std::string& stage,
                      MetricsRegistry& registry = GlobalMetrics())
      : histogram_(&registry.GetHistogram("pprl_stage_seconds",
                                          "Wall time of one pipeline stage run",
                                          DefaultLatencyBuckets(),
                                          {{"stage", stage}})),
        start_(Clock::now()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() {
    if (!stopped_) Stop();
  }

  /// Records the span once and returns the elapsed seconds; later calls
  /// return the recorded value without observing again.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_ = std::chrono::duration<double>(Clock::now() - start_).count();
      histogram_->Observe(elapsed_);
    }
    return elapsed_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
  bool stopped_ = false;
  double elapsed_ = 0;
};

}  // namespace pprl::obs

#endif  // PPRL_OBS_STAGE_TIMER_H_
