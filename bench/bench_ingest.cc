/// bench_ingest — throughput of the I/O subsystem (io/): streaming CSV
/// ingest and the PCLK binary columnar shard format, against the legacy
/// materializing text paths they replace.
///
/// Two corpora:
///   * an encoded-CLK shard of `rows` random filters, written as both the
///     interchange CSV (id, bits, clk base64) and PCLK — the shard-load
///     benchmark, where the acceptance gate lives (PCLK must load at >= 5x
///     the records/s of the legacy text reader);
///   * a QID CSV of `rows/10` synthetic person records — the encode-path
///     benchmark (whole-file CsvTable -> Database -> per-record filters
///     versus the fused CsvCursor -> ClkEncoder -> BitMatrix pass).
///
/// usage: bench_ingest [rows] [filter_bits] [out.json]
///   defaults: 1000000 rows, 1024 bits, BENCH_ingest.json
///
/// The JSON written to out.json is the committed BENCH_ingest.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/io.h"
#include "encoding/bloom_filter.h"
#include "encoding/clk_io.h"
#include "io/ingest.h"
#include "io/pclk.h"

using namespace pprl;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  std::string config;
  uint64_t records = 0;
  uint64_t bytes = 0;
  double seconds = 0;

  double records_per_sec() const {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0;
  }
  double mb_per_sec() const {
    return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
  }
};

EncodedShard MakeRandomShard(size_t rows, size_t bits) {
  std::mt19937_64 rng(42);
  EncodedShard shard;
  shard.ids.resize(rows);
  shard.bits = BitMatrix(rows, bits);
  for (size_t r = 0; r < rows; ++r) {
    shard.ids[r] = r + 1;
    uint64_t* row = shard.bits.mutable_row(r);
    // ~25% fill, typical of a CLK.
    for (size_t w = 0; w < shard.bits.words_per_row(); ++w) {
      row[w] = rng() & rng();
    }
    const size_t tail = bits % 64;
    if (tail != 0) row[shard.bits.words_per_row() - 1] &= (1ull << tail) - 1;
  }
  shard.bits.RecomputeCounts();
  return shard;
}

std::string MakeQidCsv(size_t rows) {
  std::string csv = "id,first_name,last_name,city\n";
  csv.reserve(rows * 40);
  for (size_t r = 0; r < rows; ++r) {
    csv += std::to_string(r + 1);
    csv += ",name";
    csv += std::to_string(r % 7919);
    csv += ",\"fam, ";
    csv += std::to_string(r % 7919);
    csv += "\",city";
    csv += std::to_string(r % 13);
    csv += "\n";
  }
  return csv;
}

uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<uint64_t>(size) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t rows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                               : 1000000;
  const size_t bits =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 1024;
  const std::string out_json = argc > 3 ? argv[3] : "BENCH_ingest.json";
  const std::string dir = "/tmp";
  const std::string clks_csv = dir + "/pprl_bench_ingest_clks.csv";
  const std::string clks_pclk = dir + "/pprl_bench_ingest_clks.pclk";
  const std::string qid_csv = dir + "/pprl_bench_ingest_qids.csv";

  std::printf("bench_ingest: %zu rows, %zu-bit filters\n", rows, bits);
  std::vector<Measurement> results;

  // ---- shard-load corpus -------------------------------------------------
  {
    const EncodedShard shard = MakeRandomShard(rows, bits);
    const EncodedDatabase encoded = EncodedDatabaseFromShard(shard);
    if (!WriteEncodedDatabase(clks_csv, encoded).ok() ||
        !io::WritePclkFile(clks_pclk, shard).ok()) {
      std::fprintf(stderr, "failed to write corpus files\n");
      return 1;
    }
  }
  std::printf("corpus: %s (%.1f MB), %s (%.1f MB)\n", clks_csv.c_str(),
              FileBytes(clks_csv) / 1e6, clks_pclk.c_str(),
              FileBytes(clks_pclk) / 1e6);

  {
    Measurement m{"load-clks-csv-legacy", rows, FileBytes(clks_csv)};
    const double t0 = Now();
    auto encoded = ReadEncodedDatabase(clks_csv);
    m.seconds = Now() - t0;
    if (!encoded.ok() || encoded->size() != rows) {
      std::fprintf(stderr, "legacy load failed: %s\n",
                   encoded.status().ToString().c_str());
      return 1;
    }
    results.push_back(m);
  }
  {
    Measurement m{"load-clks-csv-stream", rows, FileBytes(clks_csv)};
    const double t0 = Now();
    auto shard = io::ReadCsvShard(clks_csv);
    m.seconds = Now() - t0;
    if (!shard.ok() || shard->size() != rows) {
      std::fprintf(stderr, "streaming CSV load failed: %s\n",
                   shard.status().ToString().c_str());
      return 1;
    }
    results.push_back(m);
  }
  {
    Measurement m{"load-clks-pclk", rows, FileBytes(clks_pclk)};
    const double t0 = Now();
    auto shard = io::ReadPclkFile(clks_pclk);
    m.seconds = Now() - t0;
    if (!shard.ok() || shard->size() != rows) {
      std::fprintf(stderr, "PCLK load failed: %s\n",
                   shard.status().ToString().c_str());
      return 1;
    }
    results.push_back(m);
  }

  // ---- encode-path corpus ------------------------------------------------
  const size_t qid_rows = rows / 10 == 0 ? rows : rows / 10;
  {
    const std::string body = MakeQidCsv(qid_rows);
    std::FILE* f = std::fopen(qid_csv.c_str(), "wb");
    if (f == nullptr) return 1;
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }
  BloomFilterParams params;
  params.num_bits = bits;
  std::vector<ClkFieldConfig> fields;
  for (const char* name : {"first_name", "last_name", "city"}) {
    ClkFieldConfig field;
    field.field_name = name;
    field.num_hashes = 10;
    fields.push_back(field);
  }
  const ClkEncoder encoder(params, fields);

  {
    Measurement m{"encode-qid-csv-legacy", qid_rows, FileBytes(qid_csv)};
    const double t0 = Now();
    auto db = ReadDatabaseCsv(qid_csv);
    if (!db.ok()) return 1;
    auto filters = encoder.EncodeDatabase(*db);
    m.seconds = Now() - t0;
    if (!filters.ok() || filters->size() != qid_rows) return 1;
    results.push_back(m);
  }
  {
    Measurement m{"encode-qid-csv-stream", qid_rows, FileBytes(qid_csv)};
    const double t0 = Now();
    auto shard = io::EncodeCsvToShard(qid_csv, encoder);
    m.seconds = Now() - t0;
    if (!shard.ok() || shard->size() != qid_rows) return 1;
    results.push_back(m);
  }

  // ---- report ------------------------------------------------------------
  bench::PrintHeader({"config", "records", "seconds", "records/s", "MB/s"});
  for (const Measurement& m : results) {
    bench::PrintRow({m.config, bench::Fmt(size_t{m.records}),
                     bench::Fmt(m.seconds, 3),
                     bench::Fmt(m.records_per_sec(), 0),
                     bench::Fmt(m.mb_per_sec(), 1)});
  }
  const double speedup =
      results[0].records_per_sec() > 0
          ? results[2].records_per_sec() / results[0].records_per_sec()
          : 0;
  std::printf("\nPCLK load vs legacy text CSV load: %.1fx records/s "
              "(acceptance gate: >= 5x)\n",
              speedup);

  std::FILE* out = std::fopen(out_json.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_json.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"bench_ingest\",\n  \"rows\": %zu,\n"
               "  \"filter_bits\": %zu,\n  \"measurements\": [\n",
               rows, bits);
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(out,
                 "    {\"config\": \"%s\", \"records\": %llu, "
                 "\"seconds\": %.3f, \"records_per_sec\": %.0f, "
                 "\"mb_per_sec\": %.1f}%s\n",
                 m.config.c_str(), static_cast<unsigned long long>(m.records),
                 m.seconds, m.records_per_sec(), m.mb_per_sec(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"pclk_vs_legacy_csv_speedup\": %.1f\n}\n",
               speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_json.c_str());

  std::remove(clks_csv.c_str());
  std::remove(clks_pclk.c_str());
  std::remove(qid_csv.c_str());
  return speedup >= 5.0 ? 0 : 3;
}
