/// Ablation: record-level encoding choices. DESIGN.md calls out the CLK's
/// implicit field weighting (per-field hash counts) and the RBF's explicit
/// bit sampling [12] as the key design alternatives; this bench measures
/// what each buys on the same workload, plus the cost of the keyed hash
/// scheme that E7 shows is necessary against dictionary attacks.

#include "bench/bench_util.h"
#include "common/timer.h"
#include "encoding/bloom_filter.h"
#include "encoding/rbf.h"
#include "eval/metrics.h"
#include "linkage/classifier.h"
#include "linkage/comparison.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

namespace {

double LinkF1(const std::vector<BitVector>& fa, const std::vector<BitVector>& fb,
              const GroundTruth& truth, double threshold) {
  const ComparisonEngine engine(SimilarityMeasure::kDice);
  auto scored = engine.Compare(fa, fb, FullPairs(fa.size(), fb.size()), threshold);
  auto matches = GreedyOneToOne(ThresholdClassifier(threshold, threshold).SelectMatches(scored));
  return EvaluateMatches(matches, truth).F1();
}

std::vector<RbfFieldConfig> RbfFields(bool weighted) {
  std::vector<RbfFieldConfig> fields;
  for (const char* name : {"first_name", "last_name", "dob", "city"}) {
    RbfFieldConfig field;
    field.field_name = name;
    field.weight = 1.0;
    fields.push_back(field);
  }
  if (weighted) {
    // Names and DOB discriminate more than city.
    fields[0].weight = 2.0;
    fields[1].weight = 2.0;
    fields[2].weight = 2.0;
    fields[3].weight = 0.5;
  }
  return fields;
}

}  // namespace

int main() {
  const size_t n = 400;
  std::printf("# Ablation: record-level encodings (n=%zu per db)\n\n", n);
  std::printf("## (a) linkage quality by encoding and corruption\n\n");
  PrintHeader({"corruption", "CLK weighted", "CLK flat", "RBF weighted", "RBF flat"});
  for (double corruption : {0.5, 1.5, 2.5}) {
    auto [a, b] = TwoDatabases(n, corruption);
    const GroundTruth truth(a, b);
    PipelineConfig config;

    // CLK with the default per-field hash weighting.
    const ClkEncoder clk_weighted(config.bloom, PprlPipeline::DefaultFieldConfigs());
    // CLK with equal hash counts (no weighting).
    auto flat_fields = PprlPipeline::DefaultFieldConfigs();
    for (auto& field : flat_fields) field.num_hashes = 18;
    const ClkEncoder clk_flat(config.bloom, flat_fields);

    auto rbf_weighted = RbfEncoder::Create(RbfParams{}, RbfFields(true));
    auto rbf_flat = RbfEncoder::Create(RbfParams{}, RbfFields(false));

    const double f1_clk_w = LinkF1(clk_weighted.EncodeDatabase(a).value(),
                                   clk_weighted.EncodeDatabase(b).value(), truth, 0.78);
    const double f1_clk_f = LinkF1(clk_flat.EncodeDatabase(a).value(),
                                   clk_flat.EncodeDatabase(b).value(), truth, 0.78);
    const double f1_rbf_w = LinkF1(rbf_weighted->EncodeDatabase(a).value(),
                                   rbf_weighted->EncodeDatabase(b).value(), truth, 0.70);
    const double f1_rbf_f = LinkF1(rbf_flat->EncodeDatabase(a).value(),
                                   rbf_flat->EncodeDatabase(b).value(), truth, 0.70);
    PrintRow({Fmt(corruption, 1), Fmt(f1_clk_w), Fmt(f1_clk_f), Fmt(f1_rbf_w),
              Fmt(f1_rbf_f)});
  }
  std::printf(
      "\nExpected shape: weighting helps both encodings (city noise gets\n"
      "less influence); RBF's explicit sampling tracks the CLK within a\n"
      "few points while giving exact weight control [12].\n\n");

  std::printf("## (b) encoding throughput: unkeyed vs keyed hashing\n\n");
  PrintHeader({"scheme", "records/second"});
  auto [a, b] = TwoDatabases(500, 1.0);
  {
    PipelineConfig config;
    const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
    Timer timer;
    (void)encoder.EncodeDatabase(a);
    PrintRow({"CLK double-hash", Fmt(500.0 / timer.ElapsedSeconds(), 0)});
  }
  {
    PipelineConfig config;
    config.bloom.scheme = BloomHashScheme::kKeyedHmac;
    config.bloom.secret_key = "key";
    const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
    Timer timer;
    (void)encoder.EncodeDatabase(a);
    PrintRow({"CLK keyed HMAC", Fmt(500.0 / timer.ElapsedSeconds(), 0)});
  }
  std::printf(
      "\nExpected shape: the keyed scheme costs one HMAC per (token, hash)\n"
      "pair — an order of magnitude slower, the price of dictionary-attack\n"
      "immunity (E7). Encoding runs once per record, so this is usually\n"
      "acceptable.\n");
  return 0;
}
