/// E15 (survey §5.2/§5.3, Figure 3): the privacy/utility frontier. "The
/// trade-off between quality and privacy needs to be handled carefully for
/// different privacy masking functions" — this bench measures BOTH axes on
/// the same workload for every masking variant: end-to-end linkage F1
/// (utility) and re-identification success of the two attacks (privacy).
///
/// One row per masking function = one point on the frontier.

#include <functional>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "encoding/bloom_filter.h"
#include "encoding/hardening.h"
#include "eval/metrics.h"
#include "linkage/classifier.h"
#include "linkage/comparison.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "privacy/attacks.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

namespace {

using HardenFn = std::function<BitVector(const BitVector&, size_t record_index)>;

struct FrontierPoint {
  std::string name;
  double f1 = 0;
  double dict_attack = 0;
  double pattern_attack = 0;
  double threshold = 0;
};

}  // namespace

int main() {
  const size_t n = 500;
  auto [a, b] = TwoDatabases(n, 1.0);
  const GroundTruth truth(a, b);

  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  const auto raw_fa = encoder.EncodeDatabase(a).value();
  const auto raw_fb = encoder.EncodeDatabase(b).value();

  // Attack side: the attacker sees B's published filters and knows the
  // population's last-name distribution (from A's own records here, playing
  // the public census table).
  std::vector<std::pair<std::string, double>> dictionary;
  {
    std::map<std::string, size_t> counts;
    for (const Record& r : a.records) ++counts[r.values[1]];
    std::vector<std::pair<size_t, std::string>> ranked;
    for (const auto& [name, count] : counts) ranked.push_back({count, name});
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    for (const auto& [count, name] : ranked) {
      dictionary.push_back({name, static_cast<double>(count) / n});
    }
  }
  // Last-name-only filters are what the attack re-identifies (the published
  // CLK mixes fields; attacking the dedicated surname filter isolates the
  // encoding comparison from the multi-field mixing). The attack population
  // is a larger sample from the same name distribution — frequency attacks
  // need enough records for the frequency profile to stabilise.
  BloomFilterParams surname_params;
  surname_params.num_bits = 1000;
  surname_params.num_hashes = 10;
  const BloomFilterEncoder surname_encoder(surname_params);
  std::vector<int> attack_truth;
  std::vector<BitVector> surname_filters_raw;
  {
    // Real surname distributions are strongly skewed; give the attack
    // population the skew a census table would show (and publish matching
    // frequencies to the attacker).
    Rng attack_rng(31);
    const ZipfDistribution surname_zipf(dictionary.size(), 1.2);
    for (size_t d = 0; d < dictionary.size(); ++d) {
      dictionary[d].second = surname_zipf.Pmf(d);
    }
    const size_t attack_population = 3000;
    for (size_t r = 0; r < attack_population; ++r) {
      const size_t idx = surname_zipf.Sample(attack_rng);
      surname_filters_raw.push_back(
          surname_encoder.EncodeString(dictionary[idx].first));
      attack_truth.push_back(static_cast<int>(idx));
    }
  }
  std::vector<std::string> dict_values;
  for (const auto& [v, f] : dictionary) dict_values.push_back(v);

  Rng blip_rng(5);
  const std::vector<std::pair<std::string, HardenFn>> variants = {
      {"plain", [](const BitVector& f, size_t) { return f; }},
      {"balance", [](const BitVector& f, size_t) { return Balance(f, 99); }},
      {"xor-fold", [](const BitVector& f, size_t) { return XorFold(f); }},
      {"blip 0.02",
       [&blip_rng](const BitVector& f, size_t) { return Blip(f, 0.02, blip_rng); }},
      {"blip 0.05",
       [&blip_rng](const BitVector& f, size_t) { return Blip(f, 0.05, blip_rng); }},
      {"blip 0.10",
       [&blip_rng](const BitVector& f, size_t) { return Blip(f, 0.10, blip_rng); }},
      {"blip 0.20",
       [&blip_rng](const BitVector& f, size_t) { return Blip(f, 0.20, blip_rng); }},
  };

  std::printf("# E15: privacy/utility frontier (n=%zu per db, corruption 1.0)\n\n", n);
  PrintHeader({"masking", "linkage F1", "dict-attack", "pattern-attack",
               "threshold used"});
  for (const auto& [name, harden] : variants) {
    // Utility: full linkage on hardened CLKs; pick the variant's best
    // threshold by a small sweep (each masking shifts the score scale).
    std::vector<BitVector> fa, fb;
    for (size_t i = 0; i < raw_fa.size(); ++i) fa.push_back(harden(raw_fa[i], i));
    for (size_t i = 0; i < raw_fb.size(); ++i) fb.push_back(harden(raw_fb[i], i));
    const ComparisonEngine engine(SimilarityMeasure::kDice);
    const auto scored = engine.Compare(fa, fb, FullPairs(n, n), 0.3);
    double best_f1 = 0, best_threshold = 0;
    for (double t = 0.4; t <= 0.95; t += 0.025) {
      const auto matches =
          GreedyOneToOne(ThresholdClassifier(t, t).SelectMatches(scored));
      const double f1 = EvaluateMatches(matches, truth).F1();
      if (f1 > best_f1) {
        best_f1 = f1;
        best_threshold = t;
      }
    }

    // Privacy: both attacks on the hardened surname filters.
    std::vector<BitVector> attacked;
    for (size_t i = 0; i < surname_filters_raw.size(); ++i) {
      attacked.push_back(harden(surname_filters_raw[i], i));
    }
    AttackResult dict_attack =
        BloomDictionaryAttack(attacked, dict_values, surname_encoder);
    const double dict_success = ScoreAttack(dict_attack, attack_truth);
    AttackResult pattern = BloomPatternMiningAttack(attacked, dictionary);
    const double pattern_success = ScoreAttack(pattern, attack_truth);

    PrintRow({name, Fmt(best_f1), Fmt(dict_success), Fmt(pattern_success),
              Fmt(best_threshold, 3)});
  }
  std::printf(
      "\nExpected shape: the frontier. Plain sits at max utility and max\n"
      "vulnerability; structural hardenings kill the dictionary attack for\n"
      "free; increasing BLIP noise walks down both columns — privacy is\n"
      "bought with linkage quality, and the practitioner picks the point\n"
      "(survey Figure 3's quality/privacy tension made quantitative).\n");
  return 0;
}
