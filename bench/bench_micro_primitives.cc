/// Micro-benchmarks (google-benchmark) of the primitives every experiment
/// rests on: hashing, Bloom-filter encoding, bit-vector similarity, LSH key
/// extraction, and the Paillier operations that dominate the cryptographic
/// baseline. These are the per-op costs behind the E3/E4 cost tables.

#include <benchmark/benchmark.h>

#include "common/bitvector.h"
#include "common/random.h"
#include "crypto/hash.h"
#include "crypto/paillier.h"
#include "blocking/lsh_blocking.h"
#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(16)->Arg(256)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  const std::string data(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256("key", data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_Md5(benchmark::State& state) {
  const std::string data(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5(data));
  }
}
BENCHMARK(BM_Md5);

void BM_BloomEncodeString(benchmark::State& state) {
  const BloomFilterEncoder encoder(
      {1000, static_cast<size_t>(state.range(0)), BloomHashScheme::kDoubleHashing, ""});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeString("katherine anderson"));
  }
}
BENCHMARK(BM_BloomEncodeString)->Arg(10)->Arg(30)->Arg(50);

void BM_BloomEncodeKeyed(benchmark::State& state) {
  const BloomFilterEncoder encoder(
      {1000, static_cast<size_t>(state.range(0)), BloomHashScheme::kKeyedHmac, "key"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeString("katherine anderson"));
  }
}
BENCHMARK(BM_BloomEncodeKeyed)->Arg(10)->Arg(30);

BitVector RandomFilter(size_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector bv(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(density)) bv.Set(i);
  }
  return bv;
}

void BM_DiceSimilarity(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const BitVector a = RandomFilter(bits, 0.3, 1);
  const BitVector b = RandomFilter(bits, 0.3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiceSimilarity(a, b));
  }
}
BENCHMARK(BM_DiceSimilarity)->Arg(500)->Arg(1000)->Arg(4000);

void BM_LshKeys(benchmark::State& state) {
  Rng rng(5);
  const HammingLshBlocker blocker(1000, static_cast<size_t>(state.range(0)), 18, rng);
  const BitVector filter = RandomFilter(1000, 0.3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocker.Keys(filter));
  }
}
BENCHMARK(BM_LshKeys)->Arg(10)->Arg(20)->Arg(40);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(7);
  auto paillier = Paillier::Generate(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier->Encrypt(BigInt(12345), rng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(128)->Arg(256)->Arg(512);

void BM_PaillierDecrypt(benchmark::State& state) {
  Rng rng(9);
  auto paillier = Paillier::Generate(rng, static_cast<size_t>(state.range(0)));
  auto ciphertext = paillier->Encrypt(BigInt(12345), rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier->Decrypt(ciphertext));
  }
}
BENCHMARK(BM_PaillierDecrypt)->Arg(128)->Arg(256)->Arg(512);

void BM_PaillierAdd(benchmark::State& state) {
  Rng rng(11);
  auto paillier = Paillier::Generate(rng, 256);
  auto c1 = paillier->Encrypt(BigInt(1), rng).value();
  auto c2 = paillier->Encrypt(BigInt(2), rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier->AddCiphertexts(c1, c2));
  }
}
BENCHMARK(BM_PaillierAdd);

}  // namespace
}  // namespace pprl

BENCHMARK_MAIN();
