/// Ablation: post-classification matching. The survey's "matching"
/// dimension (one-to-one vs many-to-many) interacts with the assignment
/// algorithm; this bench compares none / greedy 1:1 / optimal (Hungarian)
/// 1:1 on quality and runtime, plus clustering choices for the multi-
/// database output.

#include <set>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "linkage/clustering.h"
#include "linkage/comparison.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  std::printf("# Ablation: matching and clustering choices\n\n");
  std::printf("## (a) one-to-one assignment algorithm (threshold 0.72)\n\n");
  PrintHeader({"n", "algorithm", "precision", "recall", "F1", "seconds"});
  for (size_t n : {200, 400}) {
    auto [a, b] = TwoDatabases(n, 1.5);
    const GroundTruth truth(a, b);
    PipelineConfig config;
    const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
    const auto fa = encoder.EncodeDatabase(a).value();
    const auto fb = encoder.EncodeDatabase(b).value();
    const ComparisonEngine engine(SimilarityMeasure::kDice);
    const auto scored = engine.Compare(fa, fb, FullPairs(n, n), 0.72);

    {
      Timer timer;
      const auto counts = EvaluateMatches(scored, truth);
      PrintRow({Fmt(n), "many-to-many", Fmt(counts.Precision()), Fmt(counts.Recall()),
                Fmt(counts.F1()), Fmt(timer.ElapsedSeconds(), 3)});
    }
    {
      Timer timer;
      const auto matches = GreedyOneToOne(scored);
      const double secs = timer.ElapsedSeconds();
      const auto counts = EvaluateMatches(matches, truth);
      PrintRow({Fmt(n), "greedy 1:1", Fmt(counts.Precision()), Fmt(counts.Recall()),
                Fmt(counts.F1()), Fmt(secs, 3)});
    }
    {
      Timer timer;
      const auto matches = HungarianOneToOne(scored);
      const double secs = timer.ElapsedSeconds();
      const auto counts = EvaluateMatches(matches, truth);
      PrintRow({Fmt(n), "hungarian 1:1", Fmt(counts.Precision()), Fmt(counts.Recall()),
                Fmt(counts.F1()), Fmt(secs, 3)});
    }
  }
  std::printf(
      "\nExpected shape: 1:1 constraints lift precision sharply over\n"
      "many-to-many at equal recall. Note the instructive negative result:\n"
      "the score-optimal (Hungarian) assignment is WORSE on F1 than greedy,\n"
      "because maximising total similarity happily adds extra moderate-\n"
      "score pairs that greedy's highest-first policy leaves unmatched —\n"
      "and those extras are mostly false positives. Optimal-for-the-\n"
      "objective is not optimal-for-linkage, at O(n^3) extra cost.\n\n");

  std::printf("## (b) clustering the match graph (3 databases)\n\n");
  GeneratorConfig gc;
  DataGenerator gen(gc);
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 200;
  scenario.num_databases = 3;
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  std::vector<std::vector<BitVector>> filters;
  for (const auto& db : *dbs) filters.push_back(encoder.EncodeDatabase(db).value());

  // Pairwise edges between all database pairs.
  std::vector<MatchEdge> edges;
  const ComparisonEngine engine(SimilarityMeasure::kDice);
  for (uint32_t d1 = 0; d1 < 3; ++d1) {
    for (uint32_t d2 = d1 + 1; d2 < 3; ++d2) {
      const auto scored = engine.Compare(filters[d1], filters[d2],
                                         FullPairs(filters[d1].size(), filters[d2].size()),
                                         0.78);
      for (const auto& s : scored) {
        edges.push_back({{d1, s.a}, {d2, s.b}, s.score});
      }
    }
  }

  auto purity = [&](const std::vector<Cluster>& clusters) {
    size_t pure = 0, total = 0;
    for (const auto& cluster : clusters) {
      if (cluster.size() < 2) continue;
      ++total;
      std::set<uint64_t> entities;
      for (const auto& ref : cluster) {
        entities.insert((*dbs)[ref.database].records[ref.record].entity_id);
      }
      if (entities.size() == 1) ++pure;
    }
    return total == 0 ? 0.0 : static_cast<double>(pure) / static_cast<double>(total);
  };

  PrintHeader({"algorithm", "clusters", "purity of multi-record clusters"});
  const auto components = ConnectedComponents(edges);
  PrintRow({"connected components", Fmt(components.size()), Fmt(purity(components))});
  const auto stars = StarClustering(edges);
  PrintRow({"star clustering", Fmt(stars.size()), Fmt(purity(stars))});
  std::printf(
      "\nExpected shape: star clustering splits the chain-merges connected\n"
      "components commits to, yielding more clusters at comparable purity;\n"
      "the difference grows with dirtier data (more weak bridge edges).\n");
  return 0;
}
