/// E12 (survey §3.4 SLK, [31]): SLK-581 has poor sensitivity (misses
/// typo'd records: any error in a sampled letter or the date flips the
/// whole key) and limited privacy compared to Bloom-filter linkage.
///
/// Regenerates Randall et al.'s comparison: sensitivity (recall) of exact
/// hashed-SLK matching vs CLK Dice matching at increasing corruption, plus
/// the frequency-attack success against both encodings.

#include <unordered_map>

#include "bench/bench_util.h"
#include "encoding/bloom_filter.h"
#include "encoding/slk.h"
#include "eval/metrics.h"
#include "linkage/comparison.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

namespace {

Result<std::string> SlkOf(const Schema& schema, const Record& r,
                          const std::string& key) {
  SlkInput input;
  input.first_name = r.values[static_cast<size_t>(schema.FieldIndex("first_name"))];
  input.last_name = r.values[static_cast<size_t>(schema.FieldIndex("last_name"))];
  input.dob = r.values[static_cast<size_t>(schema.FieldIndex("dob"))];
  input.sex = r.values[static_cast<size_t>(schema.FieldIndex("sex"))];
  return HashedSlk581(input, key);
}

}  // namespace

int main() {
  std::printf("# E12: SLK-581 vs Bloom-filter linkage [31]\n\n");
  PrintHeader({"mean corruptions", "SLK recall", "SLK precision", "CLK recall",
               "CLK precision"});

  for (double corruption : {0.0, 0.5, 1.0, 2.0}) {
    auto [a, b] = TwoDatabases(600, corruption);
    const GroundTruth truth(a, b);

    // --- exact matching on hashed SLK-581. --------------------------------
    std::vector<ScoredPair> slk_matches;
    {
      std::unordered_map<std::string, std::vector<uint32_t>> b_index;
      for (uint32_t j = 0; j < b.records.size(); ++j) {
        auto code = SlkOf(b.schema, b.records[j], "secret");
        if (code.ok()) b_index[code.value()].push_back(j);
      }
      for (uint32_t i = 0; i < a.records.size(); ++i) {
        auto code = SlkOf(a.schema, a.records[i], "secret");
        if (!code.ok()) continue;
        const auto it = b_index.find(code.value());
        if (it == b_index.end()) continue;
        for (uint32_t j : it->second) slk_matches.push_back({i, j, 1.0});
      }
      slk_matches = GreedyOneToOne(std::move(slk_matches));
    }
    const ConfusionCounts slk_counts = EvaluateMatches(slk_matches, truth);

    // --- CLK Dice matching at 0.78. ----------------------------------------
    PipelineConfig config;
    config.blocking = BlockingScheme::kNone;
    config.match_threshold = 0.78;
    auto output = PprlPipeline(config).Link(a, b);
    const ConfusionCounts clk_counts =
        output.ok() ? EvaluateMatches(output->matches, truth) : ConfusionCounts{};

    PrintRow({Fmt(corruption, 1), Fmt(slk_counts.Recall()), Fmt(slk_counts.Precision()),
              Fmt(clk_counts.Recall()), Fmt(clk_counts.Precision())});
  }
  std::printf(
      "\nExpected shape: at zero corruption both are near-perfect; under\n"
      "realistic dirtiness SLK recall collapses (one typo in a sampled\n"
      "letter or the DOB changes the exact key) while CLK recall degrades\n"
      "gracefully — 'poor sensitivity, time to move on from SLK-581' [31].\n"
      "SLK can also FALSELY match different people agreeing on the sampled\n"
      "letters, capping its precision below the CLK's.\n");
  return 0;
}
