/// E14 (survey §3.4 blocking, [18]): the LSH-blocking + homomorphic-
/// matching combination of Karapiperis & Verykios — candidates are found
/// with Hamming-LSH over the Bloom filters and the surviving pairs are
/// matched by *secure* Hamming distance on Paillier ciphertexts, so the
/// matcher never sees either party's filter.
///
/// Regenerates the protocol's cost/quality profile against the plain
/// "reveal filters to an LU" baseline, showing exactly what the extra
/// cryptography costs and that it changes no decisions.

#include "bench/bench_util.h"
#include "blocking/lsh_blocking.h"
#include "common/timer.h"
#include "crypto/secure_vector.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  // Small n: each secure comparison costs hundreds of Paillier ops. The
  // shared key pair is generated once (in [18] the LU holds it).
  const size_t n = 60;
  auto [a, b] = TwoDatabases(n, 1.0);
  const GroundTruth truth(a, b);
  PipelineConfig config;
  config.bloom.num_bits = 500;  // keep ciphertext volume manageable
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  const auto fa = encoder.EncodeDatabase(a).value();
  const auto fb = encoder.EncodeDatabase(b).value();

  // LSH blocking (both variants share it).
  Rng rng(3);
  const HammingLshBlocker blocker(config.bloom.num_bits, 10, 25, rng);
  const auto candidates =
      HammingLshBlocker::CandidatePairs(blocker.BuildIndex(fa), blocker.BuildIndex(fb));

  std::printf("# E14: HLSH blocking + homomorphic matching [18] (n=%zu, %zu candidates)\n\n",
              n, candidates.size());

  // --- Baseline: LU sees the filters and computes Hamming directly. -------
  Timer plain_timer;
  std::vector<ScoredPair> plain_scored;
  const double max_distance = 0.16 * static_cast<double>(config.bloom.num_bits);
  for (const CandidatePair& pair : candidates) {
    const double d = static_cast<double>(fa[pair.a].XorCount(fb[pair.b]));
    if (d <= max_distance) {
      plain_scored.push_back({pair.a, pair.b, 1.0 - d / config.bloom.num_bits});
    }
  }
  const double plain_seconds = plain_timer.ElapsedSeconds();

  // --- Homomorphic: same decisions, filters never revealed. ---------------
  // One Paillier key pair; Alice encrypts each of her candidate filters
  // once, Bob folds homomorphically per pair.
  Timer secure_timer;
  auto paillier = Paillier::Generate(rng, 128);
  std::vector<ScoredPair> secure_scored;
  size_t encryptions = 0, homomorphic_ops = 0;
  std::vector<int> encrypted_index(fa.size(), -1);
  std::vector<EncryptedBitVector> encrypted;
  for (const CandidatePair& pair : candidates) {
    if (encrypted_index[pair.a] < 0) {
      auto enc = EncryptBitVector(*paillier, fa[pair.a], rng);
      if (!enc.ok()) continue;
      encrypted_index[pair.a] = static_cast<int>(encrypted.size());
      encrypted.push_back(std::move(enc).value());
      encryptions += config.bloom.num_bits;
    }
    const auto& ex = encrypted[static_cast<size_t>(encrypted_index[pair.a])];
    const PaillierCiphertext d_cipher =
        HomomorphicHammingDistance(*paillier, ex, fb[pair.b]);
    homomorphic_ops += config.bloom.num_bits + fb[pair.b].Count();
    auto d_plain = paillier->Decrypt(d_cipher);
    if (!d_plain.ok()) continue;
    const double d = static_cast<double>(d_plain.value().ToInt64());
    if (d <= max_distance) {
      secure_scored.push_back({pair.a, pair.b, 1.0 - d / config.bloom.num_bits});
    }
  }
  const double secure_seconds = secure_timer.ElapsedSeconds();

  // --- Compare. -------------------------------------------------------------
  const auto plain_matches = GreedyOneToOne(plain_scored);
  const auto secure_matches = GreedyOneToOne(secure_scored);
  PrintHeader({"variant", "accepted pairs", "F1", "seconds", "crypto ops"});
  PrintRow({"LU sees filters", Fmt(plain_scored.size()),
            Fmt(EvaluateMatches(plain_matches, truth).F1()), Fmt(plain_seconds, 3), "0"});
  PrintRow({"homomorphic", Fmt(secure_scored.size()),
            Fmt(EvaluateMatches(secure_matches, truth).F1()), Fmt(secure_seconds, 1),
            Fmt(encryptions + homomorphic_ops)});
  const bool identical = plain_scored.size() == secure_scored.size();
  std::printf(
      "\ndecisions identical: %s\n"
      "Expected shape: the homomorphic variant accepts exactly the same\n"
      "pairs (Hamming distances are computed exactly) while costing several\n"
      "orders of magnitude more time — the privacy premium of removing the\n"
      "trusted-LU assumption, already amortised by LSH having cut the\n"
      "candidate count [18].\n",
      identical ? "yes" : "NO");
  return 0;
}
