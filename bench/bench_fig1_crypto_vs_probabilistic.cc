/// E3 (survey Figure 1, "privacy technologies"; §3.4): the cryptographic
/// branch (secure edit distance on Paillier, PSI on SRA) is accurate but
/// orders of magnitude more expensive than the probabilistic branch
/// (Bloom-filter Dice).
///
/// Regenerates the comparison as per-pair cost and accuracy tables.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "crypto/secure_edit_distance.h"
#include "crypto/sra.h"
#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"katherine", "catherine"}, {"smith", "smyth"},     {"jonathan", "jonathon"},
      {"garcia", "garcia"},       {"peter", "wilson"},
  };

  std::printf("# E3 / Figure 1: cryptographic vs probabilistic matching\n\n");
  std::printf("## (a) per-pair cost and agreement with plain edit distance\n\n");
  PrintHeader({"pair", "plain ed", "secure ed", "secure ms/pair", "bf dice",
               "bf us/pair"});
  Rng rng(5);
  const BloomFilterEncoder encoder({1000, 30, BloomHashScheme::kDoubleHashing, ""});
  double total_secure_ms = 0, total_bf_us = 0;
  for (const auto& [a, b] : pairs) {
    Timer secure_timer;
    auto secure = SecureEditDistance(a, b, rng, 256);
    const double secure_ms = secure_timer.ElapsedMillis();
    total_secure_ms += secure_ms;

    const BitVector fa = encoder.EncodeString(a);
    const BitVector fb = encoder.EncodeString(b);
    Timer bf_timer;
    double dice = 0;
    constexpr int kReps = 1000;
    for (int i = 0; i < kReps; ++i) dice = DiceSimilarity(fa, fb);
    const double bf_us = bf_timer.ElapsedMillis() * 1000.0 / kReps;
    total_bf_us += bf_us;

    PrintRow({a + " / " + b, Fmt(PlainEditDistance(a, b)),
              Fmt(secure.ok() ? secure->distance : size_t(0)), Fmt(secure_ms, 1),
              Fmt(dice), Fmt(bf_us, 2)});
  }
  const double slowdown = (total_secure_ms * 1000.0) / total_bf_us;
  std::printf("\nsecure-edit-distance vs Bloom Dice slowdown: %.0fx per pair\n",
              slowdown);
  std::printf("[paper: SMC 'provably secure and highly accurate, however\n"
              " computationally expensive' — expect >= 10^3x]\n\n");

  std::printf("## (b) protocol cost breakdown of one secure edit distance\n\n");
  auto metered = SecureEditDistance("elizabeth", "elisabeth", rng, 256);
  if (metered.ok()) {
    PrintHeader({"metric", "value"});
    PrintRow({"paillier encryptions", Fmt(metered->encryptions)});
    PrintRow({"paillier decryptions", Fmt(metered->decryptions)});
    PrintRow({"messages", Fmt(metered->messages)});
    PrintRow({"bytes", Fmt(metered->bytes)});
  }

  std::printf("\n## (c) exact PSI (SRA commutative) throughput vs set size\n\n");
  PrintHeader({"set size", "seconds", "KiB on wire", "hits"});
  const SraDomain domain = SraDomain::Generate(rng, 128);
  for (size_t n : {50, 100, 200, 400}) {
    std::vector<std::string> a_vals, b_vals;
    for (size_t i = 0; i < n; ++i) {
      a_vals.push_back("person" + std::to_string(i));
      b_vals.push_back("person" + std::to_string(i + n / 2));  // 50% overlap
    }
    size_t bytes = 0;
    Timer timer;
    const auto hits = SraPrivateSetIntersection(a_vals, b_vals, domain, rng, &bytes);
    PrintRow({Fmt(n), Fmt(timer.ElapsedSeconds(), 2),
              Fmt(static_cast<double>(bytes) / 1024.0, 1), Fmt(hits.size())});
  }
  std::printf("\nExpected shape: PSI scales linearly but each element costs big-int\n"
              "exponentiations; Bloom-filter comparison costs nanoseconds.\n");
  return 0;
}
