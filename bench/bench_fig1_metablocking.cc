/// E5 (survey Figure 1, "meta-blocking" [16, 28]): restructuring a block
/// collection prunes comparisons beyond what blocking alone achieves.
///
/// Regenerates the claim on multi-key blocking (soundex + postcode + LSH
/// keys): purging, filtering, and common-block pruning each trade a little
/// completeness for large candidate reductions; block scheduling orders
/// work cheapest-first.

#include <set>
#include <utility>

#include "bench/bench_util.h"
#include "blocking/blocking.h"
#include "blocking/lsh_blocking.h"
#include "blocking/metablocking.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

using namespace pprl;
using namespace pprl::bench;

namespace {

/// Multi-key blocking: soundex of names plus exact postcode, giving records
/// several blocks each (the precondition for meta-blocking to matter).
BlockingKeyFunction MultiKey() {
  const auto soundex = SoundexNameKey("k");
  const auto postcode = ExactAttributeKey("postcode", "k");
  return [soundex, postcode](const Schema& schema, const Record& r) {
    auto keys = soundex(schema, r);
    for (auto& k : postcode(schema, r)) keys.push_back(std::move(k));
    return keys;
  };
}

}  // namespace

int main() {
  const size_t n = 2000;
  auto [a, b] = TwoDatabases(n, 1.0);
  const GroundTruth truth(a, b);
  const StandardBlocker blocker(MultiKey());

  std::printf("# E5 / Figure 1: meta-blocking on multi-key blocks (n=%zu)\n\n", n);
  PrintHeader({"variant", "candidates", "reduction", "pairs-compl.", "pairs-quality"});

  auto report = [&](const char* name, const std::vector<CandidatePair>& candidates) {
    const auto q = EvaluateBlocking(candidates, truth, n, n);
    PrintRow({name, Fmt(candidates.size()), Fmt(q.reduction_ratio),
              Fmt(q.pairs_completeness), Fmt(q.pairs_quality, 4)});
  };

  // Baseline: raw multi-key blocking.
  BlockIndex ia = blocker.BuildIndex(a);
  BlockIndex ib = blocker.BuildIndex(b);
  report("multi-key blocking", StandardBlocker::CandidatePairs(ia, ib));

  // Block purging at several limits.
  for (size_t limit : {10000, 2500, 500}) {
    BlockIndex pa = ia, pb = ib;
    PurgeBlocks(pa, pb, limit);
    report(("+ purge@" + std::to_string(limit)).c_str(),
           StandardBlocker::CandidatePairs(pa, pb));
  }

  // Block filtering: keep each record's smaller blocks only.
  for (double keep : {0.8, 0.5}) {
    BlockIndex fa = ia, fb = ib;
    FilterBlocks(fa, keep);
    FilterBlocks(fb, keep);
    report(("+ filter keep=" + Fmt(keep, 1)).c_str(),
           StandardBlocker::CandidatePairs(fa, fb));
  }

  // Common-block pruning (needs >= 2 shared blocks).
  report("+ prune common>=2", PruneByCommonBlocks(ia, ib, 2));

  // Scheduling: cumulative completeness if processing stops early.
  std::printf("\n## block scheduling: completeness vs comparison budget [28]\n\n");
  const auto schedule = ScheduleBlocks(ia, ib);
  PrintHeader({"% of comparisons spent", "pairs-completeness reached"});
  size_t total_comparisons = 0;
  for (const auto& entry : schedule) total_comparisons += entry.comparisons;
  size_t spent = 0;
  std::set<std::pair<uint32_t, uint32_t>> found;
  const double checkpoints[] = {0.1, 0.25, 0.5, 0.75, 1.0};
  size_t ci = 0;
  for (const auto& entry : schedule) {
    spent += entry.comparisons;
    const auto& a_records = ia[entry.key];
    const auto& b_records = ib[entry.key];
    for (uint32_t ra : a_records) {
      for (uint32_t rb : b_records) {
        if (truth.IsMatch(ra, rb)) found.insert({ra, rb});
      }
    }
    while (ci < 5 && static_cast<double>(spent) >=
                         checkpoints[ci] * static_cast<double>(total_comparisons)) {
      PrintRow({Fmt(checkpoints[ci] * 100, 0),
                Fmt(static_cast<double>(found.size()) /
                    static_cast<double>(truth.num_matches()))});
      ++ci;
    }
  }
  std::printf(
      "\nExpected shape: small (cheap, precise) blocks already recover most\n"
      "matches, so an early-stopping scheduler spends a fraction of the\n"
      "comparison budget for most of the completeness [28].\n");
  return 0;
}
