// The durability layer's cost model, measured at the engine boundary so
// the numbers isolate WAL + checkpoint work from socket framing:
//
//   1. baseline      — plain OnlineLinkageEngine::Append, no durability
//   2. wal append    — the same ingest through OnlineDurability (journal,
//                      fsync group-commit, then apply); the acceptance bar
//                      from the durability issue is within 2x of baseline
//   3. wal replay    — cold-start recovery from segments alone
//   4. checkpoint    — snapshot write (seconds + bytes on disk)
//   5. checkpoint load — cold-start recovery from the snapshot, which is
//                      what bounds restart latency once checkpoints exist
//
// BENCH_recovery.json is the committed baseline. Recovery rates are also
// normalized to seconds-per-million-records so runs of different sizes
// stay comparable.
//
// usage: bench_recovery [out.json [num_records]]

#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "encoding/clk_io.h"
#include "linkage/online_linkage.h"
#include "service/durability.h"

namespace pprl::bench {
namespace {

constexpr size_t kFilterBits = 512;
constexpr size_t kDefaultRecords = 200000;
constexpr size_t kAppendBatch = 4096;

/// ~30%-density CLKs with near-duplicate structure: every third record
/// perturbs an earlier base entity, so appends pay for realistic LSH
/// candidate generation and edge acceptance, not just index insertion.
EncodedDatabase MakeRecords(size_t n, uint64_t seed) {
  Rng rng(seed);
  EncodedDatabase db;
  db.ids.reserve(n);
  db.filters.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    db.ids.push_back(r + 1);
    if (r % 3 == 2) {
      BitVector near = db.filters[rng.NextUint64(r)];
      for (int flip = 0; flip < 3; ++flip) near.Flip(rng.NextUint64(kFilterBits));
      db.filters.push_back(std::move(near));
    } else {
      BitVector bv(kFilterBits);
      for (size_t i = 0; i < kFilterBits; ++i) {
        if (rng.NextBool(0.3)) bv.Set(i);
      }
      db.filters.push_back(std::move(bv));
    }
  }
  return db;
}

std::string FreshDir(const char* name) {
  const std::string dir = std::string("/tmp/") + name;
  ::mkdir(dir.c_str(), 0755);
  auto segments = io::ListWalSegments(dir);
  if (segments.ok()) {
    for (const auto& [seq, path] : *segments) std::remove(path.c_str());
  }
  auto checkpoints = io::ListCheckpoints(dir);
  if (checkpoints.ok()) {
    for (const auto& [seq, path] : *checkpoints) std::remove(path.c_str());
  }
  return dir;
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  auto segments = io::ListWalSegments(dir);
  if (segments.ok()) {
    for (const auto& [seq, path] : *segments) {
      struct stat st;
      if (::stat(path.c_str(), &st) == 0) total += static_cast<uint64_t>(st.st_size);
    }
  }
  auto checkpoints = io::ListCheckpoints(dir);
  if (checkpoints.ok()) {
    for (const auto& [seq, path] : *checkpoints) {
      struct stat st;
      if (::stat(path.c_str(), &st) == 0) total += static_cast<uint64_t>(st.st_size);
    }
  }
  return total;
}

int Main(int argc, char** argv) {
  const size_t records =
      argc > 2 ? static_cast<size_t>(std::stoull(argv[2])) : kDefaultRecords;
  const double millions = static_cast<double>(records) / 1e6;

  std::printf("durability cost model: %zu records x %zu bits\n\n", records,
              kFilterBits);
  const EncodedDatabase db = MakeRecords(records, /*seed=*/42);

  // --- 1. Baseline: the engine alone, no journal in the path.
  double base_rps = 0;
  {
    OnlineLinkageEngine engine(kFilterBits);
    const uint32_t d = engine.RegisterDatabase("warehouse");
    Timer t;
    for (size_t r = 0; r < records; ++r) {
      auto row = engine.Append(d, db.ids[r], db.filters[r]);
      if (!row.ok()) {
        std::fprintf(stderr, "append failed: %s\n", row.status().ToString().c_str());
        return 1;
      }
    }
    base_rps = static_cast<double>(records) / t.ElapsedSeconds();
    std::printf("baseline append: %.0f records/s (%zu edges)\n", base_rps,
                engine.edges());
  }

  // --- 2. Durable ingest: journal + group-commit fsync + apply.
  const std::string dir = FreshDir("pprl_bench_recovery");
  DurabilityConfig config;
  config.wal_dir = dir;
  config.checkpoint_every_n = 0;  // the bench times the checkpoint itself
  double wal_rps = 0;
  auto engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
  OnlineDurability durability(config);
  {
    uint32_t d = 0;
    Timer t;
    for (size_t row = 0; row < records; row += kAppendBatch) {
      const size_t end = std::min(records, row + kAppendBatch);
      auto cursor = durability.DurableAppend(*engine, "warehouse", db, row, end, &d);
      if (!cursor.ok()) {
        std::fprintf(stderr, "durable append failed: %s\n",
                     cursor.status().ToString().c_str());
        return 1;
      }
    }
    wal_rps = static_cast<double>(records) / t.ElapsedSeconds();
  }
  const uint64_t wal_bytes = DirBytes(dir);
  const double overhead = base_rps / wal_rps;
  std::printf("durable append:  %.0f records/s with --wal-sync-ms %d "
              "(%.2fx baseline cost, %.1f WAL bytes/record)\n",
              wal_rps, config.wal_sync_ms, overhead,
              static_cast<double>(wal_bytes) / static_cast<double>(records));

  // --- 3. Cold start from WAL segments alone (worst-case restart).
  double replay_seconds = 0;
  {
    OnlineDurability cold(config);
    std::unique_ptr<OnlineLinkageEngine> recovered;
    RecoveryReport report;
    auto status = cold.Recover(&recovered, &report);
    if (!status.ok() || recovered == nullptr || recovered->size() != records) {
      std::fprintf(stderr, "WAL replay recovery failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    replay_seconds = report.seconds;
    std::printf("wal replay:      %.3f s for %llu records (%.1f s/million)\n",
                replay_seconds,
                static_cast<unsigned long long>(report.replayed_records),
                replay_seconds / millions);
  }

  // --- 4. Checkpoint write (snapshot + fsync + atomic rename).
  Timer checkpoint_timer;
  auto checkpointed = durability.Checkpoint(*engine);
  const double checkpoint_seconds = checkpoint_timer.ElapsedSeconds();
  if (!checkpointed.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", checkpointed.ToString().c_str());
    return 1;
  }
  const uint64_t checkpoint_bytes = DirBytes(dir);  // WAL was truncated
  std::printf("checkpoint:      %.3f s, %.1f MiB (%.1f bytes/record)\n",
              checkpoint_seconds,
              static_cast<double>(checkpoint_bytes) / (1024.0 * 1024.0),
              static_cast<double>(checkpoint_bytes) / static_cast<double>(records));

  // --- 5. Cold start from the checkpoint (the steady-state restart path).
  double load_seconds = 0;
  {
    OnlineDurability cold(config);
    std::unique_ptr<OnlineLinkageEngine> recovered;
    RecoveryReport report;
    auto status = cold.Recover(&recovered, &report);
    if (!status.ok() || !report.checkpoint_loaded || recovered == nullptr ||
        recovered->size() != records) {
      std::fprintf(stderr, "checkpoint recovery failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    load_seconds = report.seconds;
    std::printf("checkpoint load: %.3f s (%.1f s/million)\n\n", load_seconds,
                load_seconds / millions);
  }

  PrintHeader({"metric", "value"});
  PrintRow({"base_append_records_per_sec", Fmt(base_rps, 0)});
  PrintRow({"wal_append_records_per_sec", Fmt(wal_rps, 0)});
  PrintRow({"wal_overhead_ratio", Fmt(overhead, 2)});
  PrintRow({"wal_replay_seconds_per_million", Fmt(replay_seconds / millions, 2)});
  PrintRow({"checkpoint_seconds", Fmt(checkpoint_seconds, 3)});
  PrintRow({"checkpoint_load_seconds_per_million", Fmt(load_seconds / millions, 2)});
  std::printf("\nacceptance: WAL overhead %.2fx (bar: within 2x of baseline)\n",
              overhead);

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_recovery\",\n");
    std::fprintf(f, "  \"records\": %zu,\n  \"filter_bits\": %zu,\n", records,
                 kFilterBits);
    std::fprintf(f, "  \"wal_sync_ms\": %d,\n", config.wal_sync_ms);
    std::fprintf(f, "  \"base_append_records_per_sec\": %.0f,\n", base_rps);
    std::fprintf(f, "  \"wal_append_records_per_sec\": %.0f,\n", wal_rps);
    std::fprintf(f, "  \"wal_overhead_ratio\": %.2f,\n", overhead);
    std::fprintf(f, "  \"wal_bytes_per_record\": %.1f,\n",
                 static_cast<double>(wal_bytes) / static_cast<double>(records));
    std::fprintf(f, "  \"wal_replay_seconds\": %.3f,\n", replay_seconds);
    std::fprintf(f, "  \"wal_replay_seconds_per_million\": %.2f,\n",
                 replay_seconds / millions);
    std::fprintf(f, "  \"checkpoint_seconds\": %.3f,\n", checkpoint_seconds);
    std::fprintf(f, "  \"checkpoint_bytes\": %llu,\n",
                 static_cast<unsigned long long>(checkpoint_bytes));
    std::fprintf(f, "  \"checkpoint_load_seconds\": %.3f,\n", load_seconds);
    std::fprintf(f, "  \"checkpoint_load_seconds_per_million\": %.2f\n",
                 load_seconds / millions);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", argv[1]);
  }

  DumpMetricsIfRequested();
  return 0;
}

}  // namespace
}  // namespace pprl::bench

int main(int argc, char** argv) { return pprl::bench::Main(argc, argv); }
