/// E13 (survey §3.1 two-party protocols, [38]): the iterative two-party
/// protocol classifies most pairs after revealing only a fraction of the
/// Bloom filters, trading rounds for disclosure — the middle ground between
/// "ship everything to an LU" and full SMC.
///
/// Regenerates the disclosure/quality table vs threshold and round count,
/// with the LU model (100% of encodings disclosed to a third party) as the
/// reference line.

#include "bench/bench_util.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "linkage/matching.h"
#include "linkage/two_party_iterative.h"
#include "pipeline/pipeline.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  const size_t n = 400;
  auto [a, b] = TwoDatabases(n, 1.0);
  const GroundTruth truth(a, b);
  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  const auto fa = encoder.EncodeDatabase(a).value();
  const auto fb = encoder.EncodeDatabase(b).value();
  const auto candidates = FullPairs(n, n);

  std::printf("# E13: iterative two-party protocol [38] (n=%zu, all pairs)\n\n", n);
  std::printf("## (a) disclosure vs round granularity (threshold 0.8)\n\n");
  PrintHeader({"rounds", "mean fraction revealed", "KiB exchanged", "F1"});
  for (size_t rounds : {2, 5, 10, 20, 50}) {
    IterativeProtocolParams params;
    params.dice_threshold = 0.8;
    params.num_rounds = rounds;
    auto result = IterativeTwoPartyLink(fa, fb, candidates, params);
    if (!result.ok()) continue;
    const double f1 =
        EvaluateMatches(GreedyOneToOne(result->matches), truth).F1();
    PrintRow({Fmt(rounds), Fmt(result->mean_revealed_fraction),
              Fmt(static_cast<double>(result->bytes) / 1024.0, 1), Fmt(f1)});
  }
  std::printf(
      "\nExpected shape: more (smaller) rounds let obvious non-matches be\n"
      "dropped after a sliver of the filter, pushing mean disclosure down\n"
      "at identical quality (decisions are exact-bound based). The LU\n"
      "baseline would sit at disclosure 1.0 toward a third party.\n\n");

  std::printf("## (b) disclosure vs match threshold (20 rounds)\n\n");
  PrintHeader({"dice threshold", "mean fraction revealed", "matches", "F1"});
  for (double threshold : {0.7, 0.75, 0.8, 0.85, 0.9}) {
    IterativeProtocolParams params;
    params.dice_threshold = threshold;
    params.num_rounds = 20;
    auto result = IterativeTwoPartyLink(fa, fb, candidates, params);
    if (!result.ok()) continue;
    const double f1 =
        EvaluateMatches(GreedyOneToOne(result->matches), truth).F1();
    PrintRow({Fmt(threshold, 2), Fmt(result->mean_revealed_fraction),
              Fmt(result->matches.size()), Fmt(f1)});
  }
  std::printf(
      "\nExpected shape: higher thresholds reject typical pairs earlier\n"
      "(their optimistic bound dips under the threshold sooner), so mean\n"
      "disclosure falls as the threshold rises.\n");
  return 0;
}
