/// E1 (survey Figure 2, left): Bloom-filter encoding of string QIDs
/// preserves q-gram Dice similarity.
///
/// Regenerates the figure's claim as two tables:
///   (a) encoded vs. raw Dice for name pairs across similarity levels, with
///       the Pearson correlation of the two series;
///   (b) the collision bias |encoded - raw| as a function of filter length
///       l and hash count k (the parameter trade-off practitioners tune).

#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "datagen/corruptor.h"
#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  // A spread of name pairs from identical to unrelated, plus generated
  // typo variants for the middle of the range.
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"katherine", "katherine"}, {"katherine", "catherine"},
      {"jonathan", "jonathon"},   {"smith", "smyth"},
      {"garcia", "garzia"},       {"elizabeth", "elisabet"},
      {"peter", "pedro"},         {"anderson", "andresen"},
      {"williams", "willems"},    {"smith", "jones"},
      {"katherine", "zhao"},      {"brown", "nguyen"},
  };
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const std::string base = std::string("surname") + static_cast<char>('a' + i);
    pairs.push_back({base, corruption::KeyboardTypo(base, rng)});
  }

  std::printf("# E1 / Figure 2 (left): string Bloom-filter similarity preservation\n\n");
  std::printf("## (a) encoded vs raw Dice (l=1000, k=30, q=2)\n\n");
  const BloomFilterEncoder encoder({1000, 30, BloomHashScheme::kDoubleHashing, ""});
  PrintHeader({"pair", "raw q-gram dice", "encoded dice", "abs error"});
  std::vector<double> raw_series, encoded_series;
  for (const auto& [a, b] : pairs) {
    const double raw = QGramDiceSimilarity(a, b);
    const double enc =
        DiceSimilarity(encoder.EncodeString(a), encoder.EncodeString(b));
    raw_series.push_back(raw);
    encoded_series.push_back(enc);
    PrintRow({a + " / " + b, Fmt(raw), Fmt(enc), Fmt(std::abs(raw - enc))});
  }
  std::printf("\nPearson correlation (raw, encoded) = %.4f  [paper: near-perfect]\n\n",
              PearsonCorrelation(raw_series, encoded_series));

  std::printf("## (b) mean collision bias vs filter length and hash count\n\n");
  PrintHeader({"l", "k", "mean |encoded - raw|", "mean fill fraction"});
  for (size_t l : {250, 500, 1000, 2000, 4000}) {
    for (size_t k : {10, 30, 50}) {
      const BloomFilterEncoder e({l, k, BloomHashScheme::kDoubleHashing, ""});
      RunningStats bias, fill;
      for (const auto& [a, b] : pairs) {
        const BitVector fa = e.EncodeString(a);
        const BitVector fb = e.EncodeString(b);
        bias.Add(std::abs(QGramDiceSimilarity(a, b) - DiceSimilarity(fa, fb)));
        fill.Add(static_cast<double>(fa.Count()) / static_cast<double>(l));
      }
      PrintRow({Fmt(l), Fmt(k), Fmt(bias.mean(), 4), Fmt(fill.mean(), 3)});
    }
  }
  std::printf(
      "\nExpected shape: bias shrinks as l grows and explodes when k*grams\n"
      "approaches l (saturated filters) — the standard l/k trade-off.\n");
  return 0;
}
