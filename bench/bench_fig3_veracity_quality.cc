/// E8 (survey Figure 3, "veracity"; §5.2 + [30]): linkage quality under
/// increasing data dirtiness, for each classifier, with the unencoded
/// baseline alongside — reproducing Randall et al.'s finding that
/// probabilistic encodings achieve quality comparable to unencoded linkage.

#include "bench/bench_util.h"
#include "datagen/corruptor.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "linkage/classifier.h"
#include "linkage/comparison.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

namespace {

/// Unencoded baseline: q-gram Dice on raw concatenated QIDs with the same
/// threshold + 1:1 matching.
double UnencodedF1(const Database& a, const Database& b, const GroundTruth& truth,
                   double threshold) {
  auto key = [](const Record& r) {
    return NormalizeQid(r.values[0] + " " + r.values[1] + " " + r.values[3] + " " +
                        r.values[4]);
  };
  std::vector<ScoredPair> scored;
  for (uint32_t i = 0; i < a.records.size(); ++i) {
    for (uint32_t j = 0; j < b.records.size(); ++j) {
      const double sim = QGramDiceSimilarity(key(a.records[i]), key(b.records[j]));
      if (sim >= threshold) scored.push_back({i, j, sim});
    }
  }
  return EvaluateMatches(GreedyOneToOne(std::move(scored)), truth).F1();
}

}  // namespace

int main() {
  const size_t n = 500;
  std::printf("# E8 / Figure 3 (veracity): linkage quality vs corruption\n\n");
  PrintHeader({"mean corruptions", "unencoded dice F1", "CLK threshold F1",
               "CLK fellegi-sunter F1"});

  for (double corruption : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    auto [a, b] = TwoDatabases(n, corruption);
    const GroundTruth truth(a, b);

    // Unencoded baseline.
    const double raw_f1 = UnencodedF1(a, b, truth, 0.75);

    // CLK + threshold pipeline.
    PipelineConfig config;
    config.blocking = BlockingScheme::kNone;
    config.match_threshold = 0.78;
    auto output = PprlPipeline(config).Link(a, b);
    const double clk_f1 =
        output.ok() ? EvaluateMatches(output->matches, truth).F1() : 0.0;

    // Field-level Bloom filters + Fellegi-Sunter EM.
    BloomFilterParams field_params;
    field_params.num_bits = 500;
    field_params.num_hashes = 15;
    const BloomFilterEncoder encoder(field_params);
    const std::vector<std::string> fields = {"first_name", "last_name", "dob", "city"};
    std::vector<std::vector<BitVector>> fa(fields.size()), fb(fields.size());
    for (size_t f = 0; f < fields.size(); ++f) {
      const int idx = a.schema.FieldIndex(fields[f]);
      for (const Record& r : a.records) {
        fa[f].push_back(encoder.EncodeString(r.values[static_cast<size_t>(idx)]));
      }
      for (const Record& r : b.records) {
        fb[f].push_back(encoder.EncodeString(r.values[static_cast<size_t>(idx)]));
      }
    }
    const auto pairs = CompareFieldwise(fa, fb, FullPairs(a.size(), b.size()),
                                        SimilarityMeasure::kDice);
    FellegiSunterClassifier::Params fs_params;
    fs_params.agreement_threshold = 0.65;
    fs_params.initial_prevalence = 0.01;
    FellegiSunterClassifier fs(fs_params);
    double fs_f1 = 0;
    if (fs.Fit(pairs).ok()) {
      std::vector<ScoredPair> fs_scored;
      for (const auto& p : fs.SelectMatches(pairs, 0.0)) {
        fs_scored.push_back({p.a, p.b, fs.Weight(p.field_scores)});
      }
      fs_f1 = EvaluateMatches(GreedyOneToOne(std::move(fs_scored)), truth).F1();
    }

    PrintRow({Fmt(corruption, 1), Fmt(raw_f1), Fmt(clk_f1), Fmt(fs_f1)});
  }
  std::printf(
      "\nExpected shape: all curves decay with dirtiness; the encoded CLK\n"
      "column stays within a few points of the unencoded baseline [30],\n"
      "and EM-based Fellegi-Sunter is competitive without any labels.\n");
  return 0;
}
