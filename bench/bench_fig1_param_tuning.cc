/// E10 (survey §3.1 "schema optimization", [3, 36]): Bayesian optimisation
/// reaches strong parameter settings in fewer pipeline evaluations than
/// grid or random search because it conditions on past evaluations.
///
/// Regenerates the convergence table (best F1 after k evaluations, averaged
/// over seeds).

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"
#include "tuning/tuner.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  auto [a, b] = TwoDatabases(300, 1.5);
  const GroundTruth truth(a, b);

  const std::vector<ParamSpec> space = {
      {"num_bits", 200, 2000, true},
      {"num_hashes_scale", 0.3, 2.0, false},  // multiplies default per-field k
      {"threshold", 0.55, 0.95, false},
  };
  const Objective objective = [&](const ParamPoint& p) {
    PipelineConfig config;
    config.bloom.num_bits = static_cast<size_t>(p[0]);
    config.fields = PprlPipeline::DefaultFieldConfigs();
    for (auto& field : config.fields) {
      field.num_hashes = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(field.num_hashes) * p[1]));
    }
    config.match_threshold = p[2];
    config.blocking = BlockingScheme::kNone;
    auto output = PprlPipeline(config).Link(a, b);
    if (!output.ok()) return 0.0;
    return EvaluateMatches(output->matches, truth).F1();
  };

  const size_t budget = 27;
  const size_t num_seeds = 3;
  std::printf("# E10: parameter tuning strategies (budget %zu, %zu seeds)\n\n", budget,
              num_seeds);
  PrintHeader({"k evals", "grid (3^3)", "random", "bayesian"});

  std::vector<double> grid_curve(budget, 0), random_curve(budget, 0),
      bayes_curve(budget, 0);
  for (uint64_t seed = 0; seed < num_seeds; ++seed) {
    Rng rng_random(seed * 2 + 1);
    Rng rng_bayes(seed * 2 + 2);
    const TuningResult grid = GridSearch(space, objective, 3);  // 27 = budget
    const TuningResult random = RandomSearch(space, objective, budget, rng_random);
    const TuningResult bayes = BayesianOptimization(space, objective, budget, rng_bayes);
    for (size_t k = 1; k <= budget; ++k) {
      grid_curve[k - 1] += grid.BestAfter(k) / num_seeds;
      random_curve[k - 1] += random.BestAfter(k) / num_seeds;
      bayes_curve[k - 1] += bayes.BestAfter(k) / num_seeds;
    }
  }
  for (size_t k : {3, 6, 9, 12, 18, 27}) {
    PrintRow({Fmt(k), Fmt(grid_curve[k - 1]), Fmt(random_curve[k - 1]),
              Fmt(bayes_curve[k - 1])});
  }
  std::printf(
      "\nExpected shape: grid search is hostage to its lattice order and\n"
      "random search to luck; Bayesian optimisation pulls ahead after its\n"
      "warm-up because each pick conditions on all previous evaluations\n"
      "[36]. (All three converge eventually on this smooth objective.)\n");
  return 0;
}
