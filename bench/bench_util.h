#ifndef PPRL_BENCH_BENCH_UTIL_H_
#define PPRL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/generator.h"

namespace pprl::bench {

/// Prints a Markdown-style table header: "| col1 | col2 | ... |".
inline void PrintHeader(const std::vector<std::string>& columns) {
  std::string line = "|";
  std::string rule = "|";
  for (const auto& c : columns) {
    line += " " + c + " |";
    rule += std::string(c.size() + 2, '-') + "|";
  }
  std::printf("%s\n%s\n", line.c_str(), rule.c_str());
}

/// Prints one row of formatted cells.
inline void PrintRow(const std::vector<std::string>& cells) {
  std::string line = "|";
  for (const auto& c : cells) line += " " + c + " |";
  std::printf("%s\n", line.c_str());
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string Fmt(size_t v) { return std::to_string(v); }

/// Standard two-database scenario used across benches.
inline std::pair<Database, Database> TwoDatabases(size_t n, double corruption_mean,
                                                  uint64_t seed = 42,
                                                  double overlap = 0.5) {
  GeneratorConfig gc;
  gc.seed = seed;
  DataGenerator gen(gc);
  LinkageScenarioConfig scenario;
  scenario.records_per_database = n;
  scenario.overlap = overlap;
  scenario.corruption.mean_corruptions = corruption_mean;
  auto dbs = gen.GenerateScenario(scenario);
  return {std::move((*dbs)[0]), std::move((*dbs)[1])};
}

}  // namespace pprl::bench

#endif  // PPRL_BENCH_BENCH_UTIL_H_
