#ifndef PPRL_BENCH_BENCH_UTIL_H_
#define PPRL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "obs/export.h"
#include "pipeline/channel.h"

namespace pprl::bench {

/// Prints a Markdown-style table header: "| col1 | col2 | ... |".
inline void PrintHeader(const std::vector<std::string>& columns) {
  std::string line = "|";
  std::string rule = "|";
  for (const auto& c : columns) {
    line += " " + c + " |";
    rule += std::string(c.size() + 2, '-') + "|";
  }
  std::printf("%s\n%s\n", line.c_str(), rule.c_str());
}

/// Prints one row of formatted cells.
inline void PrintRow(const std::vector<std::string>& cells) {
  std::string line = "|";
  for (const auto& c : cells) line += " " + c + " |";
  std::printf("%s\n", line.c_str());
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string Fmt(size_t v) { return std::to_string(v); }

/// Prints a channel's communication-cost breakdown as one table row per
/// tag: messages and bytes. In-process and socket-transport runs meter
/// into the same `Channel` interface, so their cost tables are directly
/// comparable (the socket path's frame headers are excluded here and
/// reported by the transport as wire bytes).
inline void PrintChannelCosts(const Channel& channel, const std::string& label) {
  std::printf("\ncommunication cost (%s): %zu messages, %.1f KiB\n", label.c_str(),
              channel.total_messages(),
              static_cast<double>(channel.total_bytes()) / 1024.0);
  PrintHeader({"tag", "messages", "KiB"});
  const auto messages = channel.messages_by_tag();
  for (const auto& [tag, bytes] : channel.bytes_by_tag()) {
    const auto it = messages.find(tag);
    PrintRow({tag, Fmt(it == messages.end() ? size_t{0} : it->second),
              Fmt(static_cast<double>(bytes) / 1024.0, 1)});
  }
}

/// Dumps the global metrics registry as JSON when PPRL_METRICS_JSON is
/// set; benches call this once at the end of main so a run's counters
/// (pairs compared, pruned, kernel dispatches) land next to its timings.
inline void DumpMetricsIfRequested() { obs::MaybeDumpMetricsJson(); }

/// Standard two-database scenario used across benches.
inline std::pair<Database, Database> TwoDatabases(size_t n, double corruption_mean,
                                                  uint64_t seed = 42,
                                                  double overlap = 0.5) {
  GeneratorConfig gc;
  gc.seed = seed;
  DataGenerator gen(gc);
  LinkageScenarioConfig scenario;
  scenario.records_per_database = n;
  scenario.overlap = overlap;
  scenario.corruption.mean_corruptions = corruption_mean;
  auto dbs = gen.GenerateScenario(scenario);
  return {std::move((*dbs)[0]), std::move((*dbs)[1])};
}

}  // namespace pprl::bench

#endif  // PPRL_BENCH_BENCH_UTIL_H_
