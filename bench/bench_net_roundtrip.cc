/// Networked linkage service vs in-process simulation (ROADMAP: production
/// service). Runs the same 3-owner multi-party linkage twice — once through
/// the in-process `Channel` simulation, once through `LinkageUnitServer`
/// over loopback TCP — and prints both cost tables plus the real framing
/// overhead. The metered columns must agree; the wire adds only the
/// 12-byte frame headers and the handshake/ack/result messages.

#include <thread>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "pipeline/party.h"
#include "pipeline/pipeline.h"
#include "service/client.h"
#include "service/server.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  std::printf("# Networked linkage: in-process channel vs loopback TCP\n");

  GeneratorConfig gc;
  gc.seed = 42;
  DataGenerator gen(gc);
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 2000;
  scenario.num_databases = 3;
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  if (!dbs.ok()) return 1;

  PipelineConfig shared;
  const ClkEncoder encoder(shared.bloom, PprlPipeline::DefaultFieldConfigs());
  const std::vector<std::string> names = {"hospital-a", "hospital-b", "registry-c"};
  std::vector<DatabaseOwner> owners;
  for (size_t d = 0; d < 3; ++d) {
    owners.emplace_back(names[d], (*dbs)[d]);
    if (!owners[d].Encode(encoder).ok()) return 1;
  }
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;

  // In-process path.
  Channel local_channel;
  LinkageUnitService local_unit("lu");
  LocalLinkageUnitSink sink(local_channel, local_unit);
  Timer local_timer;
  for (auto& owner : owners) {
    if (!owner.ShipEncodings(sink).ok()) return 1;
  }
  auto local_result = local_unit.Link(options);
  const double local_ms = local_timer.ElapsedMillis();
  if (!local_result.ok()) return 1;

  // Socket path.
  LinkageUnitServerConfig server_config;
  server_config.name = "lu";
  server_config.expected_owners = 3;
  server_config.link_options = options;
  LinkageUnitServer server(server_config);
  if (!server.Start().ok()) return 1;
  Channel client_channel;
  Timer remote_timer;
  std::vector<std::thread> sessions;
  for (size_t d = 0; d < 3; ++d) {
    sessions.emplace_back([&, d] {
      RemoteOwnerClientConfig config;
      config.port = server.port();
      config.server_label = "lu";
      RemoteOwnerClient client(config, &client_channel);
      if (!owners[d].ShipEncodings(client).ok()) {
        std::fprintf(stderr, "session %zu failed\n", d);
      }
    });
  }
  for (auto& t : sessions) t.join();
  const double remote_ms = remote_timer.ElapsedMillis();
  auto remote_result = server.result();
  if (!remote_result.ok()) return 1;

  PrintHeader({"path", "edges", "clusters", "comparisons", "wall ms"});
  PrintRow({"in-process", Fmt(local_result->edges.size()),
            Fmt(local_result->clusters.size()), Fmt(local_result->comparisons),
            Fmt(local_ms, 1)});
  PrintRow({"loopback TCP", Fmt(remote_result->edges.size()),
            Fmt(remote_result->clusters.size()), Fmt(remote_result->comparisons),
            Fmt(remote_ms, 1)});

  PrintChannelCosts(local_channel, "in-process channel");
  PrintChannelCosts(server.channel(), "linkage-unit daemon, metered");

  const size_t metered = server.channel().total_bytes();
  const size_t wire = server.wire_bytes_received() + server.wire_bytes_sent();
  std::printf("\nwire bytes (headers included): %.1f KiB; framing overhead %.3f%%\n",
              static_cast<double>(wire) / 1024.0,
              100.0 * static_cast<double>(wire - metered) / static_cast<double>(wire));
  server.Stop();
  DumpMetricsIfRequested();
  return 0;
}
