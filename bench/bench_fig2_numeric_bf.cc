/// E2 (survey Figure 2, right): neighbourhood Bloom-filter encoding of
/// numeric QIDs preserves absolute-difference similarity [40].
///
/// Regenerates the claim as the measured Dice-vs-difference curve against
/// the analytic expectation, plus the same for dates in day space.

#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "encoding/bloom_filter.h"
#include "encoding/numeric_encoding.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  const double step = 1.0;
  const size_t neighbors = 10;
  const BloomFilterEncoder encoder({1000, 10, BloomHashScheme::kDoubleHashing, ""});

  auto encode_numeric = [&](double v) {
    auto tokens = NumericNeighborhoodTokens(std::to_string(v), step, neighbors);
    return encoder.EncodeTokens(tokens.value());
  };

  std::printf("# E2 / Figure 2 (right): numeric neighbourhood encoding\n\n");
  std::printf("## (a) Dice vs absolute difference (step=1, neighbours=10)\n\n");
  PrintHeader({"|a-b|", "measured dice", "analytic dice"});
  const double base = 500;
  const BitVector base_filter = encode_numeric(base);
  for (double diff : {0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 25.0, 40.0}) {
    const BitVector other = encode_numeric(base + diff);
    PrintRow({Fmt(diff, 1), Fmt(DiceSimilarity(base_filter, other)),
              Fmt(ExpectedNumericDice(base, base + diff, step, neighbors))});
  }
  std::printf(
      "\nExpected shape: linear decay hitting ~0 at |a-b| = 2*neighbours+1,\n"
      "tracking the analytic curve (small positive offset from collisions).\n\n");

  std::printf("## (b) date-of-birth neighbourhood encoding (days, neighbours=15)\n\n");
  DateEncodingParams date_params;
  date_params.num_neighbors = 15;
  auto encode_date = [&](const std::string& iso) {
    auto tokens = DateNeighborhoodTokens(iso, date_params);
    return encoder.EncodeTokens(tokens.value());
  };
  const BitVector anchor = encode_date("1980-06-15");
  PrintHeader({"date b", "day gap", "measured dice"});
  for (const char* other : {"1980-06-15", "1980-06-16", "1980-06-18", "1980-06-25",
                            "1980-07-15", "1981-06-15"}) {
    const auto gap = DaysSinceEpoch(other).value() - DaysSinceEpoch("1980-06-15").value();
    PrintRow({other, Fmt(static_cast<size_t>(std::llabs(gap))),
              Fmt(DiceSimilarity(anchor, encode_date(other)))});
  }
  std::printf(
      "\nExpected shape: one-day typos keep high similarity; a month or a\n"
      "year off falls outside the neighbourhood and scores ~0.\n");
  return 0;
}
