// Throughput of the comparison step (the pipeline bottleneck every
// complexity-reduction technology in the survey exists to shrink):
// the seed's std::function-over-BitVector path versus the devirtualized
// batch kernels over contiguous BitMatrix storage, with and without the
// Dice cardinality bound, across 1/2/4/8 threads and 500/1000-bit
// filters. Optionally writes the numbers as JSON (BENCH_compare.json is
// the committed baseline) so later PRs can track the trajectory.
//
// A second, larger sweep drives the end-to-end parallel path: 10k x 10k
// candidates streamed in shards from blocking straight into the
// work-stealing scheduler (linkage/parallel_linkage.h) at 1/2/4/8 workers.
// BENCH_parallel.json is its committed baseline.
//
// usage: bench_compare_kernels [out.json [parallel_out.json]]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "encoding/bloom_filter.h"
#include "linkage/comparison.h"
#include "linkage/parallel_linkage.h"
#include "pipeline/pipeline.h"

namespace pprl::bench {
namespace {

constexpr size_t kRecordsPerSide = 1000;
constexpr size_t kParallelRecordsPerSide = 10000;
constexpr double kPruneThreshold = 0.7;
/// The streaming sweep runs at a linkage-realistic threshold: at 0.7 most
/// of the dense 500-bit cross product scores as a hit and the bench would
/// time result materialization instead of the comparison path.
constexpr double kParallelThreshold = 0.85;
constexpr int kReps = 3;

struct Measurement {
  std::string name;
  size_t bits = 0;
  double pairs_per_sec = 0;
  size_t pruned = 0;
};

/// Best-of-kReps pairs/sec for one configuration.
template <typename Run>
Measurement Measure(const std::string& name, size_t bits, size_t num_pairs, Run run,
                    size_t* pruned_out = nullptr) {
  Measurement m;
  m.name = name;
  m.bits = bits;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    const size_t pruned = run();
    const double rate = static_cast<double>(num_pairs) / timer.ElapsedSeconds();
    if (rate > m.pairs_per_sec) m.pairs_per_sec = rate;
    m.pruned = pruned;
  }
  if (pruned_out != nullptr) *pruned_out = m.pruned;
  return m;
}

std::vector<Measurement> BenchAtWidth(size_t bits, const Database& a, const Database& b) {
  BloomFilterParams bloom;
  bloom.num_bits = bits;
  const ClkEncoder encoder(bloom, PprlPipeline::DefaultFieldConfigs());
  const std::vector<BitVector> fa = encoder.EncodeDatabase(a).value();
  const std::vector<BitVector> fb = encoder.EncodeDatabase(b).value();

  std::vector<CandidatePair> candidates;
  candidates.reserve(fa.size() * fb.size());
  for (uint32_t i = 0; i < fa.size(); ++i) {
    for (uint32_t j = 0; j < fb.size(); ++j) candidates.push_back({i, j});
  }
  const size_t n = candidates.size();

  const ComparisonEngine scalar(MeasureFunction(SimilarityMeasure::kDice));
  const ComparisonEngine kernel(SimilarityMeasure::kDice);
  const BitMatrix ma = BitMatrix::FromVectors(fa);
  const BitMatrix mb = BitMatrix::FromVectors(fb);

  std::vector<Measurement> out;
  out.push_back(Measure("scalar", bits, n, [&] {
    scalar.Compare(fa, fb, candidates, 0.0);
    return size_t{0};
  }));
  out.push_back(Measure("scalar-threshold", bits, n, [&] {
    scalar.Compare(fa, fb, candidates, kPruneThreshold);
    return size_t{0};
  }));
  // The vector-input path, so the timing includes the BitMatrix
  // conversion the seed path never pays (it is O(records), amortized over
  // O(pairs) scoring).
  out.push_back(Measure("kernel", bits, n, [&] {
    kernel.Compare(fa, fb, candidates, 0.0);
    return kernel.last_pruned_count();
  }));
  out.push_back(Measure("kernel-pruned", bits, n, [&] {
    kernel.Compare(fa, fb, candidates, kPruneThreshold);
    return kernel.last_pruned_count();
  }));
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    out.push_back(Measure("kernel-t" + std::to_string(threads), bits, n, [&] {
      kernel.CompareMatricesParallel(ma, mb, candidates, 0.0, threads);
      return kernel.last_pruned_count();
    }));
  }
  return out;
}

struct ParallelMeasurement {
  size_t threads = 0;
  size_t bits = 0;
  double pairs_per_sec = 0;
  size_t pruned = 0;
  /// pairs_per_sec / (t1 rate x threads) at the same width: 1.0 is perfect
  /// scaling, and anything flat across thread counts means a serial stage
  /// or shared bottleneck is capping the path.
  double scaling_efficiency = 0;
  size_t shard_size = 0;
  size_t tile_a_rows = 0;
  size_t tile_b_rows = 0;
};

/// The streaming sweep: all 10k x 10k candidates flow from
/// StreamFullPairRuns through the scheduler into the tiled compare path —
/// candidate generation, dispatch, tiling and merge are all inside the
/// timed region, so this measures the pipeline's parallel path, not just
/// the kernel loop. Shard and tile sizes are the auto-resolved values a
/// production run would use; they ride along in the JSON so regressions
/// can be traced to tuning changes.
std::vector<ParallelMeasurement> BenchParallelAtWidth(size_t bits, const Database& a,
                                                      const Database& b) {
  BloomFilterParams bloom;
  bloom.num_bits = bits;
  const ClkEncoder encoder(bloom, PprlPipeline::DefaultFieldConfigs());
  const std::vector<BitVector> fa = encoder.EncodeDatabase(a).value();
  const std::vector<BitVector> fb = encoder.EncodeDatabase(b).value();
  const BitMatrix ma = BitMatrix::FromVectors(fa);
  const BitMatrix mb = BitMatrix::FromVectors(fb);
  const size_t n = fa.size() * fb.size();

  std::vector<ParallelMeasurement> out;
  double t1_rate = 0;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ParallelLinkageOptions options;
    options.num_threads = threads;
    const ResolvedParallelTuning tuning = ResolveParallelTuning(options, bits);
    ParallelMeasurement m;
    m.threads = threads;
    m.bits = bits;
    m.shard_size = tuning.shard_size;
    m.tile_a_rows = tuning.tile_a_rows;
    m.tile_b_rows = tuning.tile_b_rows;
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      const StreamCompareResult result = StreamCompareShards(
          SimilarityMeasure::kDice, ma, mb, kParallelThreshold, options,
          [&](const CandidateShardFn& emit) {
            StreamFullPairRuns(fa.size(), fb.size(), tuning.shard_size, emit);
          });
      const double rate = static_cast<double>(n) / timer.ElapsedSeconds();
      if (rate > m.pairs_per_sec) m.pairs_per_sec = rate;
      m.pruned = result.pruned;
    }
    if (threads == 1) t1_rate = m.pairs_per_sec;
    // Fraction of perfect scaling: 1.0 means N threads deliver N x the
    // single-thread rate; the committed baseline's t8 sat at ~0.14.
    m.scaling_efficiency =
        m.pairs_per_sec / (t1_rate * static_cast<double>(threads));
    out.push_back(m);
  }
  return out;
}

int Main(int argc, char** argv) {
  auto [a, b] = TwoDatabases(kRecordsPerSide, 1.2);
  const size_t num_pairs = kRecordsPerSide * kRecordsPerSide;
  std::printf("comparison throughput, %zu x %zu records (%zu candidate pairs), "
              "Dice, prune threshold %.2f\n\n",
              kRecordsPerSide, kRecordsPerSide, num_pairs, kPruneThreshold);

  std::vector<Measurement> all;
  for (const size_t bits : {size_t{500}, size_t{1000}}) {
    const auto rows = BenchAtWidth(bits, a, b);
    all.insert(all.end(), rows.begin(), rows.end());
  }

  PrintHeader({"config", "bits", "Mpairs/s", "pruned", "vs scalar"});
  double scalar_rate = 0;
  for (const Measurement& m : all) {
    if (m.name == "scalar") scalar_rate = m.pairs_per_sec;
    PrintRow({m.name, Fmt(m.bits), Fmt(m.pairs_per_sec / 1e6, 2), Fmt(m.pruned),
              Fmt(m.pairs_per_sec / scalar_rate, 2) + "x"});
  }

  const size_t cores = std::thread::hardware_concurrency();
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_compare_kernels\",\n");
    std::fprintf(f, "  \"records_per_side\": %zu,\n  \"candidate_pairs\": %zu,\n",
                 kRecordsPerSide, num_pairs);
    std::fprintf(f, "  \"prune_threshold\": %.2f,\n  \"cores\": %zu,\n",
                 kPruneThreshold, cores);
    std::fprintf(f, "  \"measurements\": [\n");
    for (size_t i = 0; i < all.size(); ++i) {
      const Measurement& m = all[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"bits\": %zu, \"pairs_per_sec\": %.0f, "
                   "\"pruned\": %zu}%s\n",
                   m.name.c_str(), m.bits, m.pairs_per_sec, m.pruned,
                   i + 1 < all.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", argv[1]);
  }

  // --- Streaming parallel sweep -------------------------------------------
  auto [pa, pb] = TwoDatabases(kParallelRecordsPerSide, 1.2);
  const size_t parallel_pairs = kParallelRecordsPerSide * kParallelRecordsPerSide;
  const ResolvedParallelTuning shown_tuning =
      ResolveParallelTuning(ParallelLinkageOptions{}, 500);
  std::printf("\nstreaming parallel path, %zu x %zu records (%zu candidate pairs), "
              "Dice threshold %.2f, %zu cores,\n"
              "auto tuning @500 bits: shard %zu pairs, tiles %zu x %zu rows\n\n",
              kParallelRecordsPerSide, kParallelRecordsPerSide, parallel_pairs,
              kParallelThreshold, cores, shown_tuning.shard_size,
              shown_tuning.tile_a_rows, shown_tuning.tile_b_rows);

  std::vector<ParallelMeasurement> parallel_all;
  for (const size_t bits : {size_t{500}, size_t{1000}}) {
    const auto rows = BenchParallelAtWidth(bits, pa, pb);
    parallel_all.insert(parallel_all.end(), rows.begin(), rows.end());
  }

  PrintHeader({"config", "bits", "Mpairs/s", "pruned", "vs t1", "efficiency"});
  double t1_rate = 0;
  for (const ParallelMeasurement& m : parallel_all) {
    if (m.threads == 1) t1_rate = m.pairs_per_sec;
    PrintRow({"stream-t" + std::to_string(m.threads), Fmt(m.bits),
              Fmt(m.pairs_per_sec / 1e6, 2), Fmt(m.pruned),
              Fmt(m.pairs_per_sec / t1_rate, 2) + "x",
              Fmt(m.scaling_efficiency, 2)});
  }

  if (argc > 2) {
    std::FILE* f = std::fopen(argv[2], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_compare_kernels_parallel\",\n");
    std::fprintf(f, "  \"records_per_side\": %zu,\n  \"candidate_pairs\": %zu,\n",
                 kParallelRecordsPerSide, parallel_pairs);
    std::fprintf(f, "  \"prune_threshold\": %.2f,\n  \"cores\": %zu,\n",
                 kParallelThreshold, cores);
    std::fprintf(f, "  \"measurements\": [\n");
    for (size_t i = 0; i < parallel_all.size(); ++i) {
      const ParallelMeasurement& m = parallel_all[i];
      if (m.threads == 1) t1_rate = m.pairs_per_sec;
      std::fprintf(f,
                   "    {\"config\": \"stream-t%zu\", \"bits\": %zu, \"threads\": %zu, "
                   "\"pairs_per_sec\": %.0f, \"pruned\": %zu, "
                   "\"speedup_vs_t1\": %.2f, \"scaling_efficiency\": %.3f, "
                   "\"shard_size\": %zu, \"tile_a_rows\": %zu, "
                   "\"tile_b_rows\": %zu}%s\n",
                   m.threads, m.bits, m.threads, m.pairs_per_sec, m.pruned,
                   m.pairs_per_sec / t1_rate, m.scaling_efficiency, m.shard_size,
                   m.tile_a_rows, m.tile_b_rows,
                   i + 1 < parallel_all.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", argv[2]);
  }
  DumpMetricsIfRequested();
  return 0;
}

}  // namespace
}  // namespace pprl::bench

int main(int argc, char** argv) { return pprl::bench::Main(argc, argv); }
