/// E11 (survey §3.3 "correctness and fairness", §5.2, [46]): linkage errors
/// are not uniform across protected subgroups. When one group's records are
/// systematically dirtier (differential data quality is the documented
/// real-world mechanism), threshold matching under-links that group, and
/// the fairness gap widens as the threshold tightens.

#include "bench/bench_util.h"
#include "datagen/corruptor.h"
#include "datagen/generator.h"
#include "eval/fairness.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  // Generate a scenario, then re-corrupt female records harder in B —
  // modelling a subgroup whose data is recorded less consistently.
  GeneratorConfig gc;
  gc.seed = 9;
  DataGenerator gen(gc);
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 800;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 0.5;
  auto dbs = gen.GenerateScenario(scenario);
  Database a = std::move((*dbs)[0]);
  Database b = std::move((*dbs)[1]);
  const int sex_idx = a.schema.FieldIndex("sex");
  Corruptor extra(CorruptorConfig{}, 1234);
  for (Record& r : b.records) {
    if (r.values[static_cast<size_t>(sex_idx)] == "f") {
      r = extra.CorruptExactly(b.schema, r, 2);
    }
  }
  const GroundTruth truth(a, b);

  std::printf("# E11 / fairness: per-group linkage quality vs threshold\n\n");
  PrintHeader({"threshold", "recall m", "recall f", "recall gap", "precision gap",
               "overall F1"});
  for (double threshold : {0.65, 0.70, 0.75, 0.80, 0.85, 0.90}) {
    PipelineConfig config;
    config.match_threshold = threshold;
    config.blocking = BlockingScheme::kNone;
    auto output = PprlPipeline(config).Link(a, b);
    if (!output.ok()) continue;
    const auto by_group = EvaluateByGroup(output->matches, truth, a, "sex");
    const FairnessGaps gaps = ComputeFairnessGaps(by_group);
    const double recall_m = by_group.count("m") ? by_group.at("m").Recall() : 0;
    const double recall_f = by_group.count("f") ? by_group.at("f").Recall() : 0;
    PrintRow({Fmt(threshold, 2), Fmt(recall_m), Fmt(recall_f), Fmt(gaps.recall_gap),
              Fmt(gaps.precision_gap),
              Fmt(EvaluateMatches(output->matches, truth).F1())});
  }
  std::printf(
      "\nExpected shape: the group with dirtier data loses recall first as\n"
      "the threshold rises, so the recall gap grows exactly where overall\n"
      "F1 still looks acceptable — the blind spot fairness-aware PPRL is\n"
      "meant to expose [46]. Fairness-bias mitigation for PPRL is open\n"
      "research per the survey; this bench provides the measurement side.\n");
  return 0;
}
