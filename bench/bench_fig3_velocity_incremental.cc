/// E9 (survey Figure 3, "velocity"; §5.1, [43]): streaming records must be
/// linked as they arrive. Incremental clustering compares each arrival only
/// against cluster representatives, while naive batch re-linkage recomputes
/// everything per arrival window.
///
/// Regenerates the throughput/comparison-count table per stream size.

#include "bench/bench_util.h"
#include "common/timer.h"
#include "encoding/bloom_filter.h"
#include "linkage/clustering.h"
#include "linkage/comparison.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  std::printf("# E9 / Figure 3 (velocity): incremental vs batch re-linkage\n\n");
  PrintHeader({"stream size", "incremental comparisons", "batch comparisons",
               "incremental s", "batch s", "clusters"});

  for (size_t n : {250, 500, 1000, 2000}) {
    auto [a, b] = TwoDatabases(n / 2, 1.0);
    PipelineConfig config;
    const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
    const auto fa = encoder.EncodeDatabase(a).value();
    const auto fb = encoder.EncodeDatabase(b).value();

    // The stream interleaves records of both databases.
    std::vector<std::pair<RecordRef, const BitVector*>> stream;
    for (uint32_t i = 0; i < fa.size(); ++i) stream.push_back({{0, i}, &fa[i]});
    for (uint32_t i = 0; i < fb.size(); ++i) stream.push_back({{1, i}, &fb[i]});
    Rng rng(n);
    rng.Shuffle(stream);

    // Incremental: one pass, compare against representatives only.
    Timer inc_timer;
    IncrementalClusterer clusterer(
        0.78, [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); });
    for (const auto& [ref, filter] : stream) clusterer.Insert(ref, *filter);
    const double inc_seconds = inc_timer.ElapsedSeconds();

    // Batch: after every arrival, re-compare the arrival against everything
    // seen so far (the cost of naively re-running pairwise linkage).
    Timer batch_timer;
    size_t batch_comparisons = 0;
    std::vector<const BitVector*> seen;
    for (const auto& [ref, filter] : stream) {
      for (const BitVector* prior : seen) {
        DiceSimilarity(*prior, *filter);
        ++batch_comparisons;
      }
      seen.push_back(filter);
    }
    const double batch_seconds = batch_timer.ElapsedSeconds();

    PrintRow({Fmt(n), Fmt(clusterer.comparisons()), Fmt(batch_comparisons),
              Fmt(inc_seconds, 3), Fmt(batch_seconds, 3),
              Fmt(clusterer.clusters().size())});
  }
  std::printf(
      "\nExpected shape: batch comparisons grow ~n^2/2 while incremental\n"
      "comparisons grow ~n * clusters — a widening gap as the stream grows,\n"
      "which is what makes (near) real-time PPRL feasible [43].\n");
  return 0;
}
