// The online serving path end to end: one daemon in online mode, one
// OnlineLinkClient streaming a million records over the v4 session, then
// link queries against the full index — batch-of-1 for round-trip latency
// percentiles, batch-of-64 for sustained QPS. Everything crosses the real
// loopback socket, so the numbers include framing, the protocol codecs and
// the engine's locking, not just the LSH probe and kernel loop.
//
// BENCH_online.json is the committed baseline; the ISSUE 9 acceptance bar
// is >= 10k link-queries/s and p50 < 1 ms against 1M indexed records on
// one core.
//
// usage: bench_online [out.json [num_records]]

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "encoding/clk_io.h"
#include "service/client.h"
#include "service/server.h"

namespace pprl::bench {
namespace {

constexpr size_t kFilterBits = 512;
constexpr size_t kDefaultRecords = 1u << 20;  // ~1.05M
constexpr size_t kAppendBatch = 8192;
constexpr size_t kLatencyQueries = 512;
constexpr size_t kThroughputBatch = 64;
constexpr size_t kQueryRows = 4096;
constexpr int kThroughputReps = 3;

/// Synthetic ~50%-density CLK rows — the fill rate a well-tuned Bloom
/// encoder targets — filled word-at-a-time (bit-by-bit generation of half
/// a billion bits would dominate the bench's own setup). 512 bits is
/// exactly 8 words, so no tail masking is needed.
EncodedShard MakeShard(size_t records, uint64_t seed, uint64_t id_base) {
  Rng rng(seed);
  EncodedShard shard;
  shard.bits = BitMatrix(0, kFilterBits);
  shard.bits.ReserveRows(records);
  shard.ids.reserve(records);
  for (size_t r = 0; r < records; ++r) {
    shard.ids.push_back(id_base + r);
    uint64_t* row = shard.bits.mutable_row(shard.bits.AppendRow());
    for (size_t w = 0; w < shard.bits.words_per_row(); ++w) {
      row[w] = rng.NextUint64();
    }
    shard.bits.RecountRow(r);
  }
  return shard;
}

/// The query mix: half near-duplicates of indexed records (3 flipped
/// bits — these should match), half fresh randoms (these should not).
EncodedShard MakeQueries(const EncodedShard& indexed, uint64_t seed) {
  Rng rng(seed);
  EncodedShard q = MakeShard(kQueryRows, seed + 1, /*id_base=*/900000000);
  for (size_t r = 0; r < kQueryRows / 2; ++r) {
    const size_t src = rng.NextUint64(indexed.size());
    uint64_t* dst = q.bits.mutable_row(r);
    std::copy(indexed.bits.row(src),
              indexed.bits.row(src) + indexed.bits.words_per_row(), dst);
    for (int flip = 0; flip < 3; ++flip) {
      const uint64_t bit = rng.NextUint64(kFilterBits);
      dst[bit / 64] ^= uint64_t{1} << (bit % 64);
    }
    q.bits.RecountRow(r);
  }
  return q;
}

int Main(int argc, char** argv) {
  const size_t records =
      argc > 2 ? static_cast<size_t>(std::stoull(argv[2])) : kDefaultRecords;
  const size_t cores = std::thread::hardware_concurrency();

  LinkageUnitServerConfig server_config;
  server_config.name = "bench-online-lu";
  server_config.online_mode = true;
  LinkageUnitServer server(server_config);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  const MultiPartyLinkageOptions& lsh = server_config.link_options;
  std::printf("online serving path: %zu records x %zu bits, %zu LSH tables x "
              "%zu bits, dice >= %.2f, %zu cores\n\n",
              records, kFilterBits, lsh.lsh_tables, lsh.lsh_bits_per_key,
              lsh.dice_threshold, cores);

  std::printf("generating %zu records...\n", records);
  const EncodedShard shard = MakeShard(records, /*seed=*/42, /*id_base=*/0);
  const EncodedShard queries = MakeQueries(shard, /*seed=*/7);

  OnlineLinkClientConfig client_config;
  client_config.port = server.port();
  OnlineLinkClient writer(client_config);
  if (!writer.Connect("warehouse", kFilterBits).ok()) {
    std::fprintf(stderr, "writer failed to connect\n");
    return 1;
  }

  // --- Appends: the whole population over the wire in cursored batches.
  Timer append_timer;
  for (size_t row = 0; row < records; row += kAppendBatch) {
    const size_t end = std::min(records, row + kAppendBatch);
    auto cursor = writer.AppendRows(shard, row, end);
    if (!cursor.ok()) {
      std::fprintf(stderr, "append failed: %s\n", cursor.status().ToString().c_str());
      return 1;
    }
  }
  const double append_seconds = append_timer.ElapsedSeconds();
  const double appends_per_sec = static_cast<double>(records) / append_seconds;
  std::printf("appended %zu records in %.1f s (%.0f records/s inserted)\n",
              records, append_seconds, appends_per_sec);

  // Queries arrive as a different party so nothing is excluded.
  OnlineLinkClient reader(client_config);
  if (!reader.Connect("clinic", kFilterBits).ok()) {
    std::fprintf(stderr, "reader failed to connect\n");
    return 1;
  }

  // --- Latency: one record per round trip, full percentile curve.
  std::vector<double> latency_ms;
  latency_ms.reserve(kLatencyQueries);
  uint64_t candidate_sum = 0;
  size_t matched = 0;
  for (size_t r = 0; r < kLatencyQueries; ++r) {
    Timer t;
    auto result = reader.QueryRows(queries, r, r + 1, /*want_clusters=*/false,
                                   /*top_k=*/4);
    latency_ms.push_back(t.ElapsedSeconds() * 1e3);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    candidate_sum += result->records[0].candidates;
    if (!result->records[0].matches.empty()) ++matched;
  }
  std::sort(latency_ms.begin(), latency_ms.end());
  const double p50 = latency_ms[kLatencyQueries / 2];
  const double p90 = latency_ms[kLatencyQueries * 9 / 10];
  const double p99 = latency_ms[kLatencyQueries * 99 / 100];
  std::printf("single-query latency over %zu round trips: p50 %.3f ms, "
              "p90 %.3f ms, p99 %.3f ms (avg %.0f candidates/query, "
              "%zu matched)\n",
              kLatencyQueries, p50, p90, p99,
              static_cast<double>(candidate_sum) / kLatencyQueries, matched);

  // --- Throughput: 64 records per round trip, best of kThroughputReps.
  double qps = 0;
  for (int rep = 0; rep < kThroughputReps; ++rep) {
    Timer t;
    for (size_t row = 0; row < kQueryRows; row += kThroughputBatch) {
      auto result = reader.QueryRows(queries, row, row + kThroughputBatch,
                                     /*want_clusters=*/false, /*top_k=*/4);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    const double rate = static_cast<double>(kQueryRows) / t.ElapsedSeconds();
    if (rate > qps) qps = rate;
  }
  std::printf("batched throughput (%zu records/round trip): %.0f link-queries/s\n",
              kThroughputBatch, qps);

  PrintHeader({"metric", "value"});
  PrintRow({"append_records_per_sec", Fmt(appends_per_sec, 0)});
  PrintRow({"query_p50_ms", Fmt(p50, 3)});
  PrintRow({"query_p90_ms", Fmt(p90, 3)});
  PrintRow({"query_p99_ms", Fmt(p99, 3)});
  PrintRow({"query_qps_batch64", Fmt(qps, 0)});

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_online\",\n");
    std::fprintf(f, "  \"records\": %zu,\n  \"filter_bits\": %zu,\n", records,
                 kFilterBits);
    std::fprintf(f, "  \"lsh_tables\": %zu,\n  \"lsh_bits_per_key\": %zu,\n",
                 lsh.lsh_tables, lsh.lsh_bits_per_key);
    std::fprintf(f, "  \"cores\": %zu,\n", cores);
    std::fprintf(f, "  \"append_records_per_sec\": %.0f,\n", appends_per_sec);
    std::fprintf(f, "  \"avg_candidates_per_query\": %.1f,\n",
                 static_cast<double>(candidate_sum) / kLatencyQueries);
    std::fprintf(f, "  \"query_latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, "
                 "\"p99\": %.3f},\n",
                 p50, p90, p99);
    std::fprintf(f, "  \"query_batch\": %zu,\n  \"query_qps\": %.0f\n",
                 kThroughputBatch, qps);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", argv[1]);
  }

  writer.Close();
  reader.Close();
  server.Stop();
  DumpMetricsIfRequested();
  return 0;
}

}  // namespace
}  // namespace pprl::bench

int main(int argc, char** argv) { return pprl::bench::Main(argc, argv); }
