/// E7 (survey Figure 3, "privacy"; §3.2 attacks, §5.3 hardening): plain
/// Bloom filters and SLKs are re-identifiable from public frequency
/// knowledge; hardening degrades the attacks at a measurable quality cost.
///
/// Regenerates the attack-success table per encoding/hardening variant,
/// together with the privacy metrics of §3.3 (disclosure risk, entropy)
/// and the linkage quality retained under each variant.

#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "encoding/bloom_filter.h"
#include "encoding/hardening.h"
#include "encoding/slk.h"
#include "datagen/lookup_data.h"
#include "privacy/attacks.h"
#include "privacy/privacy_metrics.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  // Skewed population of last names (the attacker's frequency knowledge).
  const size_t kDict = 60;
  const size_t kRecords = 3000;
  const ZipfDistribution zipf(kDict, 1.2);
  Rng rng(17);
  std::vector<std::pair<std::string, double>> dictionary;
  for (size_t i = 0; i < kDict; ++i) {
    dictionary.push_back({std::string(datagen::kLastNames[i]), zipf.Pmf(i)});
  }
  std::vector<std::string> plaintexts;
  std::vector<int> truth;
  for (size_t r = 0; r < kRecords; ++r) {
    const size_t rank = zipf.Sample(rng);
    plaintexts.push_back(dictionary[rank].first);
    truth.push_back(static_cast<int>(rank));
  }
  std::vector<std::string> dict_values;
  for (const auto& [v, f] : dictionary) dict_values.push_back(v);

  std::printf("# E7 / Figure 3 (privacy): attacks vs hardening\n\n");
  std::printf("## (a) Bloom-filter variants (l=1000, k=10)\n\n");
  PrintHeader({"variant", "dict-attack", "pattern-attack", "bit-freq spread",
               "smith~smyth dice"});

  BloomFilterParams params;
  params.num_bits = 1000;
  params.num_hashes = 10;
  const BloomFilterEncoder plain_encoder(params);
  BloomFilterParams keyed_params = params;
  keyed_params.scheme = BloomHashScheme::kKeyedHmac;
  keyed_params.secret_key = "org-shared-secret";
  const BloomFilterEncoder keyed_encoder(keyed_params);

  struct Variant {
    std::string name;
    std::function<BitVector(const std::string&, size_t)> encode;
  };
  Rng blip_rng(5);
  const std::vector<Variant> variants = {
      {"plain double-hash",
       [&](const std::string& v, size_t) { return plain_encoder.EncodeString(v); }},
      {"keyed HMAC",
       [&](const std::string& v, size_t) { return keyed_encoder.EncodeString(v); }},
      {"plain + balance",
       [&](const std::string& v, size_t) {
         return Balance(plain_encoder.EncodeString(v), 99);
       }},
      {"plain + xor-fold",
       [&](const std::string& v, size_t) {
         return XorFold(plain_encoder.EncodeString(v));
       }},
      {"plain + rule90",
       [&](const std::string& v, size_t) {
         return Rule90(plain_encoder.EncodeString(v));
       }},
      {"plain + blip 0.05",
       [&](const std::string& v, size_t) {
         return Blip(plain_encoder.EncodeString(v), 0.05, blip_rng);
       }},
      {"plain + blip 0.15",
       [&](const std::string& v, size_t) {
         return Blip(plain_encoder.EncodeString(v), 0.15, blip_rng);
       }},
      {"plain + salt(YOB)",
       [&](const std::string& v, size_t record) {
         // Per-record salt from a stable attribute (here: synthetic YOB),
         // prefixed to every q-gram so same-salt records stay comparable.
         const std::string salt =
             RecordSalt(std::to_string(1940 + record % 60), "salt-key");
         std::vector<std::string> tokens = QGrams(NormalizeQid(v));
         for (std::string& token : tokens) token = salt + token;
         return plain_encoder.EncodeTokens(tokens);
       }},
  };

  for (const auto& variant : variants) {
    std::vector<BitVector> filters;
    filters.reserve(kRecords);
    for (size_t r = 0; r < kRecords; ++r) {
      filters.push_back(variant.encode(plaintexts[r], r));
    }
    AttackResult dict_attack = BloomDictionaryAttack(filters, dict_values, plain_encoder);
    const double dict_success = ScoreAttack(dict_attack, truth);
    AttackResult pattern = BloomPatternMiningAttack(filters, dictionary);
    const double pattern_success = ScoreAttack(pattern, truth);
    const double quality = DiceSimilarity(variant.encode("smith", 1),
                                          variant.encode("smyth", 1));
    PrintRow({variant.name, Fmt(dict_success), Fmt(pattern_success),
              Fmt(BitFrequencySpread(filters), 4), Fmt(quality)});
  }

  std::printf(
      "\nExpected shape: plain double-hashing is fully broken by the\n"
      "dictionary attack [7]; a secret key or any structural hardening\n"
      "kills it. The frequency pattern attack [23] survives permutation-\n"
      "style hardening and only noise (BLIP) or salting suppress it —\n"
      "each at a visible similarity cost.\n\n");

  std::printf("## (b) hashed SLK-581 under frequency alignment [31, 41]\n\n");
  PrintHeader({"encoding", "freq-attack success", "unique-code risk", "entropy bits"});
  // SLKs built from last name + fixed other fields, hashed with a secret.
  std::vector<std::string> slk_codes;
  for (size_t r = 0; r < kRecords; ++r) {
    SlkInput input;
    input.first_name = "alex";
    input.last_name = plaintexts[r];
    input.dob = "1980-01-01";
    input.sex = "f";
    slk_codes.push_back(HashedSlk581(input, "secret").value());
  }
  AttackResult slk_attack = FrequencyAlignmentAttack(slk_codes, dictionary);
  PrintRow({"hashed SLK-581", Fmt(ScoreAttack(slk_attack, truth)),
            Fmt(UniqueCodeDisclosureRisk(slk_codes)), Fmt(CodeEntropyBits(slk_codes), 2)});
  std::printf(
      "\nExpected shape: deterministic SLK codes preserve the frequency\n"
      "profile, so rank alignment re-identifies the frequent names even\n"
      "though the key is secret — the 'limited privacy protection' of [31].\n");
  return 0;
}
