/// Ablation: Hamming-LSH blocking parameters. The (tables mu, bits-per-key
/// lambda) pair is THE tuning decision of LSH blocking [18]: lambda sets
/// per-table selectivity, mu buys recall back. This bench sweeps the grid
/// and reports pairs-completeness vs reduction ratio, plus the theoretical
/// collision probability at a typical matching distance for comparison.

#include "bench/bench_util.h"
#include "blocking/lsh_blocking.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  const size_t n = 1500;
  auto [a, b] = TwoDatabases(n, 1.0);
  const GroundTruth truth(a, b);
  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  const auto fa = encoder.EncodeDatabase(a).value();
  const auto fb = encoder.EncodeDatabase(b).value();
  const size_t l = config.bloom.num_bits;

  // Typical Hamming distance of a true match at corruption 1.0 (~measured):
  // matched CLK pairs differ on ~10% of their set positions.
  const size_t typical_match_distance = l / 8;

  std::printf("# Ablation: Hamming-LSH parameters (n=%zu, l=%zu)\n\n", n, l);
  PrintHeader({"tables mu", "bits lambda", "candidates", "reduction",
               "pairs-compl.", "theory P(collide@d=l/8)"});
  for (size_t lambda : {10, 18, 26}) {
    for (size_t mu : {5, 10, 20, 40}) {
      Rng rng(7);
      const HammingLshBlocker blocker(l, mu, lambda, rng);
      const auto candidates = HammingLshBlocker::CandidatePairs(
          blocker.BuildIndex(fa), blocker.BuildIndex(fb));
      const auto quality = EvaluateBlocking(candidates, truth, n, n);
      PrintRow({Fmt(mu), Fmt(lambda), Fmt(candidates.size()),
                Fmt(quality.reduction_ratio), Fmt(quality.pairs_completeness),
                Fmt(blocker.CollisionProbability(typical_match_distance))});
    }
  }
  std::printf(
      "\nExpected shape: larger lambda prunes harder per table (higher\n"
      "reduction, lower completeness); adding tables recovers completeness\n"
      "at candidate-count cost. The theory column tracks the measured\n"
      "pairs-completeness — the 'theoretical guarantees' the survey credits\n"
      "LSH blocking with [18], verified empirically.\n");
  return 0;
}
