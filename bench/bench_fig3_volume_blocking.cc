/// E4 (survey Figure 3, "volume"; §3.4 complexity reduction): blocking, LSH
/// and PPJoin filtering cut the quadratic comparison space by orders of
/// magnitude at small recall cost, and runtime scales accordingly.
///
/// Regenerates the scalability table: candidates, reduction ratio, pairs
/// completeness, and wall-clock per method per database size.

#include <vector>

#include "bench/bench_util.h"
#include "blocking/blocking.h"
#include "blocking/lsh_blocking.h"
#include "common/timer.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "filtering/ppjoin.h"
#include "linkage/comparison.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  std::printf("# E4 / Figure 3 (volume): comparison-space reduction\n\n");
  PrintHeader({"n per db", "method", "candidates", "reduction", "pairs-compl.",
               "seconds"});

  for (size_t n : {500, 1000, 2000, 4000, 8000}) {
    auto [a, b] = TwoDatabases(n, 1.0);
    const GroundTruth truth(a, b);
    PipelineConfig config;
    const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
    const auto fa = encoder.EncodeDatabase(a).value();
    const auto fb = encoder.EncodeDatabase(b).value();
    const ComparisonEngine engine(SimilarityMeasure::kDice);

    // --- naive all pairs (skipped at the largest size to keep runtime sane,
    // the quadratic trend is already visible).
    if (n <= 2000) {
      Timer timer;
      const auto candidates = FullPairs(n, n);
      engine.Compare(fa, fb, candidates, 0.8);
      const auto quality = EvaluateBlocking(candidates, truth, n, n);
      PrintRow({Fmt(n), "naive", Fmt(candidates.size()), Fmt(quality.reduction_ratio),
                Fmt(quality.pairs_completeness), Fmt(timer.ElapsedSeconds(), 2)});
    }

    // --- keyed soundex standard blocking.
    {
      Timer timer;
      const StandardBlocker blocker(SoundexNameKey("k"));
      const auto candidates =
          StandardBlocker::CandidatePairs(blocker.BuildIndex(a), blocker.BuildIndex(b));
      engine.Compare(fa, fb, candidates, 0.8);
      const auto quality = EvaluateBlocking(candidates, truth, n, n);
      PrintRow({Fmt(n), "soundex-block", Fmt(candidates.size()),
                Fmt(quality.reduction_ratio), Fmt(quality.pairs_completeness),
                Fmt(timer.ElapsedSeconds(), 2)});
    }

    // --- Hamming LSH over the CLKs.
    {
      Timer timer;
      Rng rng(7);
      const HammingLshBlocker blocker(config.bloom.num_bits, 20, 18, rng);
      const auto candidates =
          HammingLshBlocker::CandidatePairs(blocker.BuildIndex(fa), blocker.BuildIndex(fb));
      engine.Compare(fa, fb, candidates, 0.8);
      const auto quality = EvaluateBlocking(candidates, truth, n, n);
      PrintRow({Fmt(n), "hamming-lsh", Fmt(candidates.size()),
                Fmt(quality.reduction_ratio), Fmt(quality.pairs_completeness),
                Fmt(timer.ElapsedSeconds(), 2)});
    }

    // --- PPJoin threshold join (no blocking; lossless at its threshold).
    // Filtering power on dense CLKs grows with the threshold — at moderate
    // thresholds the near-uniform position frequencies defeat the prefix
    // filter, which is why [34] pairs it with high-threshold workloads.
    // (Skipped at the largest size: the quadratic verify cost is the point
    // the smaller sizes already demonstrate.)
    if (n > 4000) continue;
    for (double dice : {0.8, 0.9, 0.95}) {
      Timer timer;
      const PpjoinIndex index(fb, dice);
      const auto matches = index.Join(fa);
      const auto& stats = index.last_stats();
      PrintRow({Fmt(n), "ppjoin@" + Fmt(dice, 2), Fmt(stats.verified),
                Fmt(1.0 - static_cast<double>(stats.verified) /
                              (static_cast<double>(n) * static_cast<double>(n))),
                "1.000 (lossless)", Fmt(timer.ElapsedSeconds(), 2)});
    }
  }
  std::printf(
      "\nExpected shape: naive grows quadratically; blocking/LSH keep\n"
      "candidates near-linear with pairs-completeness ~0.8-1.0; PPJoin\n"
      "prunes losslessly. [paper: blocking restricts comparisons to\n"
      "same-block records; LSH adds probabilistic guarantees]\n");
  return 0;
}
