/// E6 (survey Figure 1, "linkage model" + "advanced communication
/// patterns"; §3.1, [42]): multi-party linkage cost grows with the number
/// of parties, and the communication pattern determines the message/round
/// trade-off. The secure-summation protocols of [29] differ in collusion
/// resistance at different message costs.

#include "bench/bench_util.h"
#include "common/timer.h"
#include "crypto/secret_sharing.h"
#include "encoding/bloom_filter.h"
#include "linkage/multiparty.h"
#include "similarity/similarity.h"

using namespace pprl;
using namespace pprl::bench;

int main() {
  std::printf("# E6 / Figure 1: multi-party linkage and communication patterns\n\n");
  std::printf("## (a) secure CBF aggregation cost vs parties and pattern (l=1000)\n\n");
  PrintHeader({"parties", "pattern", "messages", "rounds", "KiB", "dice==direct"});
  const BloomFilterEncoder encoder({1000, 25, BloomHashScheme::kDoubleHashing, ""});
  Rng rng(3);
  for (size_t p : {3, 5, 7, 10}) {
    // p parties hold progressively dirtier variants of one name.
    std::vector<BitVector> filters;
    for (size_t i = 0; i < p; ++i) {
      filters.push_back(encoder.EncodeString("katherine" + std::string(i % 2, 'e')));
    }
    std::vector<const BitVector*> pointers;
    for (const auto& f : filters) pointers.push_back(&f);
    const double direct = DiceSimilarity(pointers);
    for (auto [pattern, name] :
         {std::pair{CommunicationPattern::kStar, "star"},
          std::pair{CommunicationPattern::kSequential, "sequential"},
          std::pair{CommunicationPattern::kRing, "ring"},
          std::pair{CommunicationPattern::kTree, "tree"}}) {
      MultiPartyCost cost;
      auto dice = SecureMultiPartyDice(pointers, pattern, rng, &cost);
      PrintRow({Fmt(p), name, Fmt(cost.messages), Fmt(cost.rounds),
                Fmt(static_cast<double>(cost.bytes) / 1024.0, 1),
                dice.ok() && std::abs(dice.value() - direct) < 1e-9 ? "yes" : "NO"});
    }
  }
  std::printf(
      "\nExpected shape: messages grow linearly in p for every pattern, but\n"
      "rounds differ — tree needs ceil(log2 p), sequential/ring need p-1/p.\n\n");

  std::printf("## (b) secure summation protocols [29]: cost vs collusion resistance\n\n");
  PrintHeader({"parties", "protocol", "messages", "rounds", "min colluders to break"});
  for (size_t p : {3, 5, 10, 20}) {
    std::vector<uint64_t> inputs(p, 7);
    for (auto [protocol, name] :
         {std::pair{SecureSumProtocol::kMaskedRing, "masked-ring"},
          std::pair{SecureSumProtocol::kFullSharing, "full-sharing"}}) {
      auto result = SecureSum(inputs, protocol, rng);
      PrintRow({Fmt(p), name, Fmt(result->messages), Fmt(result->rounds),
                Fmt(MinColludersToBreak(protocol, p))});
    }
  }
  std::printf(
      "\nExpected shape: the ring is O(p) messages but 2 colluding\n"
      "neighbours break it; full sharing pays O(p^2) messages for\n"
      "p-1 collusion resistance — the privacy/cost dial of [29].\n");
  return 0;
}
