/// Weak-scaling benchmark of the sharded linkage unit (ROADMAP: horizontal
/// scale-out). For W in {1, 2, 4} loopback workers the per-database record
/// count grows with sqrt(W), holding each worker's compare work roughly
/// constant — the weak-scaling regime a real ring is sized for. Every run
/// is parity-checked against the in-process single-machine linkage: the
/// merged clusters, edges and counters must be bitwise-identical, so the
/// numbers below measure orchestration cost, never approximation.
///
/// On a single-core host all workers share the CPU, so wall-clock weak
/// scaling is flat at best; the interesting columns are the scatter bytes
/// (re-shipment cost grows linearly with W) and the per-worker compare
/// share. Emits a JSON block for BENCH_distributed.json at the end.

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "pipeline/party.h"
#include "pipeline/pipeline.h"
#include "service/client.h"
#include "service/coordinator.h"
#include "service/server.h"

using namespace pprl;
using namespace pprl::bench;

namespace {

struct RunRow {
  size_t workers = 0;
  size_t records_per_db = 0;
  size_t comparisons = 0;
  size_t edges = 0;
  size_t clusters = 0;
  double link_ms = 0;
  double scatter_kib = 0;
  size_t worker_retries = 0;
  bool parity = false;
};

bool Identical(const MultiPartyLinkageResult& a, const MultiPartyLinkageResult& b) {
  if (a.clusters != b.clusters || a.edges.size() != b.edges.size() ||
      a.comparisons != b.comparisons || a.candidate_pairs != b.candidate_pairs ||
      a.pruned_comparisons != b.pruned_comparisons) {
    return false;
  }
  for (size_t i = 0; i < a.edges.size(); ++i) {
    if (!(a.edges[i].x == b.edges[i].x) || !(a.edges[i].y == b.edges[i].y) ||
        a.edges[i].score != b.edges[i].score) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::printf("# Sharded linkage unit: coordinator + W loopback workers, "
              "weak scaling (records ~ sqrt(W))\n");

  constexpr size_t kBaseRecords = 700;
  constexpr size_t kOwners = 3;
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;

  PrintHeader({"workers", "records/db", "comparisons", "edges", "clusters",
               "link ms", "scatter KiB", "retries", "parity"});

  std::vector<RunRow> rows;
  for (const size_t num_workers : {1u, 2u, 4u}) {
    const size_t records = static_cast<size_t>(
        static_cast<double>(kBaseRecords) * std::sqrt(static_cast<double>(num_workers)));

    GeneratorConfig gc;
    gc.seed = 42;
    DataGenerator gen(gc);
    LinkageScenarioConfig scenario;
    scenario.records_per_database = records;
    scenario.num_databases = kOwners;
    scenario.overlap = 0.4;
    scenario.corruption.mean_corruptions = 1.0;
    auto dbs = gen.GenerateScenario(scenario);
    if (!dbs.ok()) return 1;

    PipelineConfig shared;
    const ClkEncoder encoder(shared.bloom, PprlPipeline::DefaultFieldConfigs());
    std::vector<DatabaseOwner> owners;
    for (size_t d = 0; d < kOwners; ++d) {
      owners.emplace_back("owner-" + std::to_string(d), (*dbs)[d]);
      if (!owners[d].Encode(encoder).ok()) return 1;
    }

    // The in-process reference this worker count must reproduce exactly.
    Channel local_channel;
    LinkageUnitService local_unit("lu");
    LocalLinkageUnitSink sink(local_channel, local_unit);
    for (auto& owner : owners) {
      if (!owner.ShipEncodings(sink).ok()) return 1;
    }
    auto reference = local_unit.Link(options);
    if (!reference.ok()) return 1;

    std::vector<std::unique_ptr<LinkageUnitServer>> workers;
    for (size_t w = 0; w < num_workers; ++w) {
      LinkageUnitServerConfig config;
      config.name = "worker-" + std::to_string(w);
      config.expected_owners = kOwners;
      config.worker_mode = true;
      config.io_timeout_ms = 120000;
      workers.push_back(std::make_unique<LinkageUnitServer>(config));
      if (!workers.back()->Start().ok()) return 1;
    }

    LinkageUnitServerConfig server_config;
    server_config.name = "coord";
    server_config.expected_owners = kOwners;
    server_config.link_options = options;
    server_config.io_timeout_ms = 120000;
    CoordinatorConfig coordinator_config;
    for (const auto& worker : workers) {
      coordinator_config.workers.push_back(WorkerEndpoint{"127.0.0.1", worker->port()});
    }
    CoordinatorServer coordinator(server_config, coordinator_config);
    if (!coordinator.Start().ok()) return 1;

    std::vector<std::thread> sessions;
    for (size_t d = 0; d < kOwners; ++d) {
      while (coordinator.server().owner_order().size() < d) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      sessions.emplace_back([&, d] {
        RemoteOwnerClientConfig config;
        config.port = coordinator.port();
        config.connect.io_timeout_ms = 120000;
        config.result_wait_timeout_ms = 600000;
        RemoteOwnerClient client(config);
        (void)owners[d].ShipEncodings(client);
      });
    }
    // Time from the moment every owner has registered (the scatter can
    // begin) to completed results — shipping, assignment, worker compare
    // and the merge all included.
    while (coordinator.server().owner_order().size() < kOwners) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Timer link_timer;
    for (auto& t : sessions) t.join();
    if (!coordinator.WaitUntilDone(600000).ok()) return 1;
    const double link_ms = link_timer.ElapsedMillis();

    auto result = coordinator.server().result();
    if (!result.ok()) return 1;

    RunRow row;
    row.workers = num_workers;
    row.records_per_db = records;
    row.comparisons = result->comparisons;
    row.edges = result->edges.size();
    row.clusters = result->clusters.size();
    row.link_ms = link_ms;
    row.scatter_kib =
        static_cast<double>(coordinator.worker_channel().total_bytes()) / 1024.0;
    row.worker_retries = coordinator.worker_retries();
    row.parity = Identical(*result, *reference);
    rows.push_back(row);

    PrintRow({Fmt(row.workers), Fmt(row.records_per_db), Fmt(row.comparisons),
              Fmt(row.edges), Fmt(row.clusters), Fmt(row.link_ms, 1),
              Fmt(row.scatter_kib, 1), Fmt(row.worker_retries),
              row.parity ? "bitwise" : "MISMATCH"});
    if (!row.parity) {
      std::fprintf(stderr, "PARITY FAILURE at %zu workers\n", num_workers);
      return 1;
    }

    coordinator.Stop();
    for (auto& worker : workers) worker->Stop();
  }

  std::printf("\n# JSON for BENCH_distributed.json\n{\n");
  std::printf("  \"bench\": \"bench_distributed\",\n");
  std::printf("  \"owners\": %zu,\n", kOwners);
  std::printf("  \"dice_threshold\": %.2f,\n", options.dice_threshold);
  std::printf("  \"scaling\": \"weak (records_per_db ~ sqrt(workers))\",\n");
  std::printf("  \"measurements\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    std::printf("    {\"workers\": %zu, \"records_per_db\": %zu, "
                "\"comparisons\": %zu, \"edges\": %zu, \"clusters\": %zu, "
                "\"link_ms\": %.1f, \"scatter_kib\": %.1f, \"retries\": %zu, "
                "\"bitwise_parity\": %s}%s\n",
                r.workers, r.records_per_db, r.comparisons, r.edges, r.clusters,
                r.link_ms, r.scatter_kib, r.worker_retries,
                r.parity ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  DumpMetricsIfRequested();
  return 0;
}
